//! Actions: the compute half of match-action processing.
//!
//! An [`ActionDef`] is a short straight-line program of [`ActionOp`]s.
//! Actions execute in a **lane**: scalar tables run one lane (lane 0); an
//! array-keyed table on the ADCP runs one lane per array element (§3.2).
//! Inside a lane, reads and writes of array fields address the lane's
//! element, so the same action text expresses per-element behaviour —
//! SIMD-style — without the program having to be rewritten per width.

use crate::header::FieldRef;
use crate::registers::{RegAluOp, RegId};
use serde::Serialize;

/// A value source for an action op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Operand {
    /// Immediate constant.
    Const(u64),
    /// Current value of a PHV field (lane-indexed for array fields).
    Field(FieldRef),
    /// The n-th action-data parameter of the matched table entry.
    Param(u8),
}

/// Stateless two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Left shift (by `b & 63`).
    Shl,
    /// Right shift (by `b & 63`).
    Shr,
    /// Greater-or-equal comparison: 1 when `a >= b`, else 0.
    Ge,
}

impl BinOp {
    /// Evaluate the operation.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Ge => (a >= b) as u64,
        }
    }
}

/// One primitive operation inside an action.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ActionOp {
    /// `dst = src`.
    Set {
        /// Destination field.
        dst: FieldRef,
        /// Source value.
        src: Operand,
    },
    /// `dst = a <op> b`.
    Bin {
        /// Destination field.
        dst: FieldRef,
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = hash(fields...) % modulo` — deterministic multiply-xor hash.
    /// The canonical way to compute a central-pipeline choice (§3.1: "place
    /// a given weight ... on a pipeline based on the weight's ID hash").
    Hash {
        /// Destination field.
        dst: FieldRef,
        /// Fields folded into the hash (lane-indexed when arrays).
        fields: Vec<FieldRef>,
        /// Modulus (0 means full 64-bit value).
        modulo: u64,
    },
    /// Single-cell register read: `dst = reg[index]`.
    RegRead {
        /// Register array.
        reg: RegId,
        /// Cell index.
        index: Operand,
        /// Field receiving the value.
        dst: FieldRef,
    },
    /// Single-cell register RMW: `reg[index] <op>= value`; the cell's
    /// *previous* value is written to `fetch` when given (fetch-op).
    RegRmw {
        /// Register array.
        reg: RegId,
        /// Cell index.
        index: Operand,
        /// ALU operation.
        op: RegAluOp,
        /// Value operand.
        value: Operand,
        /// Optional destination for the pre-op value.
        fetch: Option<FieldRef>,
    },
    /// Wide register op (ADCP §3.2): for every lane `i` of the `values`
    /// array field, `reg[base + i] <op>= values[i]`. When `readback` is
    /// set, each lane also receives the post-op cell value back into the
    /// array field (the parameter-server "aggregate then distribute" step).
    RegArray {
        /// Register array.
        reg: RegId,
        /// Base cell index.
        base: Operand,
        /// ALU operation applied per lane.
        op: RegAluOp,
        /// Array field supplying one value per lane.
        values: FieldRef,
        /// Write the post-op cell value back into `values[i]`.
        readback: bool,
    },
    /// Horizontal reduce of an array field into a scalar field.
    ArrayReduce {
        /// Destination scalar field.
        dst: FieldRef,
        /// Source array field.
        src: FieldRef,
        /// Combining operation.
        op: BinOp,
    },
    /// Set the unicast egress port.
    SetEgress(Operand),
    /// Replicate to the multicast group whose index the operand yields
    /// (a `Param` operand lets table entries pick the group).
    SetMulticast(Operand),
    /// Choose the central pipeline for the first TM (ADCP §3.1).
    SetCentralPipe(Operand),
    /// Set the first TM's merge sort key (§3.1).
    SetSortKey(Operand),
    /// Account `n` application data elements on this packet (keys/s meter).
    CountElements(Operand),
    /// Drop the packet.
    Drop,
    /// Mark the packet dropped but keep executing this action — later ops
    /// (e.g. inside [`ActionOp::IfEq`]) may override the decision. This is
    /// how "consume contributions, emit only the completed aggregate"
    /// (SwitchML-style) is expressed.
    MarkDrop,
    /// Predicated execution: run `then` only when `a == b`. One level of
    /// nesting, which matches what match-action hardware predication
    /// offers.
    IfEq {
        /// Left comparand.
        a: Operand,
        /// Right comparand.
        b: Operand,
        /// Ops executed on equality.
        then: Vec<ActionOp>,
    },
    /// Request an RMT recirculation pass.
    Recirculate,
}

/// A named action: a sequence of primitive ops.
#[derive(Debug, Clone, Serialize)]
pub struct ActionDef {
    /// Human-readable name.
    pub name: String,
    /// Ops executed in order.
    pub ops: Vec<ActionOp>,
}

impl ActionDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ops: Vec<ActionOp>) -> Self {
        ActionDef {
            name: name.into(),
            ops,
        }
    }

    /// The no-op action.
    pub fn nop() -> Self {
        ActionDef::new("nop", vec![])
    }

    /// Fields this action writes (used for stage-dependency analysis).
    pub fn writes(&self) -> Vec<FieldRef> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                ActionOp::Set { dst, .. }
                | ActionOp::Bin { dst, .. }
                | ActionOp::Hash { dst, .. }
                | ActionOp::RegRead { dst, .. }
                | ActionOp::ArrayReduce { dst, .. } => out.push(*dst),
                ActionOp::RegRmw { fetch: Some(f), .. } => out.push(*f),
                ActionOp::RegArray {
                    values, readback, ..
                } if *readback => {
                    out.push(*values);
                }
                ActionOp::IfEq { then, .. } => {
                    let nested = ActionDef::new("", then.clone());
                    out.extend(nested.writes());
                }
                _ => {}
            }
        }
        out
    }

    /// Fields this action reads.
    pub fn reads(&self) -> Vec<FieldRef> {
        let mut out = Vec::new();
        let push_opnd = |o: &Operand, out: &mut Vec<FieldRef>| {
            if let Operand::Field(f) = o {
                out.push(*f);
            }
        };
        for op in &self.ops {
            match op {
                ActionOp::Set { src, .. } => push_opnd(src, &mut out),
                ActionOp::Bin { a, b, .. } => {
                    push_opnd(a, &mut out);
                    push_opnd(b, &mut out);
                }
                ActionOp::Hash { fields, .. } => out.extend(fields.iter().copied()),
                ActionOp::RegRead { index, .. } => push_opnd(index, &mut out),
                ActionOp::RegRmw { index, value, .. } => {
                    push_opnd(index, &mut out);
                    push_opnd(value, &mut out);
                }
                ActionOp::RegArray { base, values, .. } => {
                    push_opnd(base, &mut out);
                    out.push(*values);
                }
                ActionOp::ArrayReduce { src, .. } => out.push(*src),
                ActionOp::SetEgress(o)
                | ActionOp::SetMulticast(o)
                | ActionOp::SetCentralPipe(o)
                | ActionOp::SetSortKey(o)
                | ActionOp::CountElements(o) => push_opnd(o, &mut out),
                ActionOp::IfEq { a, b, then } => {
                    push_opnd(a, &mut out);
                    push_opnd(b, &mut out);
                    let nested = ActionDef::new("", then.clone());
                    out.extend(nested.reads());
                }
                _ => {}
            }
        }
        out
    }

    /// Registers this action touches (each register is pinned to one table).
    pub fn registers(&self) -> Vec<RegId> {
        self.ops
            .iter()
            .flat_map(|op| match op {
                ActionOp::RegRead { reg, .. }
                | ActionOp::RegRmw { reg, .. }
                | ActionOp::RegArray { reg, .. } => vec![*reg],
                ActionOp::IfEq { then, .. } => ActionDef::new("", then.clone()).registers(),
                _ => vec![],
            })
            .collect()
    }

    /// Number of action parameters this action consumes: one past the
    /// highest `Operand::Param` index referenced anywhere in the op list
    /// (including nested `IfEq` bodies), or 0 when the action takes no
    /// parameters. Entry installers (and the conformance generator) use this
    /// to size the `params` vector they must supply.
    pub fn params_used(&self) -> u8 {
        fn scan_opnd(o: &Operand, max: &mut u8) {
            if let Operand::Param(i) = o {
                *max = (*max).max(i.saturating_add(1));
            }
        }
        fn scan(ops: &[ActionOp], max: &mut u8) {
            for op in ops {
                match op {
                    ActionOp::Set { src, .. } => scan_opnd(src, max),
                    ActionOp::Bin { a, b, .. } => {
                        scan_opnd(a, max);
                        scan_opnd(b, max);
                    }
                    ActionOp::RegRead { index, .. } => scan_opnd(index, max),
                    ActionOp::RegRmw { index, value, .. } => {
                        scan_opnd(index, max);
                        scan_opnd(value, max);
                    }
                    ActionOp::RegArray { base, .. } => scan_opnd(base, max),
                    ActionOp::SetEgress(o)
                    | ActionOp::SetMulticast(o)
                    | ActionOp::SetCentralPipe(o)
                    | ActionOp::SetSortKey(o)
                    | ActionOp::CountElements(o) => scan_opnd(o, max),
                    ActionOp::IfEq { a, b, then } => {
                        scan_opnd(a, max);
                        scan_opnd(b, max);
                        scan(then, max);
                    }
                    ActionOp::Hash { .. }
                    | ActionOp::ArrayReduce { .. }
                    | ActionOp::Drop
                    | ActionOp::MarkDrop
                    | ActionOp::Recirculate => {}
                }
            }
        }
        let mut max = 0u8;
        scan(&self.ops, &mut max);
        max
    }

    /// True if any op is an array-wide op (needs ADCP array support or RMT
    /// restructuring).
    pub fn has_array_ops(&self) -> bool {
        fn scan(ops: &[ActionOp]) -> bool {
            ops.iter().any(|op| match op {
                ActionOp::RegArray { .. } | ActionOp::ArrayReduce { .. } => true,
                ActionOp::IfEq { then, .. } => scan(then),
                _ => false,
            })
        }
        scan(&self.ops)
    }
}

/// The deterministic hash used by `ActionOp::Hash` (and by TM partitioning):
/// a multiply-xor fold, stable across runs and platforms.
pub fn fold_hash(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for v in values {
        h ^= v;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{FieldId, HeaderId};

    fn fr(h: u16, f: u16) -> FieldRef {
        FieldRef::new(HeaderId(h), FieldId(f))
    }

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(BinOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(BinOp::Min.eval(3, 9), 3);
        assert_eq!(BinOp::Max.eval(3, 9), 9);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Shl.eval(1, 4), 16);
        assert_eq!(BinOp::Shr.eval(16, 4), 1);
        assert_eq!(BinOp::Shl.eval(1, 64), 1, "shift masked to 6 bits");
        assert_eq!(BinOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Ge.eval(5, 5), 1);
        assert_eq!(BinOp::Ge.eval(6, 5), 1);
        assert_eq!(BinOp::Ge.eval(4, 5), 0);
        assert_eq!(BinOp::Ge.eval(u64::MAX, 0), 1, "comparison is unsigned");
    }

    #[test]
    fn read_write_analysis() {
        let a = ActionDef::new(
            "agg",
            vec![
                ActionOp::RegArray {
                    reg: RegId(0),
                    base: Operand::Field(fr(0, 0)),
                    op: RegAluOp::Add,
                    values: fr(0, 1),
                    readback: true,
                },
                ActionOp::SetEgress(Operand::Field(fr(0, 2))),
            ],
        );
        assert_eq!(a.writes(), vec![fr(0, 1)]);
        let reads = a.reads();
        assert!(reads.contains(&fr(0, 0)));
        assert!(reads.contains(&fr(0, 1)));
        assert!(reads.contains(&fr(0, 2)));
        assert_eq!(a.registers(), vec![RegId(0)]);
        assert!(a.has_array_ops());
    }

    #[test]
    fn no_readback_means_no_write() {
        let a = ActionDef::new(
            "agg",
            vec![ActionOp::RegArray {
                reg: RegId(1),
                base: Operand::Const(0),
                op: RegAluOp::Add,
                values: fr(0, 1),
                readback: false,
            }],
        );
        assert!(a.writes().is_empty());
    }

    #[test]
    fn nop_action() {
        let n = ActionDef::nop();
        assert!(n.ops.is_empty());
        assert!(n.writes().is_empty());
        assert!(n.reads().is_empty());
        assert!(!n.has_array_ops());
    }

    #[test]
    fn params_used_finds_highest_index() {
        assert_eq!(ActionDef::nop().params_used(), 0);
        let a = ActionDef::new(
            "p",
            vec![
                ActionOp::Set {
                    dst: fr(0, 0),
                    src: Operand::Param(0),
                },
                ActionOp::IfEq {
                    a: Operand::Field(fr(0, 0)),
                    b: Operand::Param(2),
                    then: vec![ActionOp::RegRmw {
                        reg: RegId(0),
                        index: Operand::Param(1),
                        op: RegAluOp::Add,
                        value: Operand::Param(3),
                        fetch: None,
                    }],
                },
            ],
        );
        assert_eq!(a.params_used(), 4);
    }

    #[test]
    fn fold_hash_stable_and_spreads() {
        let a = fold_hash([1, 2, 3]);
        let b = fold_hash([1, 2, 3]);
        assert_eq!(a, b, "deterministic");
        assert_ne!(fold_hash([1, 2, 3]), fold_hash([3, 2, 1]), "order matters");
        // Rough uniformity: bucket 10k consecutive keys into 4 pipes.
        let mut buckets = [0u32; 4];
        for k in 0..10_000u64 {
            buckets[(fold_hash([k]) % 4) as usize] += 1;
        }
        for b in buckets {
            assert!((2_200..=2_800).contains(&b), "buckets = {buckets:?}");
        }
    }
}
