//! Complete switch programs.
//!
//! A [`Program`] bundles everything a switch needs to process an
//! application's coflows: header formats, a parse graph, match-action
//! tables assigned to regions (ingress / central / egress), register
//! declarations, multicast groups, and the service policies of the two
//! traffic managers. Programs are target-independent; `compile` maps them
//! onto a concrete [`crate::target::TargetModel`].

use crate::header::{FieldRef, HeaderDef};
use crate::parser::ParserSpec;
use crate::phv::PhvLayout;
use crate::registers::{RegId, RegisterDef};
use crate::table::{Region, TableDef};
use adcp_sim::packet::PortId;
use adcp_sim::sched::Policy;
use std::collections::HashMap;

/// Service policy of one traffic manager, as declared by the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmSpec {
    /// Scheduling discipline across the TM's queues.
    pub policy: Policy,
}

impl Default for TmSpec {
    fn default() -> Self {
        TmSpec {
            policy: Policy::Fifo,
        }
    }
}

/// A complete, target-independent switch program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (diagnostics).
    pub name: String,
    /// Declared header types ([`crate::header::HeaderId`] = index).
    pub headers: Vec<HeaderDef>,
    /// Parse graph.
    pub parser: ParserSpec,
    /// Tables in execution order. Region tags partition them; within a
    /// region, list order is program order.
    pub tables: Vec<TableDef>,
    /// Register arrays ([`RegId`] = index).
    pub registers: Vec<RegisterDef>,
    /// Multicast groups (`SetMulticast(i)` refers to index `i`).
    pub mcast_groups: Vec<Vec<PortId>>,
    /// First traffic manager policy (the "application-defined" one, §3.1).
    pub tm1: TmSpec,
    /// Second traffic manager policy (the classic scheduler).
    pub tm2: TmSpec,
}

/// Program validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A field reference names a header or field that does not exist.
    BadFieldRef {
        /// Where it was found.
        table: String,
        /// The offending reference.
        field: FieldRef,
    },
    /// A key's declared width disagrees with the field's width.
    KeyWidthMismatch {
        /// Table name.
        table: String,
        /// Declared key bits.
        declared: u8,
        /// Field element bits.
        actual: u8,
    },
    /// A table's default action index is out of range.
    BadDefaultAction {
        /// Table name.
        table: String,
    },
    /// A register is used by more than one table (registers are pinned to a
    /// single stage/table in these architectures).
    RegisterShared {
        /// Register id.
        reg: RegId,
        /// The tables that both use it.
        tables: (String, String),
    },
    /// An action references an undeclared register.
    BadRegister {
        /// Table name.
        table: String,
        /// The offending id.
        reg: RegId,
    },
    /// A multicast action references an undeclared group.
    BadMulticastGroup {
        /// Table name.
        table: String,
        /// The offending group index.
        group: u32,
    },
    /// A parser state extracts an undeclared header.
    BadParserHeader {
        /// State index.
        state: usize,
    },
    /// A header's width is not byte-aligned (unparseable).
    UnalignedHeader {
        /// Header name.
        header: String,
        /// Its width in bits.
        bits: u32,
    },
}

impl Program {
    /// Compute the PHV layout for this program's headers.
    pub fn layout(&self) -> PhvLayout {
        PhvLayout::build(&self.headers)
    }

    /// The tables of one region, in program order, with their global index.
    pub fn region_tables(&self, region: Region) -> Vec<(usize, &TableDef)> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.region == region)
            .collect()
    }

    /// True if any table is keyed on an array field or uses array ops —
    /// i.e. the program exercises §3.2.
    pub fn uses_arrays(&self) -> bool {
        let layout = self.layout();
        self.tables.iter().any(|t| {
            t.key.map(|k| layout.is_array(k.field)).unwrap_or(false)
                || t.actions.iter().any(|a| a.has_array_ops())
        })
    }

    /// True if the program has central-region tables — i.e. it needs the
    /// global partitioned area of §3.1 (or a lowering on RMT).
    pub fn uses_central(&self) -> bool {
        self.tables.iter().any(|t| t.region == Region::Central)
    }

    /// The array width of a table: element count of its key field (1 for
    /// scalar keys and keyless tables).
    pub fn table_width(&self, layout: &PhvLayout, t: &TableDef) -> u16 {
        t.key
            .and_then(|k| layout.array_dims_of(k.field))
            .map(|(_, c)| c)
            .unwrap_or(1)
    }

    /// The widest array any of `t`'s actions operates on (1 if none).
    /// Array ALU ops need this many lanes of stateful hardware, regardless
    /// of the table's key width.
    pub fn action_array_width(&self, t: &TableDef) -> u16 {
        let layout = self.layout();
        t.actions
            .iter()
            .flat_map(|a| a.ops.iter())
            .filter_map(|op| match op {
                crate::action::ActionOp::RegArray { values, .. } => {
                    layout.array_dims_of(*values).map(|(_, c)| c)
                }
                crate::action::ActionOp::ArrayReduce { src, .. } => {
                    layout.array_dims_of(*src).map(|(_, c)| c)
                }
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }

    /// Validate internal consistency. Returns every error found.
    pub fn validate(&self) -> Vec<ValidateError> {
        let mut errs = Vec::new();
        let layout = self.layout();

        for h in &self.headers {
            if h.total_bits() % 8 != 0 {
                errs.push(ValidateError::UnalignedHeader {
                    header: h.name.clone(),
                    bits: h.total_bits(),
                });
            }
        }

        for (i, st) in self.parser.states.iter().enumerate() {
            if st.extracts.0 as usize >= self.headers.len() {
                errs.push(ValidateError::BadParserHeader { state: i });
            }
        }

        let field_ok = |f: FieldRef| -> bool {
            self.headers
                .get(f.header.0 as usize)
                .map(|h| (f.field.0 as usize) < h.fields.len())
                .unwrap_or(false)
        };

        let mut reg_owner: HashMap<RegId, String> = HashMap::new();
        for t in &self.tables {
            if t.default_action >= t.actions.len() {
                errs.push(ValidateError::BadDefaultAction {
                    table: t.name.clone(),
                });
            }
            if let Some(k) = t.key {
                if !field_ok(k.field) {
                    errs.push(ValidateError::BadFieldRef {
                        table: t.name.clone(),
                        field: k.field,
                    });
                } else {
                    let h = &self.headers[k.field.header.0 as usize];
                    let actual = h.field(k.field.field).bits;
                    if actual != k.bits {
                        errs.push(ValidateError::KeyWidthMismatch {
                            table: t.name.clone(),
                            declared: k.bits,
                            actual,
                        });
                    }
                }
            }
            for a in &t.actions {
                for f in a.reads().into_iter().chain(a.writes()) {
                    if !field_ok(f) {
                        errs.push(ValidateError::BadFieldRef {
                            table: t.name.clone(),
                            field: f,
                        });
                    }
                }
                for r in a.registers() {
                    if r.0 as usize >= self.registers.len() {
                        errs.push(ValidateError::BadRegister {
                            table: t.name.clone(),
                            reg: r,
                        });
                        continue;
                    }
                    match reg_owner.get(&r) {
                        Some(owner) if owner != &t.name => {
                            errs.push(ValidateError::RegisterShared {
                                reg: r,
                                tables: (owner.clone(), t.name.clone()),
                            });
                        }
                        _ => {
                            reg_owner.insert(r, t.name.clone());
                        }
                    }
                }
                for op in &a.ops {
                    if let crate::action::ActionOp::SetMulticast(crate::action::Operand::Const(g)) =
                        op
                    {
                        if *g as usize >= self.mcast_groups.len() {
                            errs.push(ValidateError::BadMulticastGroup {
                                table: t.name.clone(),
                                group: *g as u32,
                            });
                        }
                    }
                }
            }
        }
        // Deduplicate repeated identical errors (same register flagged per
        // action, etc.) while preserving order.
        let mut seen = Vec::new();
        errs.retain(|e| {
            if seen.contains(e) {
                false
            } else {
                seen.push(e.clone());
                true
            }
        });
        let _ = layout;
        errs
    }
}

/// Fluent builder for programs (keeps example/app code readable).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    headers: Vec<HeaderDef>,
    parser: Option<ParserSpec>,
    tables: Vec<TableDef>,
    registers: Vec<RegisterDef>,
    mcast_groups: Vec<Vec<PortId>>,
    tm1: TmSpec,
    tm2: TmSpec,
}

impl ProgramBuilder {
    /// Start a program with a name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a header; returns its id.
    pub fn header(&mut self, h: HeaderDef) -> crate::header::HeaderId {
        self.headers.push(h);
        crate::header::HeaderId(self.headers.len() as u16 - 1)
    }

    /// Set the parse graph.
    pub fn parser(&mut self, p: ParserSpec) -> &mut Self {
        self.parser = Some(p);
        self
    }

    /// Add a table; returns its global index.
    pub fn table(&mut self, t: TableDef) -> usize {
        self.tables.push(t);
        self.tables.len() - 1
    }

    /// Declare a register array; returns its id.
    pub fn register(&mut self, r: RegisterDef) -> RegId {
        self.registers.push(r);
        RegId(self.registers.len() as u16 - 1)
    }

    /// Declare a multicast group; returns its index.
    pub fn mcast_group(&mut self, ports: Vec<PortId>) -> u32 {
        self.mcast_groups.push(ports);
        self.mcast_groups.len() as u32 - 1
    }

    /// Set TM1 policy.
    pub fn tm1(&mut self, spec: TmSpec) -> &mut Self {
        self.tm1 = spec;
        self
    }

    /// Set TM2 policy.
    pub fn tm2(&mut self, spec: TmSpec) -> &mut Self {
        self.tm2 = spec;
        self
    }

    /// Finish. Panics if no parser was set (programmer error, not input).
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            headers: self.headers,
            parser: self.parser.expect("program needs a parser"),
            tables: self.tables,
            registers: self.registers,
            mcast_groups: self.mcast_groups,
            tm1: self.tm1,
            tm2: self.tm2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, ActionOp, Operand};
    use crate::header::{FieldDef, FieldId, HeaderId};
    use crate::registers::RegAluOp;
    use crate::table::{KeySpec, MatchKind};

    fn fr(h: u16, f: u16) -> FieldRef {
        FieldRef::new(HeaderId(h), FieldId(f))
    }

    fn minimal() -> ProgramBuilder {
        let mut b = ProgramBuilder::new("test");
        let h = b.header(HeaderDef::new(
            "kv",
            vec![
                FieldDef::scalar("op", 8),
                FieldDef::scalar("key", 32),
                FieldDef::array("vals", 32, 4),
            ],
        ));
        b.parser(ParserSpec::single(h));
        b
    }

    fn table_on(key_field: FieldRef, bits: u8, region: Region) -> TableDef {
        TableDef {
            name: format!("t_{key_field}"),
            region,
            key: Some(KeySpec {
                field: key_field,
                kind: MatchKind::Exact,
                bits,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size: 16,
        }
    }

    #[test]
    fn valid_program_passes() {
        let mut b = minimal();
        b.table(table_on(fr(0, 1), 32, Region::Ingress));
        let p = b.build();
        assert!(p.validate().is_empty());
        assert!(!p.uses_central());
        assert!(!p.uses_arrays());
    }

    #[test]
    fn array_key_detected() {
        let mut b = minimal();
        b.table(table_on(fr(0, 2), 32, Region::Central));
        let p = b.build();
        assert!(p.uses_arrays());
        assert!(p.uses_central());
        let layout = p.layout();
        assert_eq!(p.table_width(&layout, &p.tables[0]), 4);
    }

    #[test]
    fn bad_field_ref_caught() {
        let mut b = minimal();
        b.table(table_on(fr(0, 9), 32, Region::Ingress));
        let p = b.build();
        let errs = p.validate();
        assert!(matches!(errs[0], ValidateError::BadFieldRef { .. }));
    }

    #[test]
    fn key_width_mismatch_caught() {
        let mut b = minimal();
        b.table(table_on(fr(0, 1), 16, Region::Ingress)); // field is 32b
        let p = b.build();
        assert!(p.validate().iter().any(|e| matches!(
            e,
            ValidateError::KeyWidthMismatch {
                declared: 16,
                actual: 32,
                ..
            }
        )));
    }

    #[test]
    fn shared_register_caught() {
        let mut b = minimal();
        let r = b.register(RegisterDef::new("agg", 64, 32));
        let act = |name: &str| {
            ActionDef::new(
                name,
                vec![ActionOp::RegRmw {
                    reg: r,
                    index: Operand::Const(0),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: None,
                }],
            )
        };
        for n in ["a", "b"] {
            b.table(TableDef {
                name: n.into(),
                region: Region::Ingress,
                key: None,
                actions: vec![act(n)],
                default_action: 0,
                default_params: vec![],
                size: 1,
            });
        }
        let p = b.build();
        assert!(p
            .validate()
            .iter()
            .any(|e| matches!(e, ValidateError::RegisterShared { .. })));
    }

    #[test]
    fn undeclared_register_and_group_caught() {
        let mut b = minimal();
        b.table(TableDef {
            name: "bad".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "boom",
                vec![
                    ActionOp::RegRead {
                        reg: RegId(5),
                        index: Operand::Const(0),
                        dst: fr(0, 1),
                    },
                    ActionOp::SetMulticast(Operand::Const(3)),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        let p = b.build();
        let errs = p.validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BadRegister { reg: RegId(5), .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BadMulticastGroup { group: 3, .. })));
    }

    #[test]
    fn unaligned_header_caught() {
        let mut b = ProgramBuilder::new("x");
        let h = b.header(HeaderDef::new("odd", vec![FieldDef::scalar("f", 7)]));
        b.parser(ParserSpec::single(h));
        let p = b.build();
        assert!(matches!(
            p.validate()[0],
            ValidateError::UnalignedHeader { bits: 7, .. }
        ));
    }

    #[test]
    fn region_tables_filters_in_order() {
        let mut b = minimal();
        b.table(table_on(fr(0, 1), 32, Region::Ingress));
        b.table(table_on(fr(0, 0), 8, Region::Egress));
        b.table(table_on(fr(0, 2), 32, Region::Ingress));
        let p = b.build();
        let ing = p.region_tables(Region::Ingress);
        assert_eq!(ing.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(p.region_tables(Region::Egress).len(), 1);
        assert!(p.region_tables(Region::Central).is_empty());
    }
}
