//! Human-readable renderings of programs and placements.
//!
//! `cargo run --example quickstart` and the app examples use these to show
//! what a program declares and where the compiler put it — the closest
//! thing this reproduction has to a P4 source listing.

use crate::action::{ActionOp, Operand};
use crate::compile::Placement;
use crate::program::Program;
use crate::table::Region;
use std::fmt::Write;

fn operand(o: &Operand) -> String {
    match o {
        Operand::Const(c) => format!("{c}"),
        Operand::Field(f) => format!("{f}"),
        Operand::Param(i) => format!("param{i}"),
    }
}

fn op_line(op: &ActionOp) -> String {
    match op {
        ActionOp::Set { dst, src } => format!("{dst} = {}", operand(src)),
        ActionOp::Bin { dst, op, a, b } => {
            format!("{dst} = {} {op:?} {}", operand(a), operand(b))
        }
        ActionOp::Hash {
            dst,
            fields,
            modulo,
        } => {
            let fs: Vec<String> = fields.iter().map(|f| format!("{f}")).collect();
            if *modulo == 0 {
                format!("{dst} = hash({})", fs.join(", "))
            } else {
                format!("{dst} = hash({}) % {modulo}", fs.join(", "))
            }
        }
        ActionOp::RegRead { reg, index, dst } => {
            format!("{dst} = reg{}[{}]", reg.0, operand(index))
        }
        ActionOp::RegRmw {
            reg,
            index,
            op,
            value,
            fetch,
        } => {
            let base = format!(
                "reg{}[{}] {op:?}= {}",
                reg.0,
                operand(index),
                operand(value)
            );
            match fetch {
                Some(f) => format!("{f} = fetch({base})"),
                None => base,
            }
        }
        ActionOp::RegArray {
            reg,
            base,
            op,
            values,
            readback,
        } => {
            let rb = if *readback { " (readback)" } else { "" };
            format!(
                "reg{}[{} + lane] {op:?}= {values}[lane] forall lanes{rb}",
                reg.0,
                operand(base)
            )
        }
        ActionOp::ArrayReduce { dst, src, op } => {
            format!("{dst} = reduce_{op:?}({src}[*])")
        }
        ActionOp::SetEgress(o) => format!("egress_port = {}", operand(o)),
        ActionOp::SetMulticast(o) => format!("multicast group {}", operand(o)),
        ActionOp::SetCentralPipe(o) => format!("central_pipe = {}", operand(o)),
        ActionOp::SetSortKey(o) => format!("sort_key = {}", operand(o)),
        ActionOp::CountElements(o) => format!("elements += {}", operand(o)),
        ActionOp::Drop => "drop".into(),
        ActionOp::MarkDrop => "mark_drop".into(),
        ActionOp::IfEq { a, b, then } => {
            let body: Vec<String> = then.iter().map(op_line).collect();
            format!(
                "if {} == {} {{ {} }}",
                operand(a),
                operand(b),
                body.join("; ")
            )
        }
        ActionOp::Recirculate => "recirculate".into(),
    }
}

/// Render a program as an indented listing.
pub fn describe_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", p.name);
    for (hi, h) in p.headers.iter().enumerate() {
        let fields: Vec<String> = h
            .fields
            .iter()
            .map(|f| {
                if f.count > 1 {
                    format!("{}: {}x{}b", f.name, f.count, f.bits)
                } else {
                    format!("{}: {}b", f.name, f.bits)
                }
            })
            .collect();
        let _ = writeln!(out, "  header h{hi} {} {{ {} }}", h.name, fields.join(", "));
    }
    for r in &p.registers {
        let _ = writeln!(out, "  register {} [{} x {}b]", r.name, r.entries, r.bits);
    }
    for (gi, g) in p.mcast_groups.iter().enumerate() {
        let ports: Vec<String> = g.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(out, "  mcast_group {gi} {{ {} }}", ports.join(", "));
    }
    for region in [Region::Ingress, Region::Central, Region::Egress] {
        let tables = p.region_tables(region);
        if tables.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  region {region:?} {{");
        for (_, t) in tables {
            let key = match t.key {
                Some(k) => format!("key {} {:?}/{}b", k.field, k.kind, k.bits),
                None => "keyless".into(),
            };
            let _ = writeln!(out, "    table {} [{} entries, {key}] {{", t.name, t.size);
            for (ai, a) in t.actions.iter().enumerate() {
                let marker = if ai == t.default_action { "*" } else { " " };
                let ops: Vec<String> = a.ops.iter().map(op_line).collect();
                let _ = writeln!(out, "     {marker}{}: {}", a.name, ops.join("; "));
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "  tm1: {:?}   tm2: {:?}", p.tm1.policy, p.tm2.policy);
    out.push('}');
    out
}

/// Render a placement as a per-stage summary.
pub fn describe_placement(pl: &Placement) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "placement of '{}' on '{}' (central: {:?}, recirc passes: {})",
        pl.program, pl.target, pl.central_impl, pl.recirc_passes
    );
    for (name, plan) in [
        ("ingress", &pl.ingress),
        ("central", &pl.central),
        ("egress", &pl.egress),
    ] {
        if plan.stages.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  {name}: {} stage(s)", plan.depth());
        for (si, st) in plan.stages.iter().enumerate() {
            let tables: Vec<String> = st
                .tables
                .iter()
                .map(|t| {
                    if t.replicas > 1 {
                        format!("{} (x{})", t.name, t.replicas)
                    } else {
                        t.name.clone()
                    }
                })
                .collect();
            let _ = writeln!(
                out,
                "    stage {si}: {} | {} MAUs, {} KiB tables, {} KiB regs",
                tables.join(", "),
                st.mau_slots_used,
                st.mem_bits_used / 8 / 1024,
                st.reg_bits_used / 8 / 1024,
            );
        }
    }
    let _ = write!(
        out,
        "  PHV: {} bits; total table memory: {} KiB",
        pl.phv_bits_used,
        pl.total_mem_bits / 8 / 1024
    );
    for n in &pl.notes {
        let _ = write!(out, "\n  note: {n}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, BinOp};
    use crate::header::{FieldDef, FieldId, FieldRef, HeaderDef};
    use crate::parser::ParserSpec;
    use crate::program::ProgramBuilder;
    use crate::registers::{RegAluOp, RegisterDef};
    use crate::table::{KeySpec, MatchKind, TableDef};
    use crate::target::TargetModel;
    use crate::{compile, CompileOptions};
    use adcp_sim::packet::PortId;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("sample");
        let h = b.header(HeaderDef::new(
            "kv",
            vec![
                FieldDef::scalar("dst", 16),
                FieldDef::scalar("slot", 16),
                FieldDef::array("w", 32, 4),
            ],
        ));
        b.parser(ParserSpec::single(h));
        let acc = b.register(RegisterDef::new("acc", 128, 32));
        b.mcast_group(vec![PortId(1), PortId(2)]);
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: FieldRef::new(crate::HeaderId(0), FieldId(0)),
                kind: MatchKind::Exact,
                bits: 16,
            }),
            actions: vec![
                ActionDef::new("fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
                ActionDef::new("drop", vec![ActionOp::Drop]),
            ],
            default_action: 1,
            default_params: vec![],
            size: 64,
        });
        b.table(TableDef {
            name: "agg".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "agg",
                vec![
                    ActionOp::RegArray {
                        reg: acc,
                        base: Operand::Field(FieldRef::new(crate::HeaderId(0), FieldId(1))),
                        op: RegAluOp::Add,
                        values: FieldRef::new(crate::HeaderId(0), FieldId(2)),
                        readback: true,
                    },
                    ActionOp::IfEq {
                        a: Operand::Field(FieldRef::new(crate::HeaderId(0), FieldId(1))),
                        b: Operand::Const(3),
                        then: vec![ActionOp::SetMulticast(Operand::Const(0))],
                    },
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    #[test]
    fn program_listing_is_complete() {
        let s = describe_program(&sample());
        for needle in [
            "program sample",
            "header h0 kv",
            "w: 4x32b",
            "register acc [128 x 32b]",
            "mcast_group 0 { p1, p2 }",
            "region Ingress",
            "table route [64 entries",
            "*drop: drop",
            "region Central",
            "readback",
            "if h0.f1 == 3 { multicast group 0 }",
            "tm1: Fifo",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn placement_listing_shows_replication() {
        let p = sample();
        let pl = compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .unwrap();
        let s = describe_placement(&pl);
        assert!(s.contains("on 'adcp-ref'"), "{s}");
        assert!(s.contains("central: Native"), "{s}");
        assert!(s.contains("ingress: 1 stage(s)"), "{s}");
        assert!(s.contains("PHV: "), "{s}");
        // RMT placement shows the replica count (array *match* table —
        // the array ALU op of `sample` cannot lower to RMT at all).
        let mut b = ProgramBuilder::new("rmt-arr");
        let h = b.header(HeaderDef::new("kv", vec![FieldDef::array("keys", 32, 4)]));
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "lookup".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: FieldRef::new(crate::HeaderId(0), FieldId(0)),
                kind: MatchKind::Exact,
                bits: 32,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size: 64,
        });
        let p2 = b.build();
        let pl = compile(&p2, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
        let s = describe_placement(&pl);
        assert!(s.contains("lookup (x4)"), "{s}");
        assert!(s.contains("note:"), "{s}");
    }

    #[test]
    fn op_lines_render_every_variant() {
        let f = FieldRef::new(crate::HeaderId(0), FieldId(0));
        let cases = vec![
            ActionOp::Set {
                dst: f,
                src: Operand::Const(1),
            },
            ActionOp::Bin {
                dst: f,
                op: BinOp::Add,
                a: Operand::Field(f),
                b: Operand::Param(0),
            },
            ActionOp::Hash {
                dst: f,
                fields: vec![f],
                modulo: 4,
            },
            ActionOp::RegRead {
                reg: crate::RegId(0),
                index: Operand::Const(0),
                dst: f,
            },
            ActionOp::ArrayReduce {
                dst: f,
                src: f,
                op: BinOp::Max,
            },
            ActionOp::SetSortKey(Operand::Field(f)),
            ActionOp::SetCentralPipe(Operand::Const(2)),
            ActionOp::CountElements(Operand::Const(4)),
            ActionOp::MarkDrop,
            ActionOp::Recirculate,
        ];
        for c in cases {
            assert!(!op_line(&c).is_empty());
        }
    }
}
