//! Packet header vectors.
//!
//! The PHV is the register file that travels between pipeline stages (the
//! paper's Figure 1 insert; it notes "the PHV naming is misleading; its
//! elements are scalars extracted from the packets"). Our PHV generalizes
//! exactly where the ADCP does: in addition to scalar slots it can carry
//! **array slots**, so a stage's interconnected MAUs can see a whole array
//! of keys at once (§3.2).
//!
//! A [`PhvLayout`] is computed once per program from its header definitions;
//! a [`Phv`] is the per-packet instance. The layout also knows its total bit
//! width, which the compiler checks against the target's PHV budget.

use crate::header::{FieldRef, HeaderDef, HeaderId};
use adcp_sim::packet::{EgressSpec, PortId};
use std::collections::HashMap;

/// Where a field lives inside a [`Phv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Index into the scalar bank.
    Scalar(usize),
    /// Index into the array bank.
    Array(usize),
}

/// Static layout: maps every declared field to a PHV slot.
#[derive(Debug, Clone)]
pub struct PhvLayout {
    slots: HashMap<FieldRef, Slot>,
    scalar_widths: Vec<u8>,
    array_dims: Vec<(u8, u16)>, // (element bits, count)
    headers: usize,
    total_bits: u32,
}

impl PhvLayout {
    /// Build a layout covering all fields of the given headers
    /// (indexed by their position = `HeaderId`).
    pub fn build(headers: &[HeaderDef]) -> Self {
        let mut slots = HashMap::new();
        let mut scalar_widths = Vec::new();
        let mut array_dims = Vec::new();
        let mut total_bits = 0u32;
        for (hi, h) in headers.iter().enumerate() {
            for (fi, f) in h.fields.iter().enumerate() {
                let fr = FieldRef::new(HeaderId(hi as u16), crate::header::FieldId(fi as u16));
                total_bits += f.total_bits();
                if f.is_array() {
                    slots.insert(fr, Slot::Array(array_dims.len()));
                    array_dims.push((f.bits, f.count));
                } else {
                    slots.insert(fr, Slot::Scalar(scalar_widths.len()));
                    scalar_widths.push(f.bits);
                }
            }
        }
        PhvLayout {
            slots,
            scalar_widths,
            array_dims,
            headers: headers.len(),
            total_bits,
        }
    }

    /// Total bits of all fields — compared against the target's PHV budget.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Number of scalar slots.
    pub fn num_scalars(&self) -> usize {
        self.scalar_widths.len()
    }

    /// Number of array slots.
    pub fn num_arrays(&self) -> usize {
        self.array_dims.len()
    }

    /// Element width and count of the array slot holding `f`, if it is one.
    pub fn array_dims_of(&self, f: FieldRef) -> Option<(u8, u16)> {
        match self.slots.get(&f)? {
            Slot::Array(i) => Some(self.array_dims[*i]),
            Slot::Scalar(_) => None,
        }
    }

    /// True if `f` names an array field.
    pub fn is_array(&self, f: FieldRef) -> bool {
        matches!(self.slots.get(&f), Some(Slot::Array(_)))
    }

    /// Create an empty PHV instance for this layout.
    pub fn instantiate(&self) -> Phv {
        Phv {
            scalars: vec![0; self.scalar_widths.len()],
            arrays: self
                .array_dims
                .iter()
                .map(|&(_, c)| vec![0u64; c as usize])
                .collect(),
            valid: vec![false; self.headers],
            intr: Intrinsics::default(),
        }
    }

    /// Reshape a recycled [`Phv`] to this layout in place — the zero-state
    /// of [`PhvLayout::instantiate`] without its per-field allocations.
    /// Hot parse paths cycle one scratch PHV per pipeline this way.
    pub fn reinstantiate(&self, phv: &mut Phv) {
        phv.scalars.clear();
        phv.scalars.resize(self.scalar_widths.len(), 0);
        phv.arrays.truncate(self.array_dims.len());
        for (i, &(_, c)) in self.array_dims.iter().enumerate() {
            if i < phv.arrays.len() {
                phv.arrays[i].clear();
                phv.arrays[i].resize(c as usize, 0);
            } else {
                phv.arrays.push(vec![0u64; c as usize]);
            }
        }
        phv.valid.clear();
        phv.valid.resize(self.headers, false);
        phv.intr = Intrinsics::default();
    }
}

/// Intrinsic (target-independent) per-packet metadata computed by the
/// program: forwarding decisions and TM directives.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Intrinsics {
    /// RX port the packet arrived on.
    pub ingress_port: Option<PortId>,
    /// Forwarding decision (set by `SetEgress`/`Multicast`/`Drop` actions).
    pub egress: EgressSpec,
    /// Which central pipeline the first TM should send this packet to
    /// (ADCP §3.1 — typically computed by a `Hash` action).
    pub central_pipe: Option<u32>,
    /// Sort key for the first TM's order-preserving merge (§3.1).
    pub sort_key: Option<u64>,
    /// Request another ingress pass (RMT recirculation).
    pub recirculate: bool,
    /// Application data elements this packet carried (keys/weights/rows);
    /// feeds the keys-per-second meters of §3.2.
    pub elements: u32,
}

/// A per-packet header vector instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Phv {
    scalars: Vec<u64>,
    arrays: Vec<Vec<u64>>,
    valid: Vec<bool>,
    /// Intrinsic metadata.
    pub intr: Intrinsics,
}

impl Phv {
    /// An empty shell with no field storage; shape it with
    /// [`PhvLayout::reinstantiate`] before use. Exists so recycling pools
    /// have a cheap starting value.
    pub fn empty() -> Phv {
        Phv {
            scalars: Vec::new(),
            arrays: Vec::new(),
            valid: Vec::new(),
            intr: Intrinsics::default(),
        }
    }

    /// Read a scalar field (element 0 of arrays).
    pub fn get(&self, layout: &PhvLayout, f: FieldRef) -> u64 {
        match layout.slots[&f] {
            Slot::Scalar(i) => self.scalars[i],
            Slot::Array(i) => self.arrays[i][0],
        }
    }

    /// Read one element of a field (scalar fields only have element 0).
    pub fn get_elem(&self, layout: &PhvLayout, f: FieldRef, elem: usize) -> u64 {
        match layout.slots[&f] {
            Slot::Scalar(i) => {
                debug_assert_eq!(elem, 0, "scalar field indexed at {elem}");
                self.scalars[i]
            }
            Slot::Array(i) => self.arrays[i][elem],
        }
    }

    /// Read a whole array field (one-element slice view for scalars).
    pub fn get_array<'a>(&'a self, layout: &PhvLayout, f: FieldRef) -> &'a [u64] {
        match layout.slots[&f] {
            Slot::Scalar(i) => std::slice::from_ref(&self.scalars[i]),
            Slot::Array(i) => &self.arrays[i],
        }
    }

    /// Write a scalar field, masking to the field width.
    pub fn set(&mut self, layout: &PhvLayout, f: FieldRef, v: u64) {
        match layout.slots[&f] {
            Slot::Scalar(i) => {
                let w = layout.scalar_widths[i];
                self.scalars[i] = mask_to(v, w);
            }
            Slot::Array(i) => {
                let (w, _) = layout.array_dims[i];
                self.arrays[i][0] = mask_to(v, w);
            }
        }
    }

    /// Write one element of an array field.
    pub fn set_elem(&mut self, layout: &PhvLayout, f: FieldRef, elem: usize, v: u64) {
        match layout.slots[&f] {
            Slot::Scalar(i) => {
                debug_assert_eq!(elem, 0);
                let w = layout.scalar_widths[i];
                self.scalars[i] = mask_to(v, w);
            }
            Slot::Array(i) => {
                let (w, _) = layout.array_dims[i];
                self.arrays[i][elem] = mask_to(v, w);
            }
        }
    }

    /// Mark a header as present in this packet.
    pub fn set_valid(&mut self, h: HeaderId) {
        self.valid[h.0 as usize] = true;
    }

    /// Is a header present?
    pub fn is_valid(&self, h: HeaderId) -> bool {
        self.valid.get(h.0 as usize).copied().unwrap_or(false)
    }
}

fn mask_to(v: u64, bits: u8) -> u64 {
    if bits >= 64 {
        v
    } else {
        v & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{FieldDef, FieldId};

    fn layout() -> (Vec<HeaderDef>, PhvLayout) {
        let headers = vec![
            HeaderDef::new(
                "eth",
                vec![FieldDef::scalar("dst", 48), FieldDef::scalar("type", 16)],
            ),
            HeaderDef::new(
                "kv",
                vec![FieldDef::scalar("op", 8), FieldDef::array("keys", 32, 8)],
            ),
        ];
        let l = PhvLayout::build(&headers);
        (headers, l)
    }

    fn fr(h: u16, f: u16) -> FieldRef {
        FieldRef::new(HeaderId(h), FieldId(f))
    }

    #[test]
    fn layout_counts_and_bits() {
        let (_, l) = layout();
        assert_eq!(l.num_scalars(), 3);
        assert_eq!(l.num_arrays(), 1);
        assert_eq!(l.total_bits(), 48 + 16 + 8 + 256);
        assert!(l.is_array(fr(1, 1)));
        assert!(!l.is_array(fr(0, 0)));
        assert_eq!(l.array_dims_of(fr(1, 1)), Some((32, 8)));
        assert_eq!(l.array_dims_of(fr(0, 0)), None);
    }

    #[test]
    fn scalar_read_write_masks_width() {
        let (_, l) = layout();
        let mut phv = l.instantiate();
        phv.set(&l, fr(0, 1), 0x1_FFFF); // 16-bit field
        assert_eq!(phv.get(&l, fr(0, 1)), 0xFFFF);
        phv.set(&l, fr(1, 0), 0xABC); // 8-bit field
        assert_eq!(phv.get(&l, fr(1, 0)), 0xBC);
    }

    #[test]
    fn array_elements_are_independent() {
        let (_, l) = layout();
        let mut phv = l.instantiate();
        for i in 0..8 {
            phv.set_elem(&l, fr(1, 1), i, (i as u64 + 1) * 10);
        }
        assert_eq!(
            phv.get_array(&l, fr(1, 1)),
            &[10, 20, 30, 40, 50, 60, 70, 80]
        );
        assert_eq!(phv.get_elem(&l, fr(1, 1), 3), 40);
        // Element 0 doubles as the scalar view.
        assert_eq!(phv.get(&l, fr(1, 1)), 10);
    }

    #[test]
    fn header_validity_tracking() {
        let (_, l) = layout();
        let mut phv = l.instantiate();
        assert!(!phv.is_valid(HeaderId(0)));
        phv.set_valid(HeaderId(0));
        assert!(phv.is_valid(HeaderId(0)));
        assert!(!phv.is_valid(HeaderId(1)));
        assert!(!phv.is_valid(HeaderId(9)), "unknown header is not valid");
    }

    #[test]
    fn intrinsics_default_clean() {
        let (_, l) = layout();
        let phv = l.instantiate();
        assert_eq!(phv.intr.egress, EgressSpec::Unset);
        assert!(phv.intr.central_pipe.is_none());
        assert!(!phv.intr.recirculate);
        assert_eq!(phv.intr.elements, 0);
    }
}
