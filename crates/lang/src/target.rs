//! Target resource models.
//!
//! A [`TargetModel`] captures everything the compiler needs to know about a
//! switch generation: pipeline counts and clock, stages, MAUs per stage,
//! memory budgets, PHV width, and — the ADCP differences — whether a
//! central region exists (§3.1), the maximum native array width (§3.2), and
//! the port demultiplexing factor (§3.3).
//!
//! The RMT presets follow the paper's Table 2 rows; the ADCP preset follows
//! §3 and Table 3.

use adcp_sim::port::LinkSpeed;
use adcp_sim::time::Freq;
use serde::Serialize;

/// Architecture family of a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Arch {
    /// Classic RMT: multiplexed ports, one TM, shared-nothing pipelines,
    /// scalar MAUs.
    Rmt,
    /// The proposed coflow processor: demultiplexed ports, two TMs, a
    /// central (global partitioned) region, array-capable MAUs.
    Adcp,
    /// dRMT (Chole et al., discussed in the paper's §1): RMT semantics
    /// with **disaggregated table memory** — tables draw from a chip-wide
    /// pool instead of per-stage SRAM. Relieves placement pressure, but
    /// keeps the scalar-MAU model, so the Fig. 3 replication tax remains.
    Drmt,
}

/// A concrete switch configuration the compiler can place programs onto.
#[derive(Debug, Clone, Serialize)]
pub struct TargetModel {
    /// Human-readable name.
    pub name: String,
    /// Architecture family.
    pub arch: Arch,
    /// Number of front-panel ports.
    pub ports: u16,
    /// Speed of each port.
    pub port_speed_gbps: u32,
    /// RMT: ports multiplexed per pipeline (`ports / ports_per_pipe` =
    /// pipeline count). ADCP: ignored (see `demux_factor`).
    pub ports_per_pipe: u16,
    /// ADCP: each port is demultiplexed into this many pipelines (§3.3).
    /// 1 on RMT.
    pub demux_factor: u16,
    /// Pipeline clock in GHz.
    pub pipe_ghz: f64,
    /// Match-action stages per ingress pipeline.
    pub ingress_stages: u16,
    /// Stages per egress pipeline.
    pub egress_stages: u16,
    /// Stages per central pipeline (0 = no central region).
    pub central_stages: u16,
    /// Number of central pipelines (ADCP only).
    pub central_pipes: u16,
    /// Match-action units per stage.
    pub maus_per_stage: u16,
    /// Table SRAM per MAU, in bits.
    pub mau_mem_bits: u64,
    /// Stateful register memory per stage, in bits.
    pub stage_reg_bits: u64,
    /// PHV budget, in bits.
    pub phv_bits: u32,
    /// Maximum array width a stage can match natively (1 = scalar only).
    pub max_array_width: u16,
    /// Minimum on-wire packet size the design assumes, in bytes (Table 2's
    /// "minimum packet" column).
    pub min_wire_bytes: u32,
    /// Fraction of pipeline bandwidth reserved for recirculation ports
    /// (RMT). 0.0 means recirculation steals from front-panel bandwidth.
    pub recirc_reserved: f64,
    /// dRMT-style disaggregated table memory: per-stage SRAM bounds are
    /// replaced by one chip-wide pool (see [`TargetModel::pool_bits`]).
    pub pooled_table_memory: bool,
}

impl TargetModel {
    /// Number of ingress (and egress) pipelines this configuration has.
    pub fn num_pipes(&self) -> u16 {
        match self.arch {
            Arch::Rmt | Arch::Drmt => {
                debug_assert!(self.ports.is_multiple_of(self.ports_per_pipe));
                self.ports / self.ports_per_pipe
            }
            Arch::Adcp => self.ports * self.demux_factor,
        }
    }

    /// Pipeline clock as a [`Freq`].
    pub fn pipe_freq(&self) -> Freq {
        Freq::ghz(self.pipe_ghz)
    }

    /// Port speed as a [`LinkSpeed`].
    pub fn port_speed(&self) -> LinkSpeed {
        LinkSpeed::gbps(self.port_speed_gbps)
    }

    /// Aggregate switch throughput in Gbps.
    pub fn throughput_gbps(&self) -> u64 {
        self.ports as u64 * self.port_speed_gbps as u64
    }

    /// Bandwidth entering one pipeline, in Gbps.
    ///
    /// RMT: `ports_per_pipe × port_speed` (multiplexing up).
    /// ADCP: `port_speed / demux_factor` (demultiplexing down, §3.3).
    pub fn pipe_bandwidth_gbps(&self) -> f64 {
        match self.arch {
            Arch::Rmt | Arch::Drmt => self.ports_per_pipe as f64 * self.port_speed_gbps as f64,
            Arch::Adcp => self.port_speed_gbps as f64 / self.demux_factor as f64,
        }
    }

    /// The pipeline clock this configuration *requires* to sustain line
    /// rate at its minimum packet size: `freq = pipe_bw / (8 × min_pkt)`.
    /// This is the formula every row of Tables 2 and 3 satisfies.
    pub fn required_pipe_ghz(&self) -> f64 {
        self.pipe_bandwidth_gbps() / (8.0 * self.min_wire_bytes as f64) * 1e9 / 1e9
    }

    /// Peak packets/s of the whole switch at the minimum packet size.
    pub fn max_pps(&self) -> f64 {
        self.throughput_gbps() as f64 * 1e9 / (self.min_wire_bytes as f64 * 8.0)
    }

    /// Total table memory per stage (all MAUs), in bits.
    pub fn stage_mem_bits(&self) -> u64 {
        self.maus_per_stage as u64 * self.mau_mem_bits
    }

    /// True when the target has a global partitioned area.
    pub fn has_central(&self) -> bool {
        self.central_stages > 0 && self.central_pipes > 0
    }

    /// Chip-wide table memory pool for dRMT-style targets: the same total
    /// SRAM a per-stage design would have, minus the locality constraint.
    pub fn pool_bits(&self) -> u64 {
        (self.ingress_stages + self.egress_stages + self.central_stages) as u64
            * self.stage_mem_bits()
    }

    /// A dRMT-like target: the 12.8T RMT geometry with disaggregated
    /// table memory (the paper's §1: "dRMT ... added shared memory
    /// capabilities on top of an otherwise unaltered RMT switch").
    pub fn drmt_12t() -> Self {
        TargetModel {
            name: "drmt-12.8T".into(),
            arch: Arch::Drmt,
            pooled_table_memory: true,
            ..Self::rmt_12t()
        }
    }

    // ------------------------------------------------------------------
    // Presets
    // ------------------------------------------------------------------

    /// Table 2, row 3: a Tofino-class 12.8 Tbps RMT switch. 64×400 Gbps,
    /// 4 pipelines of 8 ports, 247 B minimum packet, 1.62 GHz.
    pub fn rmt_12t() -> Self {
        TargetModel {
            name: "rmt-12.8T".into(),
            arch: Arch::Rmt,
            ports: 32,
            port_speed_gbps: 400,
            ports_per_pipe: 8,
            demux_factor: 1,
            pipe_ghz: 1.62,
            ingress_stages: 10,
            egress_stages: 10,
            central_stages: 0,
            central_pipes: 0,
            maus_per_stage: 16,
            mau_mem_bits: 1_024 * 1_024, // 128 KiB of SRAM per MAU
            stage_reg_bits: 2 * 1_024 * 1_024,
            phv_bits: 4_096,
            max_array_width: 1,
            min_wire_bytes: 247,
            recirc_reserved: 0.0,
            pooled_table_memory: false,
        }
    }

    /// Table 2, row 1: the original RMT configuration. 64×10 Gbps in one
    /// 0.95 GHz pipeline at 84 B minimum packets.
    pub fn rmt_640g() -> Self {
        TargetModel {
            name: "rmt-640G".into(),
            arch: Arch::Rmt,
            ports: 64,
            port_speed_gbps: 10,
            ports_per_pipe: 64,
            demux_factor: 1,
            pipe_ghz: 0.95,
            ingress_stages: 16,
            egress_stages: 16,
            central_stages: 0,
            central_pipes: 0,
            maus_per_stage: 16,
            mau_mem_bits: 1_024 * 1_024,
            stage_reg_bits: 2 * 1_024 * 1_024,
            phv_bits: 4_096,
            max_array_width: 1,
            min_wire_bytes: 84,
            recirc_reserved: 0.0,
            pooled_table_memory: false,
        }
    }

    /// The ADCP reference design used throughout the experiments:
    /// 16×800 Gbps ports, 1:2 demux (Table 3: 0.60 GHz pipelines at 84 B
    /// minimum packets), 16-wide array MAUs, a 4-pipeline central region.
    pub fn adcp_reference() -> Self {
        TargetModel {
            name: "adcp-ref".into(),
            arch: Arch::Adcp,
            ports: 16,
            port_speed_gbps: 800,
            ports_per_pipe: 1,
            demux_factor: 2,
            pipe_ghz: 0.60,
            ingress_stages: 10,
            egress_stages: 10,
            central_stages: 12,
            central_pipes: 4,
            maus_per_stage: 16,
            mau_mem_bits: 1_024 * 1_024,
            stage_reg_bits: 4 * 1_024 * 1_024,
            phv_bits: 8_192,
            max_array_width: 16,
            min_wire_bytes: 84,
            recirc_reserved: 0.0,
            pooled_table_memory: false,
        }
    }

    /// An ADCP sized like the RMT 12.8T for like-for-like compiler
    /// comparisons (same stages/MAUs/memory; only the architectural
    /// features differ).
    pub fn adcp_like_rmt_12t() -> Self {
        let rmt = Self::rmt_12t();
        TargetModel {
            name: "adcp-12.8T".into(),
            arch: Arch::Adcp,
            ports: rmt.ports,
            port_speed_gbps: rmt.port_speed_gbps,
            ports_per_pipe: 1,
            demux_factor: 2,
            pipe_ghz: 0.30, // 400G / 2 at 84 B needs ~0.30 GHz
            central_stages: rmt.ingress_stages,
            central_pipes: 4,
            max_array_width: 16,
            min_wire_bytes: 84,
            ..rmt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmt_12t_matches_table2_row() {
        let t = TargetModel::rmt_12t();
        assert_eq!(t.throughput_gbps(), 12_800);
        assert_eq!(t.num_pipes(), 4);
        // freq = 3.2 Tbps / (8 × 247 B) ≈ 1.62 GHz
        assert!((t.required_pipe_ghz() - 1.62).abs() < 0.01);
        // "they can only process 5-6 billion packets per second" (§2 ②).
        let bpps = t.max_pps() / 1e9;
        assert!((5.0..7.0).contains(&bpps), "bpps = {bpps}");
    }

    #[test]
    fn rmt_640g_matches_table2_row1() {
        let t = TargetModel::rmt_640g();
        assert_eq!(t.num_pipes(), 1);
        assert!((t.required_pipe_ghz() - 0.952).abs() < 0.01);
    }

    #[test]
    fn adcp_reference_matches_table3() {
        let t = TargetModel::adcp_reference();
        // 800G demuxed 1:2 at 84 B → 0.595 GHz (Table 3 row 2 says 0.60).
        assert!((t.required_pipe_ghz() - 0.595).abs() < 0.01);
        assert_eq!(t.num_pipes(), 32, "16 ports × 1:2 demux");
        assert!(t.has_central());
        assert_eq!(t.max_array_width, 16);
    }

    #[test]
    fn pipe_bandwidth_directions() {
        let rmt = TargetModel::rmt_12t();
        assert_eq!(rmt.pipe_bandwidth_gbps(), 3_200.0, "8 × 400G multiplexed");
        let adcp = TargetModel::adcp_reference();
        assert_eq!(adcp.pipe_bandwidth_gbps(), 400.0, "800G / 2 demuxed");
    }

    #[test]
    fn drmt_pools_memory() {
        let d = TargetModel::drmt_12t();
        assert!(d.pooled_table_memory);
        assert_eq!(d.pool_bits(), 20 * 16 * 1024 * 1024);
        assert_eq!(d.num_pipes(), 4, "same geometry as the RMT 12.8T");
        assert_eq!(d.max_array_width, 1, "dRMT keeps the scalar-MAU model");
    }

    #[test]
    fn stage_memory() {
        let t = TargetModel::rmt_12t();
        assert_eq!(t.stage_mem_bits(), 16 * 1_024 * 1_024);
        assert!(!t.has_central());
    }
}
