//! # adcp-fabric — a leaf–spine network of ADCP switches
//!
//! Every experiment below this crate runs **one** switch in isolation; the
//! paper's ambition (and ROADMAP item 2) is a network. This crate wires
//! [`adcp_core::AdcpSwitch`] instances into a leaf–spine fabric:
//!
//! * **Topology** — `n_leaves` leaf switches host the endpoints (ports
//!   `0..hosts_per_leaf` per leaf) and connect to every one of `n_spines`
//!   spine switches; the spines are stateless gk-range routers.
//! * **Links** — [`adcp_sim::Link`]: store-and-forward serialization at the
//!   link rate plus strictly positive propagation latency, with FCS-sealed
//!   frames re-verified by the receiving switch's RX stage.
//! * **Placement** — [`adcp_lang::fabric::place`] splits one logical
//!   program's global partitioned area across the leaves by steer-key
//!   range; ownership comes from the same `adcp-ctrl` planners that
//!   balance central pipelines inside a single switch ([`plan_owners`]).
//! * **Driving loop** — each member switch keeps its own calendar queue;
//!   [`Fabric::run_until_idle`] repeatedly advances every switch to the
//!   *global* minimum next-event time, then exchanges link traffic. A
//!   frame handed to a peer always arrives strictly later than the time
//!   already simulated (positive link latency), so no switch ever receives
//!   an event in its past and the interleaving is deterministic.
//!
//! The conformance harness (`adcp-bench`) runs every seeded random program
//! on this fabric *and* on a single big switch and requires bit-identical
//! delivered frames, counters, and merged register state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use adcp_core::{AdcpConfig, AdcpSwitch, Delivered, PartitionMap};
use adcp_ctrl::plan_scale_to;
use adcp_lang::compile::{CompileError, CompileOptions};
use adcp_lang::fabric::{place, FabricSpec, PlaceError};
use adcp_lang::registers::RegId;
use adcp_lang::table::{Entry, TableError};
use adcp_lang::{fold_hash, Program, TargetModel};
use adcp_sim::int::Postcard;
use adcp_sim::time::{Duration, SimTime};
use adcp_sim::{FlowId, Link, LinkSpeed, Packet, PortId, SimRng};

pub use adcp_lang::fabric as placement;

/// Knobs for a fabric instance.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Rate of every inter-switch link.
    pub link_speed: LinkSpeed,
    /// Propagation latency of every inter-switch link (must be > 0).
    pub link_latency: Duration,
    /// Per-switch configuration (buffering, demux, `central_workers`, …).
    pub switch: AdcpConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            link_speed: LinkSpeed::gbps(400),
            link_latency: Duration::from_ns(200),
            switch: AdcpConfig::default(),
        }
    }
}

/// Why a fabric could not be built.
#[derive(Debug)]
pub enum FabricError {
    /// The placement pass rejected the program or the fabric shape.
    Place(PlaceError),
    /// A per-device program did not compile for its target.
    Compile(CompileError),
    /// A synthesized steering entry failed to install.
    Install {
        /// Device it failed on (`leaf N` / `spine N`).
        device: String,
        /// Table the entry targeted.
        table: String,
        /// The underlying error.
        error: TableError,
    },
}

impl From<PlaceError> for FabricError {
    fn from(e: PlaceError) -> Self {
        FabricError::Place(e)
    }
}

impl From<CompileError> for FabricError {
    fn from(e: CompileError) -> Self {
        FabricError::Compile(e)
    }
}

/// Deterministic per-switch counter summary (serialized in reports).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SwitchReport {
    /// Device name (`leaf0`, `spine1`, …).
    pub device: String,
    /// Frames offered to RX ports.
    pub injected: u64,
    /// Frames fully serialized out of TX ports.
    pub delivered: u64,
    /// Every typed drop, summed.
    pub drops: u64,
    /// FCS verification failures.
    pub fcs_drops: u64,
    /// Frames dropped by an explicit program decision.
    pub filtered: u64,
    /// Frames that reached egress with no forwarding decision.
    pub no_decision: u64,
    /// MAT lookups (lanes count individually).
    pub mat_lookups: u64,
    /// MAT lookups that hit.
    pub mat_hits: u64,
}

/// Retained link-crossing records per fabric run (bounded; the count of
/// crossings past the cap is kept so nothing truncates silently).
const CROSSINGS_CAP: usize = 65_536;

/// One frame crossing an inter-switch link — the raw material for
/// Chrome-trace flow events and collector path edges. Recorded only while
/// the journey tracer or INT stamping is active (zero cost otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crossing {
    /// Packet id.
    pub pkt: u64,
    /// Flow id.
    pub flow: u64,
    /// Transmitting device (leaf `l` = `l`, spine `s` = `n_leaves + s`).
    pub from_device: u16,
    /// Receiving device.
    pub to_device: u16,
    /// Last bit out of the transmitting switch.
    pub depart: SimTime,
    /// First instant the receiving switch may see the frame.
    pub arrive: SimTime,
}

/// One direction of one cable, for reports.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LinkReport {
    /// `leafN->spineM` or `spineM->leafN`.
    pub name: String,
    /// Frames carried.
    pub frames: u64,
    /// Wire bytes carried.
    pub wire_bytes: u64,
}

/// Everything observable about a finished fabric run, in a deterministic
/// serialization order (the shard-determinism tests compare these byte for
/// byte across `central_workers` settings).
#[derive(Debug, Clone, serde::Serialize)]
pub struct FabricReport {
    /// Frames injected at host ports.
    pub host_injected: u64,
    /// Frames delivered to host ports.
    pub host_delivered: u64,
    /// Frames that crossed an inter-switch link.
    pub forwarded: u64,
    /// Per-leaf counters.
    pub leaves: Vec<SwitchReport>,
    /// Per-spine counters.
    pub spines: Vec<SwitchReport>,
    /// Per-link traffic.
    pub links: Vec<LinkReport>,
    /// Order-sensitive digest of every host-delivered frame
    /// (port, time, id, payload bytes).
    pub delivered_digest: u64,
    /// Digest of every central register cell on every leaf.
    pub register_digest: u64,
}

/// A leaf–spine fabric of ADCP switches running one placed program.
pub struct Fabric {
    spec: FabricSpec,
    leaves: Vec<AdcpSwitch>,
    spines: Vec<AdcpSwitch>,
    /// `up[l][s]`: leaf `l` → spine `s`. `down[s][l]`: spine `s` → leaf `l`.
    up: Vec<Vec<Link>>,
    down: Vec<Vec<Link>>,
    host_injected: u64,
    host_delivered: u64,
    forwarded: u64,
    delivered: Vec<Delivered>,
    /// Record link crossings (true while tracing or INT stamping is on).
    record_crossings: bool,
    crossings: Vec<Crossing>,
    crossings_truncated: u64,
}

impl Fabric {
    /// Build the fabric: place `program` onto `spec`, instantiate one ADCP
    /// switch per leaf and spine (leaf ports = host slots + uplinks; spine
    /// port `l` faces leaf `l`), connect every leaf–spine pair with a pair
    /// of directed links, and install the synthesized steering entries.
    ///
    /// The *original* program's entries still need to be installed with
    /// [`Fabric::install_all`], verbatim, exactly as on a single switch.
    pub fn new(
        program: &Program,
        spec: FabricSpec,
        cfg: FabricConfig,
    ) -> Result<Self, FabricError> {
        let placed = place(program, &spec)?;
        let leaf_target = TargetModel {
            ports: spec.leaf_ports() as u16,
            name: "adcp-leaf".into(),
            ..TargetModel::adcp_reference()
        };
        let spine_target = TargetModel {
            ports: spec.n_leaves as u16,
            name: "adcp-spine".into(),
            ..TargetModel::adcp_reference()
        };
        let mut leaves = Vec::new();
        for (l, installs) in placed.leaf_installs.iter().enumerate() {
            // Fabric-unique INT device ids: leaf `l` = `l`,
            // spine `s` = `n_leaves + s`.
            let mut swcfg = cfg.switch.clone();
            swcfg.device = l as u16;
            let mut sw = AdcpSwitch::new(
                placed.leaf_program.clone(),
                leaf_target.clone(),
                CompileOptions::default(),
                swcfg,
            )?;
            for (table, entry) in installs {
                sw.install_all(table, entry.clone())
                    .map_err(|error| FabricError::Install {
                        device: format!("leaf{l}"),
                        table: table.clone(),
                        error,
                    })?;
            }
            leaves.push(sw);
        }
        let mut spines = Vec::new();
        for s in 0..spec.n_spines {
            let mut swcfg = cfg.switch.clone();
            swcfg.device = (spec.n_leaves + s) as u16;
            let mut sw = AdcpSwitch::new(
                placed.spine_program.clone(),
                spine_target.clone(),
                CompileOptions::default(),
                swcfg,
            )?;
            for (table, entry) in &placed.spine_installs {
                sw.install_all(table, entry.clone())
                    .map_err(|error| FabricError::Install {
                        device: format!("spine{s}"),
                        table: table.clone(),
                        error,
                    })?;
            }
            spines.push(sw);
        }
        let up = (0..spec.n_leaves)
            .map(|_| {
                (0..spec.n_spines)
                    .map(|_| Link::new(cfg.link_speed, cfg.link_latency))
                    .collect()
            })
            .collect();
        let down = (0..spec.n_spines)
            .map(|_| {
                (0..spec.n_leaves)
                    .map(|_| Link::new(cfg.link_speed, cfg.link_latency))
                    .collect()
            })
            .collect();
        // Crossings feed Chrome-trace flow events and collector path
        // edges; both consumers are driven by the (env-resolved) tracer
        // and INT knobs, so record only when one of them is live.
        let record_crossings = leaves
            .iter()
            .any(|sw| sw.tracer.hops_on() || sw.int_knob().on());
        Ok(Fabric {
            spec,
            leaves,
            spines,
            up,
            down,
            host_injected: 0,
            host_delivered: 0,
            forwarded: 0,
            delivered: Vec::new(),
            record_crossings,
            crossings: Vec::new(),
            crossings_truncated: 0,
        })
    }

    /// The fabric shape and ownership this instance was built with.
    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    /// Leaf switch `l`.
    pub fn leaf(&self, l: usize) -> &AdcpSwitch {
        &self.leaves[l]
    }

    /// Spine switch `s`.
    pub fn spine(&self, s: usize) -> &AdcpSwitch {
        &self.spines[s]
    }

    /// Mutable leaf access (control-plane experiments).
    pub fn leaf_mut(&mut self, l: usize) -> &mut AdcpSwitch {
        &mut self.leaves[l]
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Number of spines.
    pub fn n_spines(&self) -> usize {
        self.spines.len()
    }

    /// Frames injected at host ports so far.
    pub fn host_injected(&self) -> u64 {
        self.host_injected
    }

    /// Frames delivered to host ports so far.
    pub fn host_delivered(&self) -> u64 {
        self.host_delivered
    }

    /// Frames that crossed an inter-switch link so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Install an entry of the *original* program on every leaf — the
    /// fabric analogue of one-big-switch [`AdcpSwitch::install_all`].
    pub fn install_all(&mut self, table: &str, entry: Entry) -> Result<(), TableError> {
        for sw in &mut self.leaves {
            sw.install_all(table, entry.clone())?;
        }
        Ok(())
    }

    /// Offer a packet to a logical host port at `t` (logical port `p` is
    /// slot `p / n_leaves` on leaf `p % n_leaves`).
    pub fn inject(&mut self, logical_port: u32, pkt: Packet, t: SimTime) {
        assert!(
            logical_port < self.spec.logical_ports(),
            "logical port {logical_port} out of range"
        );
        let leaf = self.spec.leaf_of(logical_port) as usize;
        let slot = self.spec.slot_of(logical_port);
        self.host_injected += 1;
        self.leaves[leaf].inject(PortId(slot as u16), pkt, t);
    }

    /// Rebuild a delivered frame as a fresh packet for the next hop,
    /// preserving identity and creation time. A sealed frame is resealed
    /// over its current bytes (the transmitting switch already did this;
    /// repeating it keeps the call safe for unsealed sources too).
    fn relay(d: Delivered) -> Packet {
        let sealed = d.meta.fcs.is_some();
        let mut p = Packet::new(d.meta.id, d.meta.flow, d.data);
        p.meta.created = d.meta.created;
        p.meta.coflow = d.meta.coflow;
        p.meta.goodput_bytes = d.meta.goodput_bytes;
        // The INT header region rides the frame across the link, so the
        // next device appends to the same stack (the end-to-end chain).
        p.meta.int = d.meta.int;
        if sealed {
            p.reseal();
        }
        p
    }

    /// Drain every switch's deliveries: host-slot frames are recorded
    /// (remapped to logical ports); uplink/downlink frames cross their
    /// link and are injected into the peer switch at the link's arrival
    /// time — strictly after the time the fabric has simulated up to.
    fn exchange(&mut self) {
        for l in 0..self.leaves.len() {
            for d in self.leaves[l].take_delivered() {
                let port = d.port.0 as u32;
                if port < self.spec.hosts_per_leaf {
                    let logical = self.spec.logical_of(l as u32, port);
                    self.host_delivered += 1;
                    self.delivered.push(Delivered {
                        port: PortId(logical as u16),
                        time: d.time,
                        data: d.data,
                        meta: d.meta,
                    });
                } else {
                    let s = (port - self.spec.hosts_per_leaf) as usize;
                    let tx_done = d.time;
                    let pkt = Self::relay(d);
                    let arrive = self.up[l][s].transfer(&pkt, tx_done);
                    self.forwarded += 1;
                    if self.record_crossings {
                        self.record_crossing(Crossing {
                            pkt: pkt.meta.id,
                            flow: pkt.meta.flow.0,
                            from_device: l as u16,
                            to_device: (self.spec.n_leaves as usize + s) as u16,
                            depart: tx_done,
                            arrive,
                        });
                    }
                    self.spines[s].inject(PortId(l as u16), pkt, arrive);
                }
            }
        }
        for s in 0..self.spines.len() {
            for d in self.spines[s].take_delivered() {
                let leaf = d.port.0 as usize;
                let tx_done = d.time;
                let pkt = Self::relay(d);
                let arrive = self.down[s][leaf].transfer(&pkt, tx_done);
                self.forwarded += 1;
                if self.record_crossings {
                    self.record_crossing(Crossing {
                        pkt: pkt.meta.id,
                        flow: pkt.meta.flow.0,
                        from_device: (self.spec.n_leaves as usize + s) as u16,
                        to_device: leaf as u16,
                        depart: tx_done,
                        arrive,
                    });
                }
                let uplink = self.spec.uplink_port(s as u32) as u16;
                self.leaves[leaf].inject(PortId(uplink), pkt, arrive);
            }
        }
    }

    /// Record one link crossing, bounded at [`CROSSINGS_CAP`].
    fn record_crossing(&mut self, c: Crossing) {
        if self.crossings.len() < CROSSINGS_CAP {
            self.crossings.push(c);
        } else {
            self.crossings_truncated += 1;
        }
    }

    /// Link crossings recorded so far (empty unless the journey tracer or
    /// INT stamping was active when the fabric was built).
    pub fn crossings(&self) -> &[Crossing] {
        &self.crossings
    }

    /// Crossings that did not fit the bounded record.
    pub fn crossings_truncated(&self) -> u64 {
        self.crossings_truncated
    }

    /// The INT device id of leaf `l`.
    pub fn device_of_leaf(&self, l: usize) -> u16 {
        l as u16
    }

    /// The INT device id of spine `s`.
    pub fn device_of_spine(&self, s: usize) -> u16 {
        (self.spec.n_leaves as usize + s) as u16
    }

    /// Human name of an INT device id (`leaf0`, `spine1`, …).
    /// Total device count: leaves first, then spines.
    pub fn n_devices(&self) -> u16 {
        (self.leaves.len() + self.spines.len()) as u16
    }

    /// The journey-trace JSON of one device — per-device input for the
    /// fabric-wide Chrome export (empty unless the switch config traced).
    pub fn device_trace_json(&self, device: u16) -> serde::Value {
        let n = self.spec.n_leaves as usize;
        let d = device as usize;
        if d < n {
            self.leaves[d].trace_json()
        } else {
            self.spines[d - n].trace_json()
        }
    }

    /// Human-readable name of a device id (`leaf3`, `spine0`, ...).
    pub fn device_name(&self, device: u16) -> String {
        let n = self.spec.n_leaves as usize;
        if (device as usize) < n {
            format!("leaf{device}")
        } else {
            format!("spine{}", device as usize - n)
        }
    }

    /// Drain every device's INT postcards, in device-id order (leaves then
    /// spines). Each postcard already names its device.
    pub fn drain_postcards(&mut self) -> Vec<Postcard> {
        let mut out = Vec::new();
        for sw in self.leaves.iter_mut().chain(self.spines.iter_mut()) {
            out.append(&mut sw.take_postcards());
        }
        out
    }

    /// Fabric-wide INT totals: (stamps, postcards, truncated), summed over
    /// every device.
    pub fn int_totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for sw in self.leaves.iter().chain(self.spines.iter()) {
            let (s, p, tr) = sw.int_totals();
            t = (t.0 + s, t.1 + p, t.2 + tr);
        }
        t
    }

    /// Next pending event time across the whole fabric.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.leaves
            .iter()
            .chain(self.spines.iter())
            .filter_map(|s| s.next_event_time())
            .min()
    }

    /// Run the fabric to quiescence. Lockstep rounds: advance every switch
    /// holding an event at the global minimum next-event time, then
    /// exchange link traffic; repeat until no switch has pending work.
    /// Returns the later of the last event and the last host delivery.
    pub fn run_until_idle(&mut self) -> SimTime {
        let mut last = SimTime::ZERO;
        while let Some(t) = self.next_event_time() {
            for sw in self.leaves.iter_mut().chain(self.spines.iter_mut()) {
                if sw.next_event_time() == Some(t) {
                    last = last.max(sw.run_until(t));
                }
            }
            self.exchange();
        }
        last
    }

    /// Take every host-delivered frame harvested so far, in deterministic
    /// harvest order, with `port` remapped to the logical host port.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Panic unless flow accounting balances: per switch (the usual
    /// single-switch identity) and fabric-wide — every frame injected at a
    /// host port was either delivered to a host port or shows up in some
    /// switch's typed drop counters. Links never drop.
    pub fn check_conservation(&self) {
        for sw in self.leaves.iter().chain(self.spines.iter()) {
            sw.check_conservation();
        }
        let drops: u64 = self
            .leaves
            .iter()
            .chain(self.spines.iter())
            .map(|s| s.counters.total_drops())
            .sum();
        assert_eq!(
            self.host_injected,
            self.host_delivered + drops,
            "fabric conservation: injected {} != delivered {} + drops {}",
            self.host_injected,
            self.host_delivered,
            drops
        );
    }

    /// The value of central register cell `cell` according to its owner
    /// leaf (`owners[cell]`), reading the central pipeline the cell's
    /// steer key maps onto (`cell % central_pipes` — the same modulo the
    /// data plane applies to `SetCentralPipe`).
    fn owner_cell(&self, owners: &[u32], reg: RegId, cell: usize) -> u64 {
        let leaf = &self.leaves[owners[cell] as usize];
        let cpipe = cell % leaf.num_central();
        leaf.central_register(cpipe, reg)
            .map(|r| r.peek(cell as u64))
            .unwrap_or(0)
    }

    /// Merge the partitioned register back into one logical array: cell
    /// `c` is read from leaf `owners[c]`. Pass the *true* ownership here —
    /// the conformance harness steers by a possibly-sabotaged copy.
    pub fn merged_register_with(&self, owners: &[u32], reg: RegId, cells: usize) -> Vec<u64> {
        (0..cells)
            .map(|c| self.owner_cell(owners, reg, c))
            .collect()
    }

    /// [`Fabric::merged_register_with`] using the spec's own ownership.
    pub fn merged_register(&self, reg: RegId, cells: usize) -> Vec<u64> {
        self.merged_register_with(&self.spec.owners.clone(), reg, cells)
    }

    /// Non-zero register cells living on a leaf that does **not** own
    /// them: `(leaf, cell, value)` triples. Any entry here means a packet
    /// mutated state on the wrong device — the loud, deterministic symptom
    /// of mis-steering.
    pub fn register_leaks_with(
        &self,
        owners: &[u32],
        reg: RegId,
        cells: usize,
    ) -> Vec<(usize, usize, u64)> {
        let mut leaks = Vec::new();
        for (l, leaf) in self.leaves.iter().enumerate() {
            for (c, &owner) in owners.iter().enumerate().take(cells) {
                if owner as usize == l {
                    continue;
                }
                let cpipe = c % leaf.num_central();
                let v = leaf
                    .central_register(cpipe, reg)
                    .map(|r| r.peek(c as u64))
                    .unwrap_or(0);
                if v != 0 {
                    leaks.push((l, c, v));
                }
            }
        }
        leaks
    }

    /// [`Fabric::register_leaks_with`] using the spec's own ownership.
    pub fn register_leaks(&self, reg: RegId, cells: usize) -> Vec<(usize, usize, u64)> {
        self.register_leaks_with(&self.spec.owners.clone(), reg, cells)
    }

    fn switch_report(device: String, sw: &AdcpSwitch) -> SwitchReport {
        let c = &sw.counters;
        SwitchReport {
            device,
            injected: c.injected,
            delivered: c.delivered,
            drops: c.total_drops(),
            fcs_drops: c.fcs_drops,
            filtered: c.filtered,
            no_decision: c.no_decision,
            mat_lookups: c.mat_lookups,
            mat_hits: c.mat_hits,
        }
    }

    /// Deterministic end-of-run report (see [`FabricReport`]). Does not
    /// drain the delivered list — call before [`Fabric::take_delivered`]
    /// when both are needed.
    pub fn report(&self) -> FabricReport {
        let leaves = self
            .leaves
            .iter()
            .enumerate()
            .map(|(l, sw)| Self::switch_report(format!("leaf{l}"), sw))
            .collect();
        let spines = self
            .spines
            .iter()
            .enumerate()
            .map(|(s, sw)| Self::switch_report(format!("spine{s}"), sw))
            .collect();
        let mut links = Vec::new();
        for (l, row) in self.up.iter().enumerate() {
            for (s, link) in row.iter().enumerate() {
                links.push(LinkReport {
                    name: format!("leaf{l}->spine{s}"),
                    frames: link.frames,
                    wire_bytes: link.wire_bytes,
                });
            }
        }
        for (s, row) in self.down.iter().enumerate() {
            for (l, link) in row.iter().enumerate() {
                links.push(LinkReport {
                    name: format!("spine{s}->leaf{l}"),
                    frames: link.frames,
                    wire_bytes: link.wire_bytes,
                });
            }
        }
        let delivered_digest = fold_hash(self.delivered.iter().flat_map(|d| {
            [d.port.0 as u64, d.time.0, d.meta.id]
                .into_iter()
                .chain(d.data.iter().map(|b| *b as u64))
        }));
        let mut reg_words = Vec::new();
        for leaf in &self.leaves {
            for cpipe in 0..leaf.num_central() {
                for r in 0..leaf.program().registers.len() {
                    if let Some(file) = leaf.central_register(cpipe, RegId(r as u16)) {
                        reg_words.extend(file.snapshot());
                    }
                }
            }
        }
        let register_digest = fold_hash(reg_words);
        FabricReport {
            host_injected: self.host_injected,
            host_delivered: self.host_delivered,
            forwarded: self.forwarded,
            leaves,
            spines,
            links,
            delivered_digest,
            register_digest,
        }
    }
}

/// Plan cross-switch state ownership with the `adcp-ctrl` planners:
/// longest-processing-time-first packing of per-key loads onto `n_leaves`
/// devices (the same [`plan_scale_to`] that balances central pipelines
/// inside one switch).
pub fn plan_owners(key_space: u64, n_leaves: u32, loads: &[u64]) -> Vec<u32> {
    assert_eq!(loads.len() as u64, key_space, "one load per steer key");
    let seedmap = PartitionMap::uniform(key_space as u32, n_leaves);
    let planned = plan_scale_to(&seedmap, loads, n_leaves);
    (0..key_space as u32)
        .map(|b| planned.owner_of_bucket(b))
        .collect()
}

// ---------------- demo: fabric-wide partitioned counter ----------------

/// Steer-key space of the demo program (matches the conformance harness).
pub const DEMO_CELLS: usize = 64;

/// What [`run_demo`] measured.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DemoReport {
    /// Frames injected at host ports.
    pub injected: u64,
    /// Frames delivered to host ports.
    pub delivered: u64,
    /// Frames that crossed an inter-switch link.
    pub forwarded: u64,
    /// Quiescence time of the run.
    pub quiesce_ns: u64,
    /// Merged registers matched the host-side oracle, every frame was
    /// delivered, and no state leaked onto a non-owner leaf.
    pub correct: bool,
}

mod demo {
    use super::*;
    use adcp_lang::action::{ActionDef, ActionOp, BinOp, Operand};
    use adcp_lang::header::{FieldDef, FieldRef, HeaderDef};
    use adcp_lang::parser::ParserSpec;
    use adcp_lang::program::ProgramBuilder;
    use adcp_lang::registers::{RegAluOp, RegisterDef};
    use adcp_lang::table::{Region, TableDef};
    use adcp_lang::{deposit_bits, FieldId, HeaderId};

    pub(super) fn fr(f: u16) -> FieldRef {
        FieldRef::new(HeaderId(0), FieldId(f))
    }

    /// The demo's logical one-big-switch program: a partitioned counter.
    /// Header: op:8 key:32 idx:16 val:32 fphase:8 fgk:16 (14 bytes).
    /// Ingress routes by `idx` (central pipe) and targets logical port 0;
    /// the central region accumulates `val` into register cell `idx`.
    pub(super) fn program() -> Program {
        let mut b = ProgramBuilder::new("fab-counter");
        let h = b.header(HeaderDef::new(
            "ctr",
            vec![
                FieldDef::scalar("op", 8),
                FieldDef::scalar("key", 32),
                FieldDef::scalar("idx", 16),
                FieldDef::scalar("val", 32),
                FieldDef::scalar("fphase", 8),
                FieldDef::scalar("fgk", 16),
            ],
        ));
        b.parser(ParserSpec::single(h));
        let reg = b.register(RegisterDef::new("cnt", DEMO_CELLS as u32, 64));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "steer",
                vec![
                    ActionOp::Bin {
                        dst: fr(2),
                        op: BinOp::And,
                        a: Operand::Field(fr(2)),
                        b: Operand::Const(DEMO_CELLS as u64 - 1),
                    },
                    ActionOp::SetCentralPipe(Operand::Field(fr(2))),
                    ActionOp::SetEgress(Operand::Const(0)),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "count".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "bump",
                vec![ActionOp::RegRmw {
                    reg,
                    index: Operand::Field(fr(2)),
                    op: RegAluOp::Add,
                    value: Operand::Field(fr(3)),
                    fetch: None,
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    pub(super) fn frame(key: u64, idx: u64, val: u64) -> Vec<u8> {
        let mut buf = vec![0u8; 14];
        deposit_bits(&mut buf, 0, 8, 1);
        deposit_bits(&mut buf, 8, 32, key);
        deposit_bits(&mut buf, 40, 16, idx);
        deposit_bits(&mut buf, 56, 32, val);
        // fphase / fgk stay 0: the wire format of the one-big-switch run.
        buf
    }
}

/// Build the standard 2-spine × 4-leaf demo fabric (2 hosts per leaf)
/// around the partitioned-counter program, with ownership planned from
/// seeded per-key loads. Returns the fabric and its logical program.
pub fn demo_fabric(seed: u64, cfg: FabricConfig) -> (Fabric, Program) {
    let program = demo::program();
    let mut rng = SimRng::seed_from(seed ^ 0xFAB0_0001);
    let loads: Vec<u64> = (0..DEMO_CELLS).map(|_| rng.range(1u64..100)).collect();
    let owners = plan_owners(DEMO_CELLS as u64, 4, &loads);
    let spec = FabricSpec {
        n_leaves: 4,
        n_spines: 2,
        hosts_per_leaf: 2,
        phase_field: demo::fr(4),
        gk_field: demo::fr(5),
        steer_field: demo::fr(2),
        key_space: DEMO_CELLS as u64,
        owners,
        delivery_port: 0,
    };
    let fabric = Fabric::new(&program, spec, cfg).expect("demo program must place");
    (fabric, program)
}

/// Run the partitioned-counter demo: `packets` frames with seeded random
/// (key, idx, val) from round-robin host ports, verified against a
/// host-side oracle (merged registers, full delivery, no state leaks).
pub fn run_demo(seed: u64, packets: u64, cfg: FabricConfig) -> DemoReport {
    run_demo_with_report(seed, packets, cfg).0
}

/// [`run_demo`] plus the full serializable [`FabricReport`] — the
/// byte-comparison surface for determinism tests: per-device counters,
/// per-link stats, and digests over every delivered frame and every
/// central register cell in the fabric.
pub fn run_demo_with_report(
    seed: u64,
    packets: u64,
    cfg: FabricConfig,
) -> (DemoReport, FabricReport) {
    let (demo, fabric) = run_demo_keep(seed, packets, cfg);
    let report = fabric.report();
    (demo, report)
}

/// [`run_demo`] but hands back the still-warm [`Fabric`] so observability
/// consumers can drain what a run left behind: per-device journey traces,
/// link [`Crossing`]s, and INT postcards (when the switch config stamps).
pub fn run_demo_keep(seed: u64, packets: u64, cfg: FabricConfig) -> (DemoReport, Fabric) {
    let (mut fabric, _program) = demo_fabric(seed, cfg);
    let mut rng = SimRng::seed_from(seed ^ 0xFAB0_0002);
    let mut expected = vec![0u64; DEMO_CELLS];
    let ports = fabric.spec().logical_ports() as u64;
    for i in 0..packets {
        let key = rng.range(0u64..1 << 32);
        let idx = rng.range(0u64..DEMO_CELLS as u64);
        let val = rng.range(1u64..1000);
        expected[idx as usize] += val;
        let pkt = Packet::new(i, FlowId(1000 + i), demo::frame(key, idx, val)).seal();
        fabric.inject((i % ports) as u32, pkt, SimTime::from_ns(1 + i * 600));
    }
    let quiesce = fabric.run_until_idle();
    fabric.check_conservation();
    let merged = fabric.merged_register(RegId(0), DEMO_CELLS);
    let leaks = fabric.register_leaks(RegId(0), DEMO_CELLS);
    let correct = merged == expected && fabric.host_delivered() == packets && leaks.is_empty();
    let demo = DemoReport {
        injected: fabric.host_injected(),
        delivered: fabric.host_delivered(),
        forwarded: fabric.forwarded(),
        quiesce_ns: quiesce.0 / 1_000,
        correct,
    };
    (demo, fabric)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_counter_agrees_with_oracle() {
        let r = run_demo(7, 200, FabricConfig::default());
        assert!(r.correct, "demo run diverged: {r:?}");
        assert_eq!(r.injected, 200);
        assert_eq!(r.delivered, 200);
        assert!(r.forwarded > 0, "a 4-leaf fabric must forward something");
    }

    #[test]
    fn demo_is_deterministic_per_seed() {
        let a = run_demo(11, 120, FabricConfig::default());
        let b = run_demo(11, 120, FabricConfig::default());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = run_demo(12, 120, FabricConfig::default());
        assert!(c.correct);
    }

    #[test]
    fn delivered_frames_carry_reference_wire_bytes() {
        // phase/gk scratch fields must be cleared on delivery: every
        // delivered frame ends with the two scratch fields zeroed.
        let (mut fabric, _) = demo_fabric(3, FabricConfig::default());
        let mut rng = SimRng::seed_from(99);
        for i in 0..40u64 {
            let idx = rng.range(0u64..DEMO_CELLS as u64);
            let pkt = Packet::new(i, FlowId(1), demo::frame(7, idx, 5)).seal();
            fabric.inject((i % 8) as u32, pkt, SimTime::from_ns(1 + i * 600));
        }
        fabric.run_until_idle();
        let out = fabric.take_delivered();
        assert_eq!(out.len(), 40);
        for d in &out {
            assert_eq!(d.port, PortId(0), "demo delivers on logical port 0");
            // fphase is byte 11, fgk bytes 12..14 of the 14-byte header.
            assert_eq!(&d.data[11..14], &[0, 0, 0], "scratch fields leaked");
        }
    }

    #[test]
    fn zero_latency_links_rejected() {
        let (program, spec) = {
            let (f, p) = demo_fabric(1, FabricConfig::default());
            (p, f.spec().clone())
        };
        let cfg = FabricConfig {
            link_latency: Duration::from_ns(0),
            ..FabricConfig::default()
        };
        let r = std::panic::catch_unwind(|| Fabric::new(&program, spec, cfg));
        assert!(r.is_err(), "zero link latency must be rejected");
    }

    #[test]
    fn planned_owners_use_every_leaf() {
        let mut rng = SimRng::seed_from(5);
        let loads: Vec<u64> = (0..64).map(|_| rng.range(0u64..50)).collect();
        let owners = plan_owners(64, 4, &loads);
        assert_eq!(owners.len(), 64);
        for l in 0..4 {
            assert!(owners.contains(&l), "leaf {l} owns nothing");
        }
        // LPT packing: per-leaf load within 2x of the mean.
        let mut per = [0u64; 4];
        for (k, &o) in owners.iter().enumerate() {
            per[o as usize] += loads[k];
        }
        let total: u64 = loads.iter().sum();
        for p in per {
            assert!(p <= total / 2, "grossly unbalanced: {per:?}");
        }
    }
}
