//! The app-set lane of the conformance story: every application in the
//! trace menu (`APP_NAMES`, including the TE/security pair `flowlet-ldf`
//! and `ddos`) must pass its own reference oracle AND the drop-forensics
//! ↔ metrics-registry cross-check — the same invariant `adcp-trace
//! --forensics` asserts interactively and the random-program conformance
//! harness asserts per generated case.
//!
//! This lives in its own integration-test binary because journey tracing
//! is enabled process-wide via `ADCP_TRACE`, which both switch models
//! read at construction time; a dedicated process keeps the env mutation
//! from leaking into unrelated tests.

use adcp_apps::TargetKind;
use adcp_bench::journey::forensics;
use adcp_bench::trace::{run_one, APP_NAMES};

#[test]
fn every_app_passes_the_forensics_cross_check() {
    // Record every journey (sample stride 1) so forensic drop counts are
    // exact, then sweep the full app menu on both architectures.
    std::env::set_var("ADCP_TRACE", "1");
    for &app in APP_NAMES {
        for kind in [TargetKind::Adcp, TargetKind::RmtPinned] {
            let r = run_one(app, kind, true).expect("known app");
            // Correctness is only asserted on the ADCP: Table 1's point is
            // precisely that some apps come up short on an RMT lowering
            // (the report records that as `correct = false`). The
            // forensics↔registry reconciliation below must hold anyway.
            if kind == TargetKind::Adcp {
                assert!(r.correct, "{app} on adcp failed its reference oracle");
            }
            let f = forensics(&r.trace, &r.metrics).unwrap_or_else(|| {
                panic!("{app} on {}: tracing or metrics disabled", kind.label())
            });
            assert!(
                f.ok(),
                "{app} on {}: forensics disagree with the registry: {:?}",
                kind.label(),
                f.mismatches
            );
        }
    }
    // The recirculating lowering is the interesting third variant for the
    // stateful TE/security pair: every packet's extra pass must still
    // reconcile drops exactly.
    for app in ["flowlet-ldf", "ddos"] {
        let r = run_one(app, TargetKind::RmtRecirc, true).expect("known app");
        assert!(r.correct, "{app} on rmt/recirc");
        let f = forensics(&r.trace, &r.metrics).expect("tracing enabled");
        assert!(f.ok(), "{app} on rmt/recirc: {:?}", f.mismatches);
    }
}
