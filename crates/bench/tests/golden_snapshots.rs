//! Golden-snapshot tests for every figure/table regenerator in quick mode.
//!
//! Each regenerator's rows are serialized to JSON and compared against the
//! committed snapshot in `tests/golden/<name>.json` (repo root). Numeric
//! fields compare with a small relative tolerance so harmless float
//! formatting/platform noise does not fail the build, while any real model
//! change does.
//!
//! To bless new snapshots after an intentional model change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p adcp-bench --test golden_snapshots
//! ```
//!
//! then review and commit the diff under `tests/golden/`.

use std::path::PathBuf;

use serde::Serialize;

/// Relative tolerance for numeric comparisons.
const REL_TOL: f64 = 1e-6;
/// Absolute floor so values near zero don't blow up the relative check.
const ABS_TOL: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn as_number(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::U64(_)
        | serde_json::Value::U128(_)
        | serde_json::Value::I64(_)
        | serde_json::Value::F64(_) => v.as_f64(),
        _ => None,
    }
}

/// Recursively diff `got` against `want`, collecting human-readable
/// mismatch locations.
fn diff(path: &str, got: &serde_json::Value, want: &serde_json::Value, errs: &mut Vec<String>) {
    use serde_json::Value;
    if errs.len() > 20 {
        return; // enough to act on
    }
    match (as_number(got), as_number(want)) {
        (Some(g), Some(w)) => {
            let scale = g.abs().max(w.abs()).max(ABS_TOL);
            if (g - w).abs() > REL_TOL * scale {
                errs.push(format!("{path}: {g} != {w}"));
            }
            return;
        }
        (None, None) => {}
        _ => {
            errs.push(format!("{path}: type changed ({got:?} vs {want:?})"));
            return;
        }
    }
    match (got, want) {
        (Value::Array(g), Value::Array(w)) => {
            if g.len() != w.len() {
                errs.push(format!("{path}: {} rows != {} rows", g.len(), w.len()));
                return;
            }
            for (i, (gi, wi)) in g.iter().zip(w.iter()).enumerate() {
                diff(&format!("{path}[{i}]"), gi, wi, errs);
            }
        }
        (Value::Object(g), Value::Object(w)) => {
            for (k, wv) in w.iter() {
                match g.get(k) {
                    Some(gv) => diff(&format!("{path}.{k}"), gv, wv, errs),
                    None => errs.push(format!("{path}.{k}: field disappeared")),
                }
            }
            for (k, _) in g.iter() {
                if w.get(k).is_none() {
                    errs.push(format!("{path}.{k}: new field (bless the snapshot)"));
                }
            }
        }
        _ => {
            if got != want {
                errs.push(format!("{path}: {got:?} != {want:?}"));
            }
        }
    }
}

/// Metrics time-series points are deterministic but bulky (hundreds of
/// `[t_ps, v]` pairs per queue per row): in goldens, replace each series
/// `points` array with a compact digest — kept length plus an FNV-1a hash
/// over the pairs — which still locks the exact contents without tens of
/// thousands of committed lines.
fn digest_series_points(v: &mut serde_json::Value) {
    use serde_json::Value;
    let Some(obj) = v.as_object_mut() else {
        if let Value::Array(items) = v {
            for item in items {
                digest_series_points(item);
            }
        }
        return;
    };
    let is_series = obj.get("offered").is_some()
        && obj.get("stride").is_some()
        && matches!(obj.get("points"), Some(Value::Array(_)));
    if is_series {
        let Some(Value::Array(points)) = obj.get("points") else {
            unreachable!("checked above");
        };
        let mut fnv: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                fnv ^= u64::from(b);
                fnv = fnv.wrapping_mul(0x100_0000_01b3);
            }
        };
        let kept = points.len() as u64;
        for p in points {
            for n in p.as_array().unwrap_or_default() {
                mix(n.as_u64().unwrap_or(u64::MAX));
            }
        }
        let mut digest = serde_json::Map::new();
        digest.insert("kept".into(), Value::U64(kept));
        digest.insert("fnv".into(), Value::String(format!("{fnv:016x}")));
        obj.insert("points".into(), Value::Object(digest));
        return;
    }
    // Collect keys first: the map iterator borrows obj immutably.
    let keys: Vec<String> = obj.iter().map(|(k, _)| k.clone()).collect();
    for k in keys {
        if let Some(child) = obj.get(&k) {
            let mut child = child.clone();
            digest_series_points(&mut child);
            obj.insert(k, child);
        }
    }
}

/// Compare (or, with `GOLDEN_UPDATE=1`, bless) one regenerator's rows.
fn check<T: Serialize>(name: &str, rows: &[T]) {
    assert!(!rows.is_empty(), "{name}: regenerator produced no rows");
    let mut got = serde_json::to_value(rows).expect("rows serialize");
    digest_series_points(&mut got);
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        let text = serde_json::to_string_pretty(&got).expect("encode snapshot");
        std::fs::write(&path, text + "\n").expect("write snapshot");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden snapshot {} ({e}); run with GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    let want = serde_json::from_str(&text).expect("parse golden snapshot");
    let mut errs = Vec::new();
    diff(name, &got, &want, &mut errs);
    assert!(
        errs.is_empty(),
        "{name}: output drifted from tests/golden/{name}.json \
         (GOLDEN_UPDATE=1 blesses intentional changes):\n  {}",
        errs.join("\n  ")
    );
}

#[test]
fn golden_table1() {
    check("table1", &adcp_bench::exp_tables::table1(true));
}

#[test]
fn golden_table2() {
    check("table2", &adcp_bench::exp_tables::table2());
}

#[test]
fn golden_table3() {
    check("table3", &adcp_bench::exp_tables::table3());
}

#[test]
fn golden_fig2() {
    check("fig2", &adcp_bench::exp_figs::fig2(true));
}

#[test]
fn golden_fig3() {
    check("fig3", &adcp_bench::exp_figs::fig3());
}

#[test]
fn golden_fig3_hit_rates() {
    check(
        "fig3_hit_rates",
        &adcp_bench::exp_figs::fig3_hit_rates(true),
    );
}

#[test]
fn golden_fig5() {
    check("fig5", &adcp_bench::exp_figs::fig5(true));
}

#[test]
fn golden_fig6() {
    check("fig6", &adcp_bench::exp_figs::fig6(true));
}

#[test]
fn golden_ablate_demux() {
    check("ablate_demux", &adcp_bench::exp_ablations::ablate_demux());
}

#[test]
fn golden_ablate_tm_floorplan() {
    check(
        "ablate_tm_floorplan",
        &adcp_bench::exp_ablations::ablate_tm_floorplan(),
    );
}

#[test]
fn golden_ablate_multiclock() {
    check(
        "ablate_multiclock",
        &adcp_bench::exp_ablations::ablate_multiclock(),
    );
}

#[test]
fn golden_ablate_sched() {
    check("ablate_sched", &adcp_bench::exp_sched::ablate_sched(true));
}

#[test]
fn golden_ablate_faults() {
    check(
        "ablate_faults",
        &adcp_bench::exp_faults::ablate_faults(true),
    );
}

#[test]
fn golden_exp_migrate() {
    check("exp_migrate", &adcp_bench::exp_migrate::exp_migrate(true));
}

#[test]
fn golden_ablate_load() {
    check("ablate_load", &adcp_bench::exp_load::ablate_load(true));
}
