//! Integration tests for the E-C1 differential conformance harness: a
//! quick all-pass sweep, report determinism, and the acceptance check that
//! a deliberately injected semantic bug is caught, shrunk, and replayable.

use std::path::PathBuf;

use adcp_bench::conformance::{replay, run, BugHook, CaseError, RunConfig};

fn out_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn quick_cfg(name: &str, seed: u64, cases: u32, bug: BugHook) -> RunConfig {
    RunConfig {
        master_seed: seed,
        cases,
        quick: true,
        bug,
        migrate: false,
        fabric: false,
        out_dir: out_dir(name),
    }
}

#[test]
fn quick_sweep_passes_clean() {
    let report = run(&quick_cfg("clean", 0xE_C1, 40, BugHook::None));
    assert_eq!(report.failed, 0, "failures: {:?}", report.failures);
    assert_eq!(report.passed + report.skipped_compile, 40);
    assert!(
        report.passed >= 35,
        "too many compile-skips: {}",
        report.skipped_compile
    );
    assert!(report.fault_cases > 0, "the fault soak must actually run");
}

#[test]
fn quick_migrate_sweep_passes() {
    let cfg = RunConfig {
        migrate: true,
        ..quick_cfg("migrate", 0x3160_0EC1, 25, BugHook::None)
    };
    let report = run(&cfg);
    assert_eq!(report.failed, 0, "failures: {:?}", report.failures);
    assert_eq!(report.passed + report.skipped_compile, 25);
    assert!(
        report.passed >= 20,
        "too many compile-skips: {}",
        report.skipped_compile
    );
    assert!(report.fault_cases > 0, "migrate + fault soak must run");
}

#[test]
fn same_seed_means_byte_identical_report() {
    let cfg = quick_cfg("determinism", 0xD17E_0001, 25, BugHook::None);
    let a = serde_json::to_string_pretty(&run(&cfg)).unwrap();
    let b = serde_json::to_string_pretty(&run(&cfg)).unwrap();
    assert_eq!(a, b);
}

/// The acceptance gate: swapping `RegAluOp::Add`/`Max` in the program fed
/// to one target must be caught by the differential comparison, shrunk to
/// something smaller than the original spec, and written as an artifact
/// that replays red with the bug armed and green without it.
#[test]
fn injected_add_max_swap_is_caught_shrunk_and_replayable() {
    let dir = out_dir("sabotage");
    let report = run(&quick_cfg("sabotage", 0xBAD_5EED, 60, BugHook::SwapAddMax));
    assert!(
        report.failed > 0,
        "a swapped register ALU op must not survive 60 differential cases"
    );
    let failure = &report.failures[0];
    assert!(failure.error.contains("register"), "got: {}", failure.error);
    let original_packets = 10; // quick-mode cap in case_spec()
    assert!(
        failure.shrunk.max_packets < original_packets
            || failure.shrunk.max_entries < 8
            || failure.shrunk.max_array < 8,
        "shrinking made no progress: {:?}",
        failure.shrunk
    );

    let artifact = dir.join(&failure.artifact);
    assert!(
        artifact.is_file(),
        "missing artifact {}",
        artifact.display()
    );
    match replay(&artifact, BugHook::SwapAddMax) {
        Err(CaseError::Mismatch(_)) => {}
        other => panic!("armed replay must fail with a mismatch, got {other:?}"),
    }
    replay(&artifact, BugHook::None).expect("clean replay must pass");
}
