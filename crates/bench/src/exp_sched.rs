//! §5 extension: a *programmable* first traffic manager.
//!
//! The paper closes by arguing that "intriguing opportunities can be
//! unleashed when making the scheduler programmable [27], especially in an
//! architecture like the one proposed here that heavily relies on multiple
//! shared memory schedulers". This experiment builds that: TM1 runs a
//! PIFO (the programmable-scheduler primitive of the paper's reference
//! [27]) whose rank is computed *by the switch program* — each packet's
//! rank is its coflow's total size, which yields shortest-coflow-first,
//! the classic coflow-completion-time heuristic.
//!
//! Setup: a short coflow (a latency-sensitive barrier exchange) and a
//! long coflow (a bulk shuffle) contend for one central pipeline. Under
//! FIFO the short coflow waits behind the bulk; under the programmable
//! PIFO it overtakes, collapsing its completion time while barely
//! affecting the bulk transfer.

use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    ActionDef, ActionOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId, Operand,
    ParserSpec, Program, ProgramBuilder, Region, TableDef, TargetModel, TmSpec,
};
use adcp_sim::packet::{CoflowId, FlowId, Packet, PortId};
use adcp_sim::sched::Policy;
use adcp_sim::time::SimTime;
use adcp_workloads::coflow::CoflowTracker;
use serde::Serialize;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_DST: u16 = 0;
const F_RANK: u16 = 1; // the coflow's total size, stamped by the sender

/// Program: ingress pins everything to central pipe 0 (contention) and
/// sets the PIFO rank from the packet's rank field; central forwards.
fn program(tm1: Policy) -> Program {
    let mut b = ProgramBuilder::new(format!("coflow-sched-{tm1:?}"));
    let h = b.header(HeaderDef::new(
        "cs",
        vec![FieldDef::scalar("dst", 16), FieldDef::scalar("rank", 48)],
    ));
    b.parser(ParserSpec::single(h));
    b.tm1(TmSpec { policy: tm1 });
    b.table(TableDef {
        name: "rank".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "rank",
            vec![
                ActionOp::SetCentralPipe(Operand::Const(0)),
                ActionOp::SetSortKey(Operand::Field(fr(F_RANK))),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.table(TableDef {
        name: "fwd".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "fwd",
            vec![ActionOp::SetEgress(Operand::Field(fr(F_DST)))],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn pkt(id: u64, coflow: u32, dst: u16, rank: u64) -> Packet {
    let mut data = vec![0u8; 8];
    data[..2].copy_from_slice(&dst.to_be_bytes());
    data[2..8].copy_from_slice(&rank.to_be_bytes()[2..8]);
    Packet::new(id, FlowId(coflow as u64), data).with_coflow(CoflowId(coflow))
}

/// One scheduling-policy row.
#[derive(Debug, Clone, Serialize)]
pub struct SchedRow {
    /// TM1 policy.
    pub policy: String,
    /// Completion time of the short (latency-sensitive) coflow, ns.
    pub short_cct_ns: f64,
    /// Completion time of the long (bulk) coflow, ns.
    pub long_cct_ns: f64,
    /// Total makespan, ns.
    pub makespan_ns: f64,
}

/// Run the contention scenario under one TM1 policy.
pub fn run_policy(tm1: Policy, short_pkts: u32, long_pkts: u32) -> SchedRow {
    let mut sw = AdcpSwitch::new(
        program(tm1),
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig {
            queue_depth: 4096,
            ..Default::default()
        },
    )
    .expect("compiles");
    let mut tracker = CoflowTracker::new();
    // The bulk coflow starts first and keeps the central pipe busy.
    tracker.expect(CoflowId(2), long_pkts as u64, SimTime::ZERO);
    for i in 0..long_pkts {
        sw.inject(
            PortId(1),
            pkt(1_000 + i as u64, 2, 8, long_pkts as u64),
            SimTime::ZERO,
        );
    }
    // The short coflow arrives shortly after, behind the bulk backlog.
    let short_start = SimTime::from_ns(100);
    tracker.expect(CoflowId(1), short_pkts as u64, short_start);
    for i in 0..short_pkts {
        sw.inject(
            PortId(0),
            pkt(i as u64, 1, 9, short_pkts as u64),
            short_start,
        );
    }
    let end = sw.run_until_idle();
    sw.check_conservation();
    for d in sw.take_delivered() {
        if let Some(c) = d.meta.coflow {
            tracker.deliver(c, d.time);
        }
    }
    assert!(tracker.all_done(), "both coflows must complete");
    SchedRow {
        policy: format!("{tm1:?}"),
        short_cct_ns: tracker.cct(CoflowId(1)).unwrap().as_ns_f64(),
        long_cct_ns: tracker.cct(CoflowId(2)).unwrap().as_ns_f64(),
        makespan_ns: end.as_ps() as f64 / 1e3,
    }
}

/// The full comparison: FIFO vs programmable shortest-coflow-first.
pub fn ablate_sched(quick: bool) -> Vec<SchedRow> {
    ablate_sched_impl(quick, true)
}

fn ablate_sched_impl(quick: bool, parallel: bool) -> Vec<SchedRow> {
    let (short, long) = if quick { (16, 600) } else { (32, 3_000) };
    crate::par::map_points(parallel, vec![Policy::Fifo, Policy::Pifo], |tm1| {
        run_policy(tm1, short, long)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_sweep_par_matches_seq() {
        let par = serde_json::to_string(&ablate_sched_impl(true, true)).unwrap();
        let seq = serde_json::to_string(&ablate_sched_impl(true, false)).unwrap();
        assert_eq!(par, seq, "sched rows must not depend on scheduling");
    }

    #[test]
    fn scf_collapses_short_coflow_cct() {
        let rows = ablate_sched(true);
        let fifo = &rows[0];
        let pifo = &rows[1];
        assert!(
            pifo.short_cct_ns < fifo.short_cct_ns / 3.0,
            "SCF should collapse the short CCT: fifo {:.0}ns vs pifo {:.0}ns",
            fifo.short_cct_ns,
            pifo.short_cct_ns
        );
        // The bulk coflow pays at most a small penalty.
        assert!(
            pifo.long_cct_ns < fifo.long_cct_ns * 1.15,
            "bulk barely affected: fifo {:.0}ns vs pifo {:.0}ns",
            fifo.long_cct_ns,
            pifo.long_cct_ns
        );
        // Work conservation: the makespan is (almost) unchanged.
        assert!((pifo.makespan_ns / fifo.makespan_ns - 1.0).abs() < 0.1);
    }
}
