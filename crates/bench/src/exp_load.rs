//! Offered-load vs latency: the classic switch queueing curve, for both
//! architectures on identical forwarding work.
//!
//! A fixed fan-in (4 source ports → 4 distinct sinks) is driven at a
//! fraction of the bottleneck rate; p50/p99 latency is recorded. Every
//! ADCP packet takes the extra TM1 → central pipeline → TM2 hop — the
//! honest cost of the global partitioned area — but its 800 G ports also
//! serialize twice as fast as the RMT baseline's 400 G ports, so absolute
//! latencies end up comparable at light load. Load is normalized to each
//! target's own port rate; past 1.0 the source links themselves are the
//! bottleneck and delay grows with the backlog (the sources block rather
//! than drop, so the overload point shows delay, not loss).

use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    ActionDef, ActionOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId, Operand,
    ParserSpec, Program, ProgramBuilder, Region, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::stats::LatencySummary;
use adcp_sim::time::SimTime;
use serde::Serialize;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

/// Forward to the port named in the packet (plus the ADCP central hop).
fn forward_program(via_central: bool) -> Program {
    let mut b = ProgramBuilder::new("fwd");
    let h = b.header(HeaderDef::new(
        "m",
        vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
    ));
    b.parser(ParserSpec::single(h));
    b.table(TableDef {
        name: "fwd".into(),
        region: if via_central {
            Region::Central
        } else {
            Region::Ingress
        },
        key: None,
        actions: vec![ActionDef::new(
            "fwd",
            vec![ActionOp::SetEgress(Operand::Field(fr(0)))],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

/// One load point.
#[derive(Debug, Clone, Serialize)]
pub struct LoadRow {
    /// Architecture.
    pub target: String,
    /// Offered load as a fraction of the per-source line rate.
    pub load: f64,
    /// Delivered packets.
    pub delivered: u64,
    /// Drops (buffer pressure at saturation).
    pub drops: u64,
    /// Latency summary.
    pub latency: LatencySummary,
}

fn drive(
    sw: &mut dyn Driver,
    port_gbps: f64,
    load: f64,
    pkts_per_src: u32,
    frame: usize,
) -> (u64, u64, LatencySummary) {
    // Per-source inter-arrival: this target's wire time / load.
    let wire_ps = ((frame.max(64) + 20) as f64 * 8.0 * 1000.0 / port_gbps) as u64;
    let gap = (wire_ps as f64 / load) as u64;
    let mut id = 0u64;
    for i in 0..pkts_per_src {
        for src in 0..4u16 {
            let mut data = vec![0u8; frame];
            let dst = 4 + src; // distinct sink per source: no cross-contention
            data[..2].copy_from_slice(&dst.to_be_bytes());
            sw.inject_p(
                PortId(src),
                Packet::new(id, FlowId(src as u64), data),
                SimTime(i as u64 * gap),
            );
            id += 1;
        }
    }
    sw.finish()
}

/// Small object-safe shim over the two switch types.
trait Driver {
    fn inject_p(&mut self, port: PortId, pkt: Packet, t: SimTime);
    fn finish(&mut self) -> (u64, u64, LatencySummary);
}

impl Driver for RmtSwitch {
    fn inject_p(&mut self, port: PortId, pkt: Packet, t: SimTime) {
        self.inject(port, pkt, t);
    }
    fn finish(&mut self) -> (u64, u64, LatencySummary) {
        self.run_until_idle();
        self.check_conservation();
        (
            self.counters.delivered,
            self.counters.total_drops(),
            LatencySummary::from(&self.latency),
        )
    }
}

impl Driver for AdcpSwitch {
    fn inject_p(&mut self, port: PortId, pkt: Packet, t: SimTime) {
        self.inject(port, pkt, t);
    }
    fn finish(&mut self) -> (u64, u64, LatencySummary) {
        self.run_until_idle();
        self.check_conservation();
        (
            self.counters.delivered,
            self.counters.total_drops(),
            LatencySummary::from(&self.latency),
        )
    }
}

/// Sweep offered load on both architectures.
pub fn ablate_load(quick: bool) -> Vec<LoadRow> {
    ablate_load_impl(quick, true)
}

fn ablate_load_impl(quick: bool, parallel: bool) -> Vec<LoadRow> {
    let pkts = if quick { 500 } else { 3_000 };
    let frame = 256usize;
    // One point per (load, target), in the original row order: each point
    // builds its own switch, so they run independently on worker threads.
    let mut points: Vec<(f64, &str)> = Vec::new();
    for load in [0.2, 0.5, 0.8, 0.95, 1.2] {
        points.push((load, "rmt"));
        points.push((load, "adcp"));
    }
    crate::par::map_points(parallel, points, |(load, target)| {
        let (d, dr, lat) = if target == "rmt" {
            let mut rmt = RmtSwitch::new(
                forward_program(false),
                TargetModel::rmt_12t(),
                CompileOptions::default(),
                RmtConfig::default(),
            )
            .unwrap();
            drive(&mut rmt, 400.0, load, pkts, frame)
        } else {
            let mut adcp = AdcpSwitch::new(
                forward_program(true),
                TargetModel::adcp_reference(),
                CompileOptions::default(),
                AdcpConfig::default(),
            )
            .unwrap();
            drive(&mut adcp, 800.0, load, pkts, frame)
        };
        LoadRow {
            target: target.into(),
            load,
            delivered: d,
            drops: dr,
            latency: lat,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sweep_par_matches_seq() {
        let par = serde_json::to_string(&ablate_load_impl(true, true)).unwrap();
        let seq = serde_json::to_string(&ablate_load_impl(true, false)).unwrap();
        assert_eq!(par, seq, "load rows must not depend on scheduling");
    }

    #[test]
    fn load_sweep_shapes() {
        let rows = ablate_load(true);
        for t in ["rmt", "adcp"] {
            let series: Vec<&LoadRow> = rows.iter().filter(|r| r.target == t).collect();
            // Everything is delivered at every load (sources block, never
            // drop), and underloaded latency stays flat.
            for r in &series {
                assert_eq!(r.drops, 0, "{t} at {}", r.load);
                assert_eq!(r.delivered, 2_000, "{t} at {}", r.load);
            }
            let light = series.first().unwrap();
            let mid = series.iter().find(|r| r.load == 0.8).unwrap();
            assert!(
                mid.latency.p99_ns < light.latency.p99_ns * 3.0,
                "{t}: flat below saturation ({:.1} -> {:.1})",
                light.latency.p99_ns,
                mid.latency.p99_ns
            );
            // Overload (1.2x the line) backlogs: p99 far above light load.
            let over = series.last().unwrap();
            assert!(
                over.latency.p99_ns > light.latency.p99_ns * 3.0,
                "{t}: overload must backlog ({:.1} -> {:.1})",
                light.latency.p99_ns,
                over.latency.p99_ns
            );
        }
        // The ADCP's extra hop is visible in *cycles*: at light load its
        // p50 exceeds the pure pipeline+wire floor by at least the central
        // traversal (one pipeline period), even though its faster ports
        // keep the absolute number close to RMT's.
        let adcp0 = rows.iter().find(|r| r.target == "adcp").unwrap();
        assert!(adcp0.latency.p50_ns > 5.0, "{adcp0:?}");
    }
}
