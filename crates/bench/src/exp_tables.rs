//! Regenerators for the paper's tables.
//!
//! * Table 1 — the application matrix, run live: every app on every
//!   architecture variant, with correctness and the architectural costs.
//! * Table 2 — RMT port-multiplexing scaling (analytic, matches the paper
//!   row for row; the one inconsistent printed row is flagged).
//! * Table 3 — port demultiplexing examples (analytic).

use adcp_analytic::scaling::{self, ScalingRow, PAPER_TABLE2};
use adcp_apps::driver::{AppReport, TargetKind};
use adcp_apps::{dbshuffle, graphmine, groupcomm, kvcache, netlock, paramserv};
use serde::Serialize;

/// One Table 1 row: an app on a variant.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// The underlying app report.
    #[serde(flatten)]
    pub report: AppReport,
}

/// Run every Table 1 application on every architecture variant.
///
/// `quick` shrinks the workloads (used by tests; the binary default runs
/// the full sizes). The 16 runs are independent simulations, so they run
/// on scoped threads ([`crate::par::par_map`]) and are collected in table
/// order.
pub fn table1(quick: bool) -> Vec<Table1Row> {
    table1_impl(quick, true)
}

fn table1_impl(quick: bool, parallel: bool) -> Vec<Table1Row> {
    crate::par::map_points(parallel, table1_jobs(quick), |job| Table1Row {
        report: job(),
    })
}

type Job = Box<dyn FnOnce() -> AppReport + Send>;

fn table1_jobs(quick: bool) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    let kinds = [
        TargetKind::Adcp,
        TargetKind::RmtRecirc,
        TargetKind::RmtPinned,
    ];

    // ML parameter aggregation.
    let ps = if quick {
        paramserv::ParamServerCfg {
            workers: 4,
            model_size: 64,
            width: 16,
            seed: 1,
            central_workers: 1,
        }
    } else {
        paramserv::ParamServerCfg::default()
    };
    for k in kinds {
        let ps = ps.clone();
        jobs.push(Box::new(move || paramserv::run(k, &ps)));
    }

    // Database analytics.
    let mut db = dbshuffle::DbShuffleCfg::default();
    if quick {
        db.workload.rows_per_mapper = 150;
    }
    for k in kinds {
        let db = db.clone();
        jobs.push(Box::new(move || dbshuffle::run(k, &db)));
    }

    // Graph pattern mining.
    let mut gm = graphmine::GraphMineCfg::default();
    if quick {
        gm.workload.supersteps = 5;
        gm.workload.edges = 3000;
    }
    for k in kinds {
        let gm = gm.clone();
        jobs.push(Box::new(move || graphmine::run(k, &gm)));
    }

    // Group communication (no central state; the two RMT lowerings are
    // identical, so run the pinned one as "rmt").
    let mut gc = groupcomm::GroupCommCfg::default();
    if quick {
        gc.packets = 120;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        let gc = gc.clone();
        jobs.push(Box::new(move || groupcomm::run(k, &gc)));
    }

    // In-network lock service (coordination; §1's "locking"). Pinning is
    // run too: its *failure* to hand off locks is part of the result.
    let mut nl = netlock::NetLockCfg::default();
    if quick {
        nl.rounds = 3;
    }
    for k in kinds {
        let nl = nl.clone();
        jobs.push(Box::new(move || netlock::run(k, &nl)));
    }

    // KV cache (extra app; exercises Fig. 3 economics end to end).
    let mut kv = kvcache::KvCacheCfg::default();
    if quick {
        kv.requests = 300;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        let kv = kv.clone();
        jobs.push(Box::new(move || kvcache::run(k, &kv).report));
    }
    jobs
}

/// A Table 2/3 row with its paper counterpart for the comparison column.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingCmpRow {
    /// Derived row.
    #[serde(flatten)]
    pub derived: ScalingRow,
    /// The paper's printed (min packet B, freq GHz) for the same row.
    pub paper_min_packet: u32,
    /// Paper frequency, GHz.
    pub paper_freq_ghz: f64,
    /// Whether the derived row matches the printed one (±1 B, ±0.011 GHz).
    pub matches_paper: bool,
}

/// Regenerate Table 2.
pub fn table2() -> Vec<ScalingCmpRow> {
    scaling::table2()
        .into_iter()
        .zip(PAPER_TABLE2)
        .map(|(derived, paper)| {
            let matches_paper = (derived.min_packet_bytes as i64 - paper.4 as i64).abs() <= 1
                && (derived.pipeline_freq_ghz - paper.5).abs() < 0.011;
            ScalingCmpRow {
                derived,
                paper_min_packet: paper.4,
                paper_freq_ghz: paper.5,
                matches_paper,
            }
        })
        .collect()
}

/// The paper's printed Table 3 (ports/pipe, min packet B, freq GHz).
pub const PAPER_TABLE3: [(f64, u32, f64); 4] = [
    (8.0, 495, 1.62),
    (0.5, 84, 0.60),
    (4.0, 495, 1.62),
    (0.5, 84, 1.19),
];

/// Regenerate Table 3.
pub fn table3() -> Vec<ScalingCmpRow> {
    scaling::table3()
        .into_iter()
        .zip(PAPER_TABLE3)
        .map(|(derived, paper)| {
            let matches_paper = (derived.min_packet_bytes as i64 - paper.1 as i64).abs() <= 1
                && (derived.pipeline_freq_ghz - paper.2).abs() < 0.011;
            ScalingCmpRow {
                derived,
                paper_min_packet: paper.1,
                paper_freq_ghz: paper.2,
                matches_paper,
            }
        })
        .collect()
}

/// Render Table 2/3 comparison rows for the console.
pub fn scaling_cells(rows: &[ScalingCmpRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                format!("{}", r.derived.throughput_gbps),
                format!("{}", r.derived.port_speed_gbps),
                format!("{}", r.derived.num_pipelines),
                format!("{}", r.derived.ports_per_pipeline),
                format!("{}", r.derived.min_packet_bytes),
                format!("{:.2}", r.derived.pipeline_freq_ghz),
                format!("{}B/{:.2}GHz", r.paper_min_packet, r.paper_freq_ghz),
                if r.matches_paper {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.matches_paper), "{rows:#?}");
    }

    #[test]
    fn table3_rows_match_paper() {
        let rows = table3();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.matches_paper), "{rows:#?}");
    }

    #[test]
    fn table1_par_matches_seq() {
        let par = serde_json::to_string(&table1_impl(true, true)).unwrap();
        let seq = serde_json::to_string(&table1_impl(true, false)).unwrap();
        assert_eq!(par, seq, "table1 rows must not depend on scheduling");
    }

    #[test]
    fn table1_quick_all_correct() {
        let rows = table1(true);
        assert_eq!(rows.len(), 3 + 3 + 3 + 3 + 2 + 2);
        for r in &rows {
            // netlock on rmt/pinned is *expected* to fail: the release
            // broadcast cannot leave the pinned pipeline (Fig. 2).
            let expected_failure = r.report.app == "netlock" && r.report.target == "rmt/pinned";
            assert_eq!(
                r.report.correct, !expected_failure,
                "{} on {}",
                r.report.app, r.report.target
            );
        }
        // The architectural signatures: recirc variants recirculate,
        // ADCP never does.
        assert!(rows
            .iter()
            .filter(|r| r.report.target == "rmt/recirc")
            .all(|r| r.report.recirc_passes > 0));
        assert!(rows
            .iter()
            .filter(|r| r.report.target == "adcp")
            .all(|r| r.report.recirc_passes == 0));
    }
}
