//! Differential conformance harness (E-C1).
//!
//! The paper's central claim is that ADCP runs the *same stateful programs*
//! as RMT while lifting placement/array/multicast restrictions (§3.1–§3.3).
//! This module turns that claim into a generative test: it draws
//! random-but-valid programs and workloads from a seeded [`SimRng`], executes
//! each case on four targets —
//!
//! 1. the plain **reference interpreter** (chained `RegionState` runs with
//!    explicit parse → run → deparse between regions, no timing model),
//! 2. the **ADCP switch** model,
//! 3. the **RMT switch** with egress-pinned central tables, and
//! 4. the **RMT switch** with recirculated central tables,
//!
//! and asserts semantic equivalence: identical delivered frames, identical
//! filtered counts, identical final register state, identical
//! `mat_lookups`/`mat_hits`, and per-packet conservation on every switch.
//! Cases whose programs use array *action* ops (`RegArray`/`ArrayReduce`)
//! are the §3.2 separation witnesses: RMT's scalar MAUs cannot run them, so
//! for those cases the harness instead asserts that the compiler *rejects*
//! the program on both RMT strategies while ADCP still matches the
//! reference bit-for-bit.
//! Surviving cases are re-run under a fault-injection schedule
//! (drop/corrupt/delay) and the documented degradation invariants are
//! checked: every link drop is accounted, corrupted frames are rejected by
//! the frame check before they can touch register state, and the remaining
//! traffic still agrees with the reference bit-for-bit.
//!
//! The `--migrate` mode ([`MigrateKnobs`]) additionally soaks the §3.1
//! control plane: generation is constrained to the partitioned-area
//! convention (partition on `idx`, register cells indexed by `idx` only),
//! the ADCP run starts under a uniform [`PartitionMap`] and a seeded
//! mid-workload `begin_migration` reassigns bucket owners under live
//! traffic. For every requested strategy the delivered frames, filtered
//! counts, and merged final register state must stay byte-identical to the
//! never-migrated reference, every cell must end on the pipe the final map
//! owns it to, and no packet may be dequeued at a stale-epoch pipe. RMT
//! targets are skipped in migrate mode (they have no partitioned area).
//!
//! The `--fabric` mode stretches the same differential check across a
//! *leaf–spine fabric*: generation is constrained to the partitioned-area
//! convention (steer on `idx`, register cells indexed by `idx` only, two
//! scratch header fields for the placement pass), and each case additionally
//! runs on a 2-spine × 4-leaf [`Fabric`] of ADCP switches whose global
//! partitioned area is split across the leaves by key range. Delivered
//! frames, filtered counts, FCS rejections, and the *merged* final register
//! state must agree with the one-big-switch reference bit-for-bit, no cell
//! may leak onto a non-owner leaf, and packet conservation must hold
//! fabric-wide (MAT lookup counts are excluded: transit hops look tables up
//! by design). RMT targets are skipped in fabric mode.
//!
//! On a mismatch the failing [`CaseSpec`] is *shrunk* (fewer packets, fewer
//! entries, fewer tables, narrower arrays, no faults) while the failure
//! reproduces, and the minimal spec is written to a replayable
//! `CONFORMANCE_FAIL_<seed>.json` artifact.
//!
//! Everything derives deterministically from the case seed: the same seed
//! produces a byte-identical [`Report`].

use std::path::{Path, PathBuf};

use adcp_core::{AdcpConfig, AdcpSwitch, MigrationStrategy, PartitionMap};
use adcp_fabric::{plan_owners, Fabric, FabricConfig, FabricError};
use adcp_lang::{
    deparse, ActionDef, ActionOp, BinOp, CompileOptions, Entry, FabricSpec, FieldDef, FieldId,
    FieldRef, HeaderDef, HeaderId, KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program,
    ProgramBuilder, RegAluOp, RegId, Region, RegionState, RegisterDef, RmtCentralStrategy,
    TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp_sim::metrics::MetricsRegistry;
use adcp_sim::packet::{EgressSpec, FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use serde::Serialize;

/// Register cells per generated stateful table.
const REG_CELLS: u32 = 64;
/// Inter-packet injection gap: large enough that every packet fully drains
/// (including recirculation and fault delays) before the next one enters,
/// so execution order equals injection order on every target.
const GAP_NS: u64 = 10_000;
/// Ports the workload draws from (all < the smallest target's port count,
/// and all in RMT pipe 0 so recirculated state stays on one pipe).
const WORKLOAD_PORTS: u16 = 8;
/// Fabric shape for `--fabric` cases: 4 leaves × 2 spines × 2 host ports
/// per leaf = exactly [`WORKLOAD_PORTS`] logical host ports.
const FABRIC_LEAVES: u32 = 4;
const FABRIC_SPINES: u32 = 2;
const FABRIC_HOSTS_PER_LEAF: u32 = 2;

// ---------------------------------------------------------------------------
// Case specification (the shrink surface)
// ---------------------------------------------------------------------------

/// Per-mille fault probabilities for the soak phase; integers so specs
/// round-trip exactly through JSON artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FaultKnobs {
    /// Link-drop probability, per mille.
    pub drop_pm: u32,
    /// Bit-corruption probability, per mille.
    pub corrupt_pm: u32,
    /// Delay probability, per mille.
    pub delay_pm: u32,
}

impl FaultKnobs {
    fn config(&self) -> FaultConfig {
        FaultConfig {
            drop_chance: self.drop_pm as f64 / 1000.0,
            corrupt_chance: self.corrupt_pm as f64 / 1000.0,
            delay_chance: self.delay_pm as f64 / 1000.0,
            ..Default::default()
        }
    }
}

/// Mid-workload repartitioning knobs for the `--migrate` mode. With these
/// set, generation is constrained to the partitioned-area convention
/// (partition on `idx`, register cells indexed by `idx` only, no array
/// table) and the ADCP runs are compared against a never-migrated
/// reference: delivered frames, filtered counts, and final (merged)
/// register state must be byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MigrateKnobs {
    /// Which strategies to exercise: 0 = drain, 1 = incremental, 2 = both.
    pub strategy_sel: u32,
    /// When the migration begins, as per-mille of the workload span.
    pub at_pm: u32,
}

/// A fully reproducible conformance case: a seed plus the generation caps
/// the shrinker lowers. Generation re-derives everything from these fields,
/// so shrinking = re-generating with smaller caps and checking the failure
/// still reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CaseSpec {
    /// Seed for every random draw in the case.
    pub seed: u64,
    /// Upper bound on workload packets (≥ 1).
    pub max_packets: u32,
    /// Upper bound on installed entries per table.
    pub max_entries: u32,
    /// Upper bound on the array-field width (1, 2, 4 or 8).
    pub max_array: u16,
    /// Upper bound on ingress match tables (≥ 1).
    pub max_tables: u32,
    /// Fault schedule for the soak phase; `None` = clean run.
    pub fault: Option<FaultKnobs>,
    /// Mid-workload live repartitioning; `None` = no migration.
    pub migrate: Option<MigrateKnobs>,
    /// Also run the case on a leaf–spine fabric and require agreement with
    /// the one-big-switch reference. Mutually exclusive with `migrate`.
    pub fabric: bool,
}

/// Why a case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The draw did not compile on some target (counted, not a failure).
    Skip(String),
    /// The targets disagreed — a genuine conformance failure.
    Mismatch(String),
}

// ---------------------------------------------------------------------------
// Program + workload generation
// ---------------------------------------------------------------------------

/// Field handles of the generated header.
#[derive(Clone, Copy)]
struct Fields {
    op: FieldRef,
    key: FieldRef,
    idx: FieldRef,
    val: FieldRef,
    arr: FieldRef,
}

/// One generated program (plus its recirculating twin) with its entry
/// installs, stateful registers, and workload.
struct GenCase {
    /// Program for the reference, ADCP, and RMT egress-pinned targets.
    program: Program,
    /// Same program with `Recirculate` in the ingress route action, for the
    /// RMT recirculating target (RMT needs the explicit second pass; the
    /// op is a no-op on the other targets so the twin keeps them identical).
    program_recirc: Program,
    /// Registers owned by central stateful tables (compared at the end).
    state_regs: Vec<RegId>,
    /// The program uses array action ops: ADCP-only territory (§3.2). The
    /// RMT targets must *reject* it at compile time instead of running it.
    has_array_actions: bool,
    /// Entries to install, `(table name, entry)` in a deterministic order.
    installs: Vec<(String, Entry)>,
    /// Workload: `(ingress port, sealed packet)` in injection order.
    packets: Vec<(u16, Packet)>,
}

fn bitmask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A random stateless operand over the scalar fields.
fn gen_operand(rng: &mut SimRng, f: &Fields) -> Operand {
    match rng.index(6) {
        0 => Operand::Const(rng.range(0u64..=0xFFFF_FFFF)),
        1 => Operand::Field(f.val),
        2 => Operand::Field(f.key),
        3 => Operand::Field(f.idx),
        4 => Operand::Field(f.op),
        _ => Operand::Param(rng.range(0u8..2)),
    }
}

fn gen_binop(rng: &mut SimRng) -> BinOp {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Min,
        BinOp::Max,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Ge,
    ][rng.index(10)]
}

fn gen_regop(rng: &mut SimRng) -> RegAluOp {
    [RegAluOp::Write, RegAluOp::Add, RegAluOp::Max, RegAluOp::Min][rng.index(4)]
}

/// A random stateless op. Drop/MarkDrop/IfEq are only legal in ingress
/// match tables (they run before the route table asserts the forwarding
/// decision, so a drop consistently short-circuits on every target).
/// `keep_steer` (fabric mode, pre-egress regions) redirects the `idx`
/// rewrite onto `val`: the placement pass steers on `idx`, so nothing may
/// rewrite it before the forwarding decision is made.
fn gen_stateless_op(rng: &mut SimRng, f: &Fields, allow_drop: bool, keep_steer: bool) -> ActionOp {
    if allow_drop && rng.chance(0.15) {
        return if rng.chance(0.5) {
            ActionOp::Drop
        } else {
            ActionOp::MarkDrop
        };
    }
    match rng.index(5) {
        0 => ActionOp::Set {
            dst: f.val,
            src: gen_operand(rng, f),
        },
        1 => ActionOp::Bin {
            dst: f.val,
            op: gen_binop(rng),
            a: Operand::Field(f.val),
            b: gen_operand(rng, f),
        },
        2 => {
            let dst = if keep_steer { f.val } else { f.idx };
            ActionOp::Bin {
                dst,
                op: gen_binop(rng),
                a: Operand::Field(dst),
                b: Operand::Const(rng.range(0u64..16)),
            }
        }
        3 => ActionOp::Hash {
            dst: f.val,
            fields: vec![f.key, f.op],
            modulo: 1 << 16,
        },
        _ if allow_drop => ActionOp::IfEq {
            a: Operand::Field(f.op),
            b: Operand::Const(rng.range(0u64..4)),
            then: vec![ActionOp::Set {
                dst: f.val,
                src: gen_operand(rng, f),
            }],
        },
        _ => ActionOp::Set {
            dst: f.op,
            src: gen_operand(rng, f),
        },
    }
}

/// A random stateful op over `reg` (central region only). In migrate and
/// fabric modes the index is always `idx` — the partitioned-area convention
/// that cell `c` belongs to partition key `c`, which is what lets a
/// migration (or the fabric's key-range split) know where cells live.
fn gen_register_op(rng: &mut SimRng, f: &Fields, reg: RegId, partitioned: bool) -> ActionOp {
    let index = if partitioned || rng.chance(0.7) {
        Operand::Field(f.idx)
    } else {
        Operand::Const(rng.range(0u64..REG_CELLS as u64))
    };
    if rng.chance(0.25) {
        ActionOp::RegRead {
            reg,
            index,
            dst: f.val,
        }
    } else {
        let value = match rng.index(3) {
            0 => Operand::Field(f.val),
            1 => Operand::Const(rng.range(0u64..=0xFFFF)),
            _ => Operand::Param(0),
        };
        ActionOp::RegRmw {
            reg,
            index,
            op: gen_regop(rng),
            value,
            fetch: if rng.chance(0.3) { Some(f.val) } else { None },
        }
    }
}

/// Entries for a keyed table: collision-free by construction so installs
/// never fail (exact keys deduplicated, ranges from sorted distinct cut
/// points; LPM/ternary accept anything).
fn gen_entries(
    rng: &mut SimRng,
    kind: MatchKind,
    key_bits: u8,
    n: u32,
    actions: &[ActionDef],
    interesting: &mut Vec<u64>,
) -> Vec<Entry> {
    let mask = bitmask(key_bits);
    let mut entries = Vec::new();
    let mut values: Vec<MatchValue> = Vec::new();
    match kind {
        MatchKind::Exact => {
            let mut seen = Vec::new();
            let mut attempts = 0;
            while (seen.len() as u32) < n && attempts < 4 * n + 8 {
                attempts += 1;
                let k = rng.u64() & mask;
                if !seen.contains(&k) {
                    seen.push(k);
                    interesting.push(k);
                    values.push(MatchValue::Exact(k));
                }
            }
        }
        MatchKind::Lpm => {
            for _ in 0..n {
                let len = rng.range(1u8..=key_bits);
                let v = rng.u64() & mask;
                interesting.push(v);
                values.push(MatchValue::Lpm { value: v, len });
            }
        }
        MatchKind::Ternary => {
            for _ in 0..n {
                let v = rng.u64() & mask;
                interesting.push(v);
                values.push(MatchValue::Ternary {
                    value: v,
                    mask: rng.u64() & mask,
                    priority: rng.range(0u16..8),
                });
            }
        }
        MatchKind::Range => {
            // 2n distinct sorted cut points pair into n disjoint intervals.
            let mut cuts = Vec::new();
            let mut attempts = 0;
            while (cuts.len() as u32) < 2 * n && attempts < 8 * n + 16 {
                attempts += 1;
                let c = rng.u64() & mask;
                if !cuts.contains(&c) {
                    cuts.push(c);
                }
            }
            cuts.sort_unstable();
            for pair in cuts.chunks_exact(2) {
                interesting.push(pair[0]);
                values.push(MatchValue::Range {
                    lo: pair[0],
                    hi: pair[1],
                });
            }
        }
    }
    for value in values {
        let action = rng.index(actions.len());
        let params = (0..actions[action].params_used())
            .map(|_| rng.range(0u64..1024))
            .collect();
        entries.push(Entry {
            value,
            action,
            params,
        });
    }
    entries
}

fn gen_match_kind(rng: &mut SimRng) -> MatchKind {
    [
        MatchKind::Exact,
        MatchKind::Lpm,
        MatchKind::Ternary,
        MatchKind::Range,
    ][rng.index(4)]
}

/// Generate the full case from a spec. Deterministic: every draw comes from
/// `SimRng::seed_from(spec.seed)` and the caps in the spec.
fn gen_case(spec: &CaseSpec) -> GenCase {
    let mut rng = SimRng::seed_from(spec.seed);

    // -- Header: op:8, key:kb, idx:16, val:32, arr: aw×32. All widths are
    //    multiples of 8, so the header is always byte aligned.
    let key_bits = [8u8, 16, 24, 32][rng.index(4)];
    let widths: Vec<u16> = [1u16, 2, 4, 8]
        .into_iter()
        .filter(|w| *w <= spec.max_array.max(1))
        .collect();
    let arr_width = widths[rng.index(widths.len())];
    // Fabric cases carry two extra scratch fields the placement pass owns:
    // the hop phase and the composite steering key. The workload leaves them
    // zero and the fabric clears them again before delivery, so frames stay
    // byte-comparable with the non-fabric targets.
    let mut field_defs = vec![
        FieldDef::scalar("op", 8),
        FieldDef::scalar("key", key_bits),
        FieldDef::scalar("idx", 16),
        FieldDef::scalar("val", 32),
        FieldDef::array("arr", 32, arr_width),
    ];
    if spec.fabric {
        field_defs.push(FieldDef::scalar("fphase", 8));
        field_defs.push(FieldDef::scalar("fgk", 16));
    }
    let header = HeaderDef::new("h", field_defs);
    let fr = |i: u16| FieldRef::new(HeaderId(0), FieldId(i));
    let fields = Fields {
        op: fr(0),
        key: fr(1),
        idx: fr(2),
        val: fr(3),
        arr: fr(4),
    };

    // -- Shape draws. Migrate and fabric modes forbid the array table:
    //    array ops span `[base, base+w)` cells, which breaks the
    //    cell-per-partition-key convention a migration (or a cross-leaf
    //    key-range split) relies on to know where cells live.
    let partitioned = spec.migrate.is_some() || spec.fabric;
    let n_ingress = rng.range(1usize..=(spec.max_tables.clamp(1, 3) as usize));
    let n_state = rng.range(1usize..=2);
    let use_array_table = arr_width > 1 && rng.chance(0.7) && !partitioned;
    let use_egress_table = rng.chance(0.6);

    let mut b = ProgramBuilder::new("conformance");
    let h = b.header(header.clone());
    b.parser(ParserSpec::single(h));

    let mut installs: Vec<(String, Entry)> = Vec::new();
    let mut interesting: Vec<u64> = Vec::new();
    let mut state_regs: Vec<RegId> = Vec::new();
    let mut route_table_index = 0usize;

    // -- Ingress match tables: stateless, may drop.
    for t in 0..n_ingress {
        let kind = gen_match_kind(&mut rng);
        let n_actions = rng.range(1usize..=3);
        let mut actions: Vec<ActionDef> = (0..n_actions)
            .map(|a| {
                let n_ops = rng.range(1usize..=3);
                let ops = (0..n_ops)
                    .map(|_| gen_stateless_op(&mut rng, &fields, true, spec.fabric))
                    .collect();
                ActionDef::new(format!("i{t}a{a}"), ops)
            })
            .collect();
        actions.push(ActionDef::nop());
        let name = format!("ing{t}");
        let n_entries = rng.range(0u32..=spec.max_entries.min(8));
        for e in gen_entries(
            &mut rng,
            kind,
            key_bits,
            n_entries,
            &actions,
            &mut interesting,
        ) {
            installs.push((name.clone(), e));
        }
        let default_action = actions.len() - 1;
        b.table(TableDef {
            name,
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fields.key,
                kind,
                bits: key_bits,
            }),
            actions,
            default_action,
            default_params: vec![],
            size: 64,
        });
        route_table_index += 1;
    }

    // -- Route table, last in ingress. Normally every surviving packet is
    //    pinned to central pipe 0; in migrate mode the packet instead
    //    partitions on `idx` (masked into the bucket/cell range) so state
    //    spreads across pipes and a live map change has something to move.
    //    Either way egress is port 0. (The recirculating twin appends
    //    `Recirculate` here.)
    let route_ops = if partitioned {
        vec![
            ActionOp::Bin {
                dst: fields.idx,
                op: BinOp::And,
                a: Operand::Field(fields.idx),
                b: Operand::Const(REG_CELLS as u64 - 1),
            },
            ActionOp::SetCentralPipe(Operand::Field(fields.idx)),
            ActionOp::SetEgress(Operand::Const(0)),
        ]
    } else {
        vec![
            ActionOp::SetCentralPipe(Operand::Const(0)),
            ActionOp::SetEgress(Operand::Const(0)),
        ]
    };
    b.table(TableDef {
        name: "route".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new("route", route_ops)],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // -- Central region. The keyless route-refresh table runs FIRST: on the
    //    RMT recirculation pass the packet is re-parsed, so the PHV's egress
    //    intrinsic restarts Unset and the central region must re-assert the
    //    decision (idempotent on the other targets).
    b.table(TableDef {
        name: "central_route".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "cfwd",
            vec![ActionOp::SetEgress(Operand::Const(0))],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // -- Central stateful tables: each owns its register (single-owner
    //    validation), key on `key` or keyless, actions mutate the register.
    for t in 0..n_state {
        let reg_bits = [16u8, 32][rng.index(2)];
        let reg = b.register(RegisterDef::new(format!("r{t}"), REG_CELLS, reg_bits));
        state_regs.push(reg);
        let keyless = rng.chance(0.3);
        let n_actions = rng.range(1usize..=2);
        let actions: Vec<ActionDef> = (0..n_actions)
            .map(|a| {
                let n_ops = rng.range(1usize..=2);
                let ops = (0..n_ops)
                    .map(|_| gen_register_op(&mut rng, &fields, reg, partitioned))
                    .collect();
                ActionDef::new(format!("s{t}a{a}"), ops)
            })
            .collect();
        let name = format!("state{t}");
        let kind = gen_match_kind(&mut rng);
        let key = if keyless {
            None
        } else {
            let n_entries = rng.range(0u32..=spec.max_entries.min(8));
            for e in gen_entries(
                &mut rng,
                kind,
                key_bits,
                n_entries,
                &actions,
                &mut interesting,
            ) {
                installs.push((name.clone(), e));
            }
            Some(KeySpec {
                field: fields.key,
                kind,
                bits: key_bits,
            })
        };
        let default_action = rng.index(actions.len());
        b.table(TableDef {
            name,
            region: Region::Central,
            key,
            actions,
            default_action,
            default_params: vec![],
            size: 64,
        });
    }

    // -- Optional §3.2 array table: keyless, array-wide register ops.
    if use_array_table {
        let reg = b.register(RegisterDef::new("ra", REG_CELLS, 32));
        state_regs.push(reg);
        let base = if rng.chance(0.6) {
            Operand::Field(fields.idx)
        } else {
            Operand::Const(rng.range(0u64..(REG_CELLS as u64 - arr_width as u64)))
        };
        let mut ops = vec![ActionOp::RegArray {
            reg,
            base,
            op: gen_regop(&mut rng),
            values: fields.arr,
            readback: rng.chance(0.5),
        }];
        if rng.chance(0.5) {
            ops.push(ActionOp::ArrayReduce {
                dst: fields.val,
                src: fields.arr,
                op: gen_binop(&mut rng),
            });
        }
        b.table(TableDef {
            name: "arrt".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new("agg", ops)],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
    }

    // -- Optional stateless egress table (no drops: egress rewrites only).
    if use_egress_table {
        let n_ops = rng.range(1usize..=2);
        let ops = (0..n_ops)
            .map(|_| gen_stateless_op(&mut rng, &fields, false, false))
            .collect();
        b.table(TableDef {
            name: "etbl".into(),
            region: Region::Egress,
            key: None,
            actions: vec![ActionDef::new("erw", ops)],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
    }

    let program = b.build();
    // The recirculating twin: identical except the route action additionally
    // requests the second ingress pass RMT needs to reach central tables.
    let mut program_recirc = program.clone();
    program_recirc.tables[route_table_index].actions[0]
        .ops
        .push(ActionOp::Recirculate);

    // -- Workload.
    let n_packets = rng.range(1usize..=(spec.max_packets.max(1) as usize));
    let mut packets = Vec::with_capacity(n_packets);
    for i in 0..n_packets {
        let port = rng.range(0u16..WORKLOAD_PORTS);
        let key = if !interesting.is_empty() && rng.chance(0.5) {
            interesting[rng.index(interesting.len())]
        } else {
            rng.u64() & bitmask(key_bits)
        };
        let mut buf = vec![0u8; header.total_bytes() as usize];
        let dep = |buf: &mut [u8], fid: u16, elem: u16, bits: u8, v: u64| {
            let off = header.bit_offset(FieldId(fid), elem);
            assert!(adcp_lang::deposit_bits(buf, off, bits, v));
        };
        dep(&mut buf, 0, 0, 8, rng.range(0u64..4));
        dep(&mut buf, 1, 0, key_bits, key);
        // Fabric cases keep `idx` inside the steering key space: the
        // composite key is computed from the raw field at the first hop,
        // before the route table's mask runs.
        let idx_cap = if spec.fabric { REG_CELLS as u64 } else { 80 };
        dep(&mut buf, 2, 0, 16, rng.range(0u64..idx_cap));
        dep(&mut buf, 3, 0, 32, rng.u64() & 0xFFFF_FFFF);
        for e in 0..arr_width {
            dep(&mut buf, 4, e, 32, rng.u64() & 0xFFFF_FFFF);
        }
        let payload_len = rng.range(0usize..16);
        for _ in 0..payload_len {
            buf.push(rng.range(0u64..256) as u8);
        }
        packets.push((
            port,
            Packet::new(i as u64, FlowId(1000 + i as u64), buf).seal(),
        ));
    }

    GenCase {
        program,
        program_recirc,
        state_regs,
        has_array_actions: use_array_table,
        installs,
        packets,
    }
}

// ---------------------------------------------------------------------------
// Fault schedule preparation
// ---------------------------------------------------------------------------

/// One workload packet after the (optional) fault schedule was applied.
struct PreparedPacket {
    port: u16,
    pkt: Packet,
    /// Injection time (base gap plus any fault delay).
    at: SimTime,
    /// Lost on the link: never injected anywhere.
    link_dropped: bool,
    /// Bit-flipped on the link: injected, must be rejected by the FCS.
    corrupted: bool,
}

/// Apply the fault schedule (or pass everything through when `knobs` is
/// `None`). The same prepared list feeds every target, so the comparison
/// stays exact under faults.
fn prepare_workload(case: &GenCase, spec: &CaseSpec) -> Vec<PreparedPacket> {
    let mut injector = match spec.fault {
        Some(k) => FaultInjector::new(k.config(), SimRng::seed_from(spec.seed ^ 0x5EED_FA17)),
        None => FaultInjector::transparent(),
    };
    case.packets
        .iter()
        .enumerate()
        .map(|(i, (port, pkt))| {
            let mut pkt = pkt.clone();
            let base = SimTime::from_ns((i as u64 + 1) * GAP_NS);
            let outcome = injector.apply(&mut pkt);
            PreparedPacket {
                port: *port,
                pkt,
                at: match outcome {
                    FaultOutcome::Delayed(d) => base + d,
                    _ => base,
                },
                link_dropped: outcome == FaultOutcome::Dropped,
                corrupted: outcome == FaultOutcome::Corrupted,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Execution: reference interpreter + the three switch models
// ---------------------------------------------------------------------------

/// What one target observed; equivalence means all four agree.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Delivered frames `(id, port, bytes)`, sorted by packet id.
    delivered: Vec<(u64, u16, Vec<u8>)>,
    /// Packets dropped by a program `Drop`/`MarkDrop` action.
    filtered: u64,
    /// Corrupted frames rejected by the frame check.
    fcs_drops: u64,
    /// Match-table key lookups (all regions, all lanes).
    lookups: u64,
    /// Lookups that hit an installed entry.
    hits: u64,
    /// Final cells of every stateful register, in `state_regs` order.
    regs: Vec<Vec<u64>>,
}

/// Parse → run one region → deparse; the reference's per-region step,
/// mirroring the switch models' writeback semantics exactly (the forwarding
/// decision rides in `EgressSpec`, moved into the PHV intrinsics before the
/// region runs and moved back out after).
fn ref_stage(
    program: &Program,
    layout: &adcp_lang::PhvLayout,
    state: &mut RegionState,
    data: &[u8],
    carried: EgressSpec,
    port: u16,
) -> Result<(Vec<u8>, EgressSpec), String> {
    let out = program
        .parser
        .parse(&program.headers, layout, data)
        .map_err(|e| format!("reference parse error: {e:?}"))?;
    let mut phv = out.phv;
    phv.intr.ingress_port = Some(PortId(port));
    phv.intr.egress = carried;
    state.run(program, layout, &mut phv);
    let payload = &data[out.consumed.min(data.len())..];
    let new_data = deparse(&program.headers, layout, &phv, &out.extracted, payload);
    Ok((new_data, std::mem::take(&mut phv.intr.egress)))
}

/// Run the case on the reference interpreter: one packet at a time through
/// ingress → central → egress with explicit deparse/re-parse between
/// regions (the ADCP flow with the timing model removed).
fn run_reference(case: &GenCase, prepared: &[PreparedPacket]) -> Result<Outcome, String> {
    let program = &case.program;
    let layout = program.layout();
    let mut ing = RegionState::new(program, Region::Ingress);
    let mut cen = RegionState::new(program, Region::Central);
    let mut egr = RegionState::new(program, Region::Egress);
    for (name, entry) in &case.installs {
        let region = program
            .tables
            .iter()
            .find(|t| &t.name == name)
            .map(|t| t.region)
            .ok_or_else(|| format!("reference: no table {name}"))?;
        let state = match region {
            Region::Ingress => &mut ing,
            Region::Central => &mut cen,
            Region::Egress => &mut egr,
        };
        state
            .install_by_name(program, name, entry.clone())
            .map_err(|e| format!("reference install into {name}: {e:?}"))?;
    }

    let mut delivered = Vec::new();
    let mut filtered = 0u64;
    let mut fcs_drops = 0u64;
    for p in prepared {
        if p.link_dropped {
            continue;
        }
        if p.corrupted {
            fcs_drops += 1;
            continue;
        }
        let (data, egress) = ref_stage(
            program,
            &layout,
            &mut ing,
            &p.pkt.data,
            EgressSpec::Unset,
            p.port,
        )?;
        if egress == EgressSpec::Drop {
            filtered += 1;
            continue;
        }
        let (data, egress) = ref_stage(program, &layout, &mut cen, &data, egress, p.port)?;
        if egress == EgressSpec::Drop {
            filtered += 1;
            continue;
        }
        let EgressSpec::Unicast(out_port) = egress else {
            return Err(format!(
                "reference: packet {} left central with no decision ({egress:?})",
                p.pkt.meta.id
            ));
        };
        let (data, egress) = ref_stage(
            program,
            &layout,
            &mut egr,
            &data,
            EgressSpec::Unicast(out_port),
            p.port,
        )?;
        if egress == EgressSpec::Drop {
            filtered += 1;
            continue;
        }
        delivered.push((p.pkt.meta.id, out_port.0, data));
    }
    delivered.sort_by_key(|(id, _, _)| *id);

    Ok(Outcome {
        delivered,
        filtered,
        fcs_drops,
        lookups: ing.stats.lookups + cen.stats.lookups + egr.stats.lookups,
        hits: ing.stats.hits + cen.stats.hits + egr.stats.hits,
        regs: case
            .state_regs
            .iter()
            .map(|r| cen.register(*r).snapshot())
            .collect(),
    })
}

/// Which RMT lowering a run targets (ADCP runs via [`run_adcp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SwitchTarget {
    RmtPinned,
    RmtRecirc,
}

impl SwitchTarget {
    fn name(&self) -> &'static str {
        match self {
            SwitchTarget::RmtPinned => "rmt-pinned",
            SwitchTarget::RmtRecirc => "rmt-recirc",
        }
    }
}

/// Test-only semantic sabotage, for proving the harness catches bugs: the
/// hook perturbs the *program handed to one target* (product code is never
/// touched), which the differential comparison must then flag and shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BugHook {
    /// No sabotage (the normal mode).
    #[default]
    None,
    /// Swap `RegAluOp::Add` and `RegAluOp::Max` in every register op of the
    /// program given to the ADCP target.
    SwapAddMax,
    /// Silently lose every other drop's forensic record on the ADCP
    /// target while the switch's drop counters keep counting — the
    /// "drops without recording" bug the journey tracer's forensics↔
    /// counter cross-check exists to catch.
    LoseDropForensics,
    /// Shift every ownership boundary by one key in the map the *fabric*
    /// steers by (the merge/leak checks keep the true map) — the classic
    /// off-by-one range-split bug. Only fabric cases can see it; the
    /// register merge and leak checks must flag it.
    MisrouteBoundaryKey,
    /// Make the ADCP target's INT stamps lie about TM queue depth (report
    /// one more than observed) while the journey tracer keeps the truth —
    /// the "telemetry that flatters the datapath" bug the INT honesty
    /// check exists to catch.
    LieIntStamp,
}

fn swap_add_max_ops(ops: &mut [ActionOp]) {
    let flip = |op: &mut RegAluOp| {
        *op = match *op {
            RegAluOp::Add => RegAluOp::Max,
            RegAluOp::Max => RegAluOp::Add,
            other => other,
        }
    };
    for op in ops {
        match op {
            ActionOp::RegRmw { op, .. } | ActionOp::RegArray { op, .. } => flip(op),
            ActionOp::IfEq { then, .. } => swap_add_max_ops(then),
            _ => {}
        }
    }
}

fn apply_bug(mut program: Program, bug: BugHook) -> Program {
    if bug == BugHook::SwapAddMax {
        for t in &mut program.tables {
            for a in &mut t.actions {
                swap_add_max_ops(&mut a.ops);
            }
        }
    }
    program
}

/// Read a counter back from the switch's metrics registry, insisting the
/// mirror agrees with the raw counter the harness otherwise uses: any skew
/// means `sync_metrics` missed an update and the "one metrics path" claim
/// is false. Returns the raw value unchanged when the registry is disabled
/// (`ADCP_METRICS=off`), so conformance still runs with metrics off.
fn mirrored(
    name: &str,
    m: &MetricsRegistry,
    scope: &str,
    metric: &str,
    raw: u64,
) -> Result<u64, String> {
    if !m.enabled() {
        return Ok(raw);
    }
    match m.counter_value(scope, metric) {
        Some(v) if v == raw => Ok(v),
        Some(v) => Err(format!(
            "{name}: metrics mirror {scope}.{metric}={v} disagrees with raw counter {raw}"
        )),
        None => Err(format!(
            "{name}: metrics registry has no {scope}.{metric} counter"
        )),
    }
}

/// Cross-check the journey tracer's forensic drop aggregation against the
/// metrics registry, through the same exporter/cross-check path the
/// `adcp-trace --forensics` CLI uses. Drop forensics are exact at any
/// sampling rate, so this holds whenever both the tracer and the registry
/// are on; when either is disabled (`ADCP_TRACE=off` / `ADCP_METRICS=off`)
/// there is nothing to check and the run proceeds.
fn forensics_check(name: &str, trace: &serde::Value, metrics: &serde::Value) -> Result<(), String> {
    match crate::journey::forensics(trace, metrics) {
        None => Ok(()),
        Some(f) if f.ok() => Ok(()),
        Some(f) => Err(format!(
            "{name}: drop forensics disagree with the metrics registry: {}",
            f.mismatches.join("; ")
        )),
    }
}

/// The INT honesty keystone: every hop chain and queue depth the datapath
/// stamped into a postcard must match the journey tracer's ground truth
/// byte-for-byte, and the collector's deduplicated drain must agree with
/// the datapath's own `int/*` totals.
///
/// The final (longest) stack per packet is split into consecutive
/// per-device segments; each segment must equal — site, enter, exit, and
/// hop context, all compared exactly — that device's non-drop journey for
/// the packet. `journey_of` returns `None` for a device the harness does
/// not know (an error: a stamp is lying about where it came from) and an
/// empty journey when the tracer did not retain the packet (sampled out
/// or ring-evicted — skipped, not failed). Truncated stacks are skipped
/// too: the chain cannot be reconstructed once hops were shed.
fn int_honesty_check(
    name: &str,
    postcards: &[adcp_sim::int::Postcard],
    raw: (u64, u64, u64),
    journey_of: &mut dyn FnMut(u16, u64) -> Option<Vec<adcp_sim::trace::Hop>>,
) -> Result<(), String> {
    use adcp_sim::trace::Site;

    // The collector must account for exactly the postcards the datapath
    // emitted, and can never have seen more stamps or truncations than the
    // datapath recorded (fewer is legal: stamps on packets that were later
    // filtered or dropped never reach a postcard).
    let mut collector = crate::telemetry::Collector::default();
    for pc in postcards {
        collector.ingest(pc);
    }
    let (c_stamps, c_postcards, c_trunc) = collector.totals();
    let (r_stamps, r_postcards, r_trunc) = raw;
    if c_postcards != r_postcards {
        return Err(format!(
            "{name}: collector drained {c_postcards} postcards but the datapath counted {r_postcards}"
        ));
    }
    if c_stamps > r_stamps || c_trunc > r_trunc {
        return Err(format!(
            "{name}: collector saw {c_stamps} stamps / {c_trunc} truncations, more than the \
             datapath recorded ({r_stamps} / {r_trunc})"
        ));
    }

    // Longest stack per packet = the full end-to-end chain (shorter ones
    // are transit-hop prefixes of it).
    let mut best: std::collections::BTreeMap<u64, &adcp_sim::int::Postcard> = Default::default();
    for pc in postcards {
        let cur = best.entry(pc.pkt).or_insert(pc);
        if pc.stack.stamps.len() > cur.stack.stamps.len() {
            *cur = pc;
        }
    }
    for (pkt, pc) in best {
        if pc.stack.truncated > 0 {
            continue;
        }
        let stamps = &pc.stack.stamps;
        let mut i = 0;
        while i < stamps.len() {
            let device = stamps[i].device;
            let mut j = i;
            while j < stamps.len() && stamps[j].device == device {
                j += 1;
            }
            let seg = &stamps[i..j];
            let Some(journey) = journey_of(device, pkt) else {
                return Err(format!(
                    "{name}: pkt {pkt} carries a stamp from unknown device {device}"
                ));
            };
            let hops: Vec<_> = journey.iter().filter(|h| h.site != Site::Dropped).collect();
            let retained = hops.first().is_some_and(|h| matches!(h.site, Site::Rx(_)));
            if retained {
                if hops.len() != seg.len() {
                    return Err(format!(
                        "{name}: pkt {pkt} device {device}: INT reports {} hops but the \
                         tracer recorded {}",
                        seg.len(),
                        hops.len()
                    ));
                }
                for (s, h) in seg.iter().zip(&hops) {
                    if s.site != h.site || s.enter != h.enter || s.exit != h.exit || s.ctx != h.ctx
                    {
                        return Err(format!(
                            "{name}: pkt {pkt} device {device}: INT stamp at {} \
                             (enter={}, exit={}, ctx={:?}) != tracer hop at {} \
                             (enter={}, exit={}, ctx={:?})",
                            s.site, s.enter.0, s.exit.0, s.ctx, h.site, h.enter.0, h.exit.0, h.ctx
                        ));
                    }
                }
            }
            i = j;
        }
    }
    Ok(())
}

/// Gather the common post-run checks and outcome from either switch's
/// counters and deliveries. `counts` is
/// `(injected, delivered, filtered, fcs_drops, parse_errors, no_decision,
/// bad_port, other_drops, mcast, total_drops, lookups, hits)`.
#[allow(clippy::too_many_arguments)]
fn finish_outcome(
    name: &str,
    counts: (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64),
    delivered_raw: Vec<(u64, u16, Vec<u8>, bool)>,
    regs: Vec<Vec<u64>>,
) -> Result<Outcome, String> {
    let (
        injected,
        delivered_n,
        filtered,
        fcs_drops,
        parse_errors,
        no_decision,
        bad_port,
        other_drops,
        mcast,
        total_drops,
        lookups,
        hits,
    ) = counts;
    if parse_errors != 0 {
        return Err(format!("{name}: {parse_errors} unexpected parse errors"));
    }
    if no_decision != 0 || bad_port != 0 {
        return Err(format!(
            "{name}: forwarding fell through (no_decision={no_decision}, bad_port={bad_port})"
        ));
    }
    if other_drops != 0 {
        return Err(format!("{name}: {other_drops} unexpected TM/queue drops"));
    }
    if mcast != 0 {
        return Err(format!("{name}: {mcast} unexpected multicast copies"));
    }
    // Conservation: with no in-flight packets after run_until_idle, every
    // injected packet is either delivered or in a counted drop class.
    if injected != delivered_n + total_drops {
        return Err(format!(
            "{name}: conservation violated: injected={injected} != delivered={delivered_n} + drops={total_drops}"
        ));
    }
    let mut delivered = Vec::with_capacity(delivered_raw.len());
    for (id, port, data, fcs_ok) in delivered_raw {
        if !fcs_ok {
            return Err(format!("{name}: delivered packet {id} was not re-sealed"));
        }
        delivered.push((id, port, data));
    }
    delivered.sort_by_key(|(id, _, _)| *id);
    if delivered.len() as u64 != delivered_n {
        return Err(format!("{name}: delivered count disagrees with counter"));
    }
    Ok(Outcome {
        delivered,
        filtered,
        fcs_drops,
        lookups,
        hits,
        regs,
    })
}

/// Partition-map plan for a migrate-mode ADCP run: the map traffic starts
/// under, plus (optionally) a mid-workload migration step.
struct MigratePlan<'a> {
    /// Map installed (while idle) before any traffic.
    initial: &'a PartitionMap,
    /// `(target map, strategy, begin time)`; `None` = never migrate.
    step: Option<(&'a PartitionMap, MigrationStrategy, SimTime)>,
}

/// Run the case on the ADCP switch model. With a [`MigratePlan`] the run
/// exercises the §3.1 control plane: traffic starts under `plan.initial`
/// and (with a step) is live-repartitioned mid-workload; the final register
/// state is then the per-cell merge across pipes, checked against the
/// single-owner placement the final map dictates.
fn run_adcp(
    case: &GenCase,
    prepared: &[PreparedPacket],
    bug: BugHook,
    plan: Option<&MigratePlan<'_>>,
) -> Result<Outcome, CaseError> {
    let target = TargetModel::adcp_reference();
    let central_pipes = target.central_pipes as usize;
    let mut sw = AdcpSwitch::new(
        apply_bug(case.program.clone(), bug),
        target,
        CompileOptions::default(),
        AdcpConfig {
            // Journey tracing on (sample=1 unless ADCP_TRACE overrides):
            // every run doubles as a forensics↔counter cross-check lane.
            trace: true,
            // INT stamping on (unless ADCP_INT overrides): every run also
            // doubles as an INT↔tracer honesty cross-check lane.
            int: true,
            ..Default::default()
        },
    )
    .map_err(|e| CaseError::Skip(format!("adcp compile: {e:?}")))?;
    if bug == BugHook::LoseDropForensics {
        sw.tracer.set_drop_forensics_loss(true);
    }
    if bug == BugHook::LieIntStamp {
        sw.set_int_lie_queue_depth(true);
    }
    for (name, entry) in &case.installs {
        sw.install_all(name, entry.clone())
            .map_err(|e| CaseError::Mismatch(format!("adcp install into {name}: {e:?}")))?;
    }
    if let Some(p) = plan {
        sw.install_partition_map(p.initial.clone())
            .map_err(|e| CaseError::Mismatch(format!("adcp: partition map install: {e}")))?;
    }
    for p in prepared {
        if !p.link_dropped {
            sw.inject(PortId(p.port), p.pkt.clone(), p.at);
        }
    }
    if let Some((next, strategy, at)) = plan.and_then(|p| p.step) {
        sw.run_until(at);
        sw.begin_migration(next.clone(), strategy)
            .map_err(|e| CaseError::Mismatch(format!("adcp: begin_migration: {e}")))?;
    }
    sw.run_until_idle();
    if sw.migration_active() {
        sw.finalize_migration()
            .map_err(|e| CaseError::Mismatch(format!("adcp: finalize_migration: {e}")))?;
    }
    sw.check_conservation();

    let regs = match plan {
        None => {
            // All state must live on central pipe 0 (the route table pins it).
            for pipe in 1..central_pipes {
                for reg in &case.state_regs {
                    if sw
                        .central_register(pipe, *reg)
                        .unwrap()
                        .snapshot()
                        .iter()
                        .any(|c| *c != 0)
                    {
                        return Err(CaseError::Mismatch(format!(
                            "adcp: register {reg:?} leaked onto central pipe {pipe}"
                        )));
                    }
                }
            }
            case.state_regs
                .iter()
                .map(|r| sw.central_register(0, *r).unwrap().snapshot())
                .collect()
        }
        Some(p) => {
            // Partitioned run: every nonzero cell must sit on the pipe the
            // *final* map owns it to (a migration that leaves state behind
            // fails here), and the comparison value is the per-cell merge.
            let final_map = p.step.map(|(next, _, _)| next).unwrap_or(p.initial);
            let stats = sw.migration_stats();
            if stats.misroutes != 0 {
                return Err(CaseError::Mismatch(format!(
                    "adcp: {} packets dequeued at a stale-epoch pipe",
                    stats.misroutes
                )));
            }
            let want_migrations = u64::from(p.step.is_some());
            if stats.migrations != want_migrations {
                return Err(CaseError::Mismatch(format!(
                    "adcp: {} migrations completed, expected {want_migrations}",
                    stats.migrations
                )));
            }
            let m = sw.metrics();
            mirrored("adcp", m, "ctrl", "migrations", stats.migrations)
                .map_err(CaseError::Mismatch)?;
            mirrored("adcp", m, "ctrl", "misroutes", stats.misroutes)
                .map_err(CaseError::Mismatch)?;
            let mut merged = Vec::with_capacity(case.state_regs.len());
            for reg in &case.state_regs {
                let mut cells = vec![0u64; REG_CELLS as usize];
                for pipe in 0..central_pipes {
                    let snap = sw.central_register(pipe, *reg).unwrap().snapshot();
                    for (cell, v) in snap.iter().enumerate() {
                        if *v != 0 && final_map.owner(cell as u64) != pipe as u32 {
                            return Err(CaseError::Mismatch(format!(
                                "adcp: register {reg:?} cell {cell} ended on pipe {pipe}, \
                                 but the final map owns it to pipe {}",
                                final_map.owner(cell as u64)
                            )));
                        }
                        cells[cell] += *v;
                    }
                }
                merged.push(cells);
            }
            merged
        }
    };
    let delivered_raw = sw
        .take_delivered()
        .into_iter()
        .map(|d| {
            let pkt = Packet {
                data: d.data.clone(),
                meta: d.meta.clone(),
            };
            (d.meta.id, d.port.0, d.data.to_vec(), pkt.fcs_ok())
        })
        .collect();
    let postcards = sw.take_postcards();
    let c = &sw.counters;
    // Cross-target metric equality flows through the registry export: read
    // the mirrored counters back (checking them against the raw ones) and
    // compare *those* across targets in `compare`.
    let m = sw.metrics();
    let fcs_drops =
        mirrored("adcp", m, "mac", "fcs_drops", c.fcs_drops).map_err(CaseError::Mismatch)?;
    let mat_lookups =
        mirrored("adcp", m, "mat", "lookups", c.mat_lookups).map_err(CaseError::Mismatch)?;
    let mat_hits = mirrored("adcp", m, "mat", "hits", c.mat_hits).map_err(CaseError::Mismatch)?;
    mirrored("adcp", m, "tx", "packets", c.delivered).map_err(CaseError::Mismatch)?;
    mirrored("adcp", m, "drops", "filtered", c.filtered).map_err(CaseError::Mismatch)?;
    forensics_check("adcp", &sw.trace_json(), &m.to_json()).map_err(CaseError::Mismatch)?;
    if sw.int_knob().on() {
        let (int_stamps, int_postcards, int_truncated) = sw.int_totals();
        mirrored("adcp", m, "int", "stamps", int_stamps).map_err(CaseError::Mismatch)?;
        mirrored("adcp", m, "int", "postcards", int_postcards).map_err(CaseError::Mismatch)?;
        mirrored("adcp", m, "int", "stack_truncated", int_truncated)
            .map_err(CaseError::Mismatch)?;
        mirrored(
            "adcp",
            m,
            "int",
            "path_changes",
            sw.int_flow_table().total_path_changes(),
        )
        .map_err(CaseError::Mismatch)?;
        let device = sw.device();
        int_honesty_check(
            "adcp",
            &postcards,
            (int_stamps, int_postcards, int_truncated),
            &mut |d, pkt| (d == device).then(|| sw.tracer.journey_of(pkt)),
        )
        .map_err(CaseError::Mismatch)?;
    }
    finish_outcome(
        "adcp",
        (
            c.injected,
            c.delivered,
            c.filtered,
            fcs_drops,
            c.parse_errors,
            c.no_decision,
            c.bad_port,
            c.tm1_drops + c.tm1_queue_drops + c.tm2_drops + c.tm2_queue_drops,
            c.mcast_copies,
            c.total_drops(),
            mat_lookups,
            mat_hits,
        ),
        delivered_raw,
        regs,
    )
    .map_err(CaseError::Mismatch)
}

/// Run the case on the RMT switch model with the given central strategy.
fn run_rmt(
    case: &GenCase,
    prepared: &[PreparedPacket],
    which: SwitchTarget,
) -> Result<Outcome, CaseError> {
    let name = which.name();
    let (program, strategy) = match which {
        SwitchTarget::RmtPinned => (&case.program, RmtCentralStrategy::EgressPin),
        SwitchTarget::RmtRecirc => (&case.program_recirc, RmtCentralStrategy::Recirculate),
    };
    let target = TargetModel::rmt_12t();
    let pipes = (target.ports / target.ports_per_pipe) as usize;
    let mut sw = RmtSwitch::new(
        program.clone(),
        target,
        CompileOptions {
            rmt_central: strategy,
        },
        RmtConfig {
            // Same forensics + INT honesty lanes as `run_adcp`.
            trace: true,
            int: true,
            ..Default::default()
        },
    )
    .map_err(|e| CaseError::Skip(format!("{name} compile: {e:?}")))?;
    for (tname, entry) in &case.installs {
        sw.install_all(tname, entry.clone())
            .map_err(|e| CaseError::Mismatch(format!("{name} install into {tname}: {e:?}")))?;
    }
    for p in prepared {
        if !p.link_dropped {
            sw.inject(PortId(p.port), p.pkt.clone(), p.at);
        }
    }
    sw.run_until_idle();
    sw.check_conservation();

    // The workload only uses ports in pipe 0 and routes to port 0, so
    // central state — egress-pinned or recirculated — must stay on pipe 0.
    for pipe in 1..pipes {
        for reg in &case.state_regs {
            if sw
                .central_register(pipe, *reg)
                .snapshot()
                .iter()
                .any(|c| *c != 0)
            {
                return Err(CaseError::Mismatch(format!(
                    "{name}: register {reg:?} leaked onto pipe {pipe}"
                )));
            }
        }
    }
    let regs = case
        .state_regs
        .iter()
        .map(|r| sw.central_register(0, *r).snapshot())
        .collect();
    let delivered_raw = sw
        .take_delivered()
        .into_iter()
        .map(|d| {
            let pkt = Packet {
                data: d.data.clone(),
                meta: d.meta.clone(),
            };
            (d.meta.id, d.port.0, d.data.to_vec(), pkt.fcs_ok())
        })
        .collect();
    let postcards = sw.take_postcards();
    let c = &sw.counters;
    // Same mirrored-read discipline as `run_adcp`: the values compared
    // across targets come from the metrics export, not the raw counters.
    let m = sw.metrics();
    let fcs_drops =
        mirrored(name, m, "mac", "fcs_drops", c.fcs_drops).map_err(CaseError::Mismatch)?;
    let mat_lookups =
        mirrored(name, m, "mat", "lookups", c.mat_lookups).map_err(CaseError::Mismatch)?;
    let mat_hits = mirrored(name, m, "mat", "hits", c.mat_hits).map_err(CaseError::Mismatch)?;
    mirrored(name, m, "tx", "packets", c.delivered).map_err(CaseError::Mismatch)?;
    mirrored(name, m, "drops", "filtered", c.filtered).map_err(CaseError::Mismatch)?;
    forensics_check(name, &sw.trace_json(), &m.to_json()).map_err(CaseError::Mismatch)?;
    if sw.int_knob().on() {
        let (int_stamps, int_postcards, int_truncated) = sw.int_totals();
        mirrored(name, m, "int", "stamps", int_stamps).map_err(CaseError::Mismatch)?;
        mirrored(name, m, "int", "postcards", int_postcards).map_err(CaseError::Mismatch)?;
        mirrored(name, m, "int", "stack_truncated", int_truncated).map_err(CaseError::Mismatch)?;
        let device = sw.device();
        int_honesty_check(
            name,
            &postcards,
            (int_stamps, int_postcards, int_truncated),
            &mut |d, pkt| (d == device).then(|| sw.tracer.journey_of(pkt)),
        )
        .map_err(CaseError::Mismatch)?;
    }
    finish_outcome(
        name,
        (
            c.injected,
            c.delivered,
            c.filtered,
            fcs_drops,
            c.parse_errors,
            c.no_decision,
            c.bad_port,
            c.tm_drops + c.queue_drops,
            c.mcast_copies,
            c.total_drops(),
            mat_lookups,
            mat_hits,
        ),
        delivered_raw,
        regs,
    )
    .map_err(CaseError::Mismatch)
}

/// Seeded per-key load profile → leaf ownership for a fabric case, through
/// the same LPT planner the §3.1 control plane uses: key ranges split
/// unevenly but deterministically per seed.
fn fabric_owners(seed: u64) -> Vec<u32> {
    let mut rng = SimRng::seed_from(seed ^ 0xFAB5_EED5);
    let loads: Vec<u64> = (0..REG_CELLS).map(|_| rng.range(1u64..100)).collect();
    plan_owners(REG_CELLS as u64, FABRIC_LEAVES, &loads)
}

/// The `MisrouteBoundaryKey` sabotage: every key whose owner differs from
/// its predecessor's keeps the predecessor's owner instead — the range
/// split's off-by-one, applied at every boundary. Falls back to flipping
/// key 0 on a single-owner map.
fn misrouted(owners: &[u32]) -> Vec<u32> {
    let mut bad = owners.to_vec();
    let mut moved = false;
    for i in 1..bad.len() {
        if owners[i] != owners[i - 1] {
            bad[i] = owners[i - 1];
            moved = true;
        }
    }
    if !moved {
        bad[0] = (bad[0] + 1) % FABRIC_LEAVES;
    }
    bad
}

/// Run the case on the leaf–spine fabric: the one logical program is split
/// across [`FABRIC_LEAVES`] leaves by key range on `idx` (spines forward
/// between them), the workload enters at the leaf owning each logical host
/// port, and the outcome is assembled fabric-wide — delivered host frames,
/// summed filtered/FCS counts, and the per-cell register merge across the
/// owner leaves. Under [`BugHook::MisrouteBoundaryKey`] the fabric *steers*
/// by a perturbed ownership map while the merge and leak checks keep the
/// true one, so the sabotage must surface as a register mismatch or leak.
fn run_fabric(
    case: &GenCase,
    prepared: &[PreparedPacket],
    spec: &CaseSpec,
    bug: BugHook,
) -> Result<Outcome, CaseError> {
    let fr = |i: u16| FieldRef::new(HeaderId(0), FieldId(i));
    let owners = fabric_owners(spec.seed);
    let steer_owners = if bug == BugHook::MisrouteBoundaryKey {
        misrouted(&owners)
    } else {
        owners.clone()
    };
    let fspec = FabricSpec {
        n_leaves: FABRIC_LEAVES,
        n_spines: FABRIC_SPINES,
        hosts_per_leaf: FABRIC_HOSTS_PER_LEAF,
        phase_field: fr(5),
        gk_field: fr(6),
        steer_field: fr(2),
        key_space: REG_CELLS as u64,
        owners: steer_owners,
        delivery_port: 0,
    };
    let program = apply_bug(case.program.clone(), bug);
    let fabric_cfg = FabricConfig {
        // Same forensics + INT honesty lanes as the single-switch targets,
        // on every device: the stamp stack rides the links, so the fabric
        // case is where multi-device chains get checked.
        switch: AdcpConfig {
            trace: true,
            int: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut fabric = Fabric::new(&program, fspec, fabric_cfg).map_err(|e| match e {
        // A placement rejection means the fabric-mode generator constraints
        // slipped — a harness bug, not a skip.
        FabricError::Place(p) => CaseError::Mismatch(format!("fabric: placement rejected: {p:?}")),
        FabricError::Compile(c) => CaseError::Skip(format!("fabric compile: {c:?}")),
        FabricError::Install {
            device,
            table,
            error,
        } => CaseError::Mismatch(format!("fabric: install of {table} on {device}: {error:?}")),
    })?;
    for (name, entry) in &case.installs {
        fabric
            .install_all(name, entry.clone())
            .map_err(|e| CaseError::Mismatch(format!("fabric install into {name}: {e:?}")))?;
    }
    for p in prepared {
        if !p.link_dropped {
            fabric.inject(p.port as u32, p.pkt.clone(), p.at);
        }
    }
    fabric.run_until_idle();
    fabric.check_conservation();

    // Per-device sanity, plus the fabric-wide sums the comparison uses.
    let (mut filtered, mut fcs_drops, mut lookups, mut hits, mut total_drops) = (0, 0, 0, 0, 0);
    let n_leaves = fabric.n_leaves();
    for i in 0..n_leaves + fabric.n_spines() {
        let (name, sw) = if i < n_leaves {
            (format!("leaf{i}"), fabric.leaf(i))
        } else {
            (format!("spine{}", i - n_leaves), fabric.spine(i - n_leaves))
        };
        let c = &sw.counters;
        if c.parse_errors != 0 {
            return Err(CaseError::Mismatch(format!(
                "fabric {name}: {} unexpected parse errors",
                c.parse_errors
            )));
        }
        if c.no_decision != 0 || c.bad_port != 0 {
            return Err(CaseError::Mismatch(format!(
                "fabric {name}: forwarding fell through (no_decision={}, bad_port={})",
                c.no_decision, c.bad_port
            )));
        }
        if c.tm1_drops + c.tm1_queue_drops + c.tm2_drops + c.tm2_queue_drops != 0 {
            return Err(CaseError::Mismatch(format!(
                "fabric {name}: unexpected TM/queue drops"
            )));
        }
        if c.mcast_copies != 0 {
            return Err(CaseError::Mismatch(format!(
                "fabric {name}: {} unexpected multicast copies",
                c.mcast_copies
            )));
        }
        filtered += c.filtered;
        fcs_drops += c.fcs_drops;
        lookups += c.mat_lookups;
        hits += c.mat_hits;
        total_drops += c.total_drops();
        if sw.int_knob().on() {
            let (int_stamps, int_postcards, int_truncated) = sw.int_totals();
            let m = sw.metrics();
            let dev = format!("fabric {name}");
            mirrored(&dev, m, "int", "stamps", int_stamps).map_err(CaseError::Mismatch)?;
            mirrored(&dev, m, "int", "postcards", int_postcards).map_err(CaseError::Mismatch)?;
            mirrored(&dev, m, "int", "stack_truncated", int_truncated)
                .map_err(CaseError::Mismatch)?;
        }
    }
    // INT honesty, fabric-wide: postcards from every device's TX, hop
    // chains split per device and compared against that device's tracer.
    if fabric.leaf(0).int_knob().on() {
        let postcards = fabric.drain_postcards();
        let n_spines = fabric.n_spines();
        int_honesty_check("fabric", &postcards, fabric.int_totals(), &mut |d, pkt| {
            let d = d as usize;
            if d < n_leaves {
                Some(fabric.leaf(d).tracer.journey_of(pkt))
            } else if d < n_leaves + n_spines {
                Some(fabric.spine(d - n_leaves).tracer.journey_of(pkt))
            } else {
                None
            }
        })
        .map_err(CaseError::Mismatch)?;
    }
    // Host-level conservation: every transit crossing adds one delivery on
    // the sender and one injection on the receiver, so the per-hop terms
    // cancel and the host-port identity holds fabric-wide.
    if fabric.host_injected() != fabric.host_delivered() + total_drops {
        return Err(CaseError::Mismatch(format!(
            "fabric: conservation violated: host_injected={} != host_delivered={} + drops={}",
            fabric.host_injected(),
            fabric.host_delivered(),
            total_drops
        )));
    }

    // Register state: no cell may hold a nonzero value on a non-owner leaf
    // (by the *true* map), and the comparison value is the per-cell merge
    // read from each cell's true owner.
    for reg in &case.state_regs {
        if let Some((leaf, cell, v)) = fabric
            .register_leaks_with(&owners, *reg, REG_CELLS as usize)
            .first()
        {
            return Err(CaseError::Mismatch(format!(
                "fabric: register {reg:?} cell {cell} has value {v} on non-owner leaf{leaf}"
            )));
        }
    }
    let regs = case
        .state_regs
        .iter()
        .map(|r| fabric.merged_register_with(&owners, *r, REG_CELLS as usize))
        .collect();

    let mut delivered = Vec::new();
    for d in fabric.take_delivered() {
        let pkt = Packet {
            data: d.data.clone(),
            meta: d.meta.clone(),
        };
        if !pkt.fcs_ok() {
            return Err(CaseError::Mismatch(format!(
                "fabric: delivered packet {} was not re-sealed",
                d.meta.id
            )));
        }
        delivered.push((d.meta.id, d.port.0, d.data.to_vec()));
    }
    delivered.sort_by_key(|(id, _, _)| *id);
    if delivered.len() as u64 != fabric.host_delivered() {
        return Err(CaseError::Mismatch(
            "fabric: delivered count disagrees with counter".into(),
        ));
    }
    Ok(Outcome {
        delivered,
        filtered,
        fcs_drops,
        lookups,
        hits,
        regs,
    })
}

/// Diff two outcomes; `Err` pinpoints the first disagreement. `check_mat`
/// is off for the fabric target: transit hops perform extra (inert) table
/// lookups on every device, so lookup/hit counts legitimately differ from
/// the one-big-switch targets.
fn compare(name: &str, reference: &Outcome, got: &Outcome, check_mat: bool) -> Result<(), String> {
    if got.filtered != reference.filtered {
        return Err(format!(
            "{name}: filtered {} != reference {}",
            got.filtered, reference.filtered
        ));
    }
    if got.fcs_drops != reference.fcs_drops {
        return Err(format!(
            "{name}: fcs_drops {} != reference {}",
            got.fcs_drops, reference.fcs_drops
        ));
    }
    if check_mat && (got.lookups != reference.lookups || got.hits != reference.hits) {
        return Err(format!(
            "{name}: mat lookups/hits {}/{} != reference {}/{}",
            got.lookups, got.hits, reference.lookups, reference.hits
        ));
    }
    if got.delivered.len() != reference.delivered.len() {
        return Err(format!(
            "{name}: delivered {} packets != reference {}",
            got.delivered.len(),
            reference.delivered.len()
        ));
    }
    for ((gid, gport, gdata), (rid, rport, rdata)) in
        got.delivered.iter().zip(reference.delivered.iter())
    {
        if gid != rid || gport != rport {
            return Err(format!(
                "{name}: delivered (id={gid}, port={gport}) != reference (id={rid}, port={rport})"
            ));
        }
        if gdata != rdata {
            return Err(format!("{name}: packet {gid} frame bytes diverge"));
        }
    }
    for (i, (g, r)) in got.regs.iter().zip(reference.regs.iter()).enumerate() {
        if g != r {
            let cell = g.iter().zip(r.iter()).position(|(a, b)| a != b);
            return Err(format!(
                "{name}: register {i} diverges at cell {cell:?} (got {:?}, want {:?})",
                cell.map(|c| g[c]),
                cell.map(|c| r[c]),
            ));
        }
    }
    Ok(())
}

/// Run one spec end to end: generate, execute on all four targets, compare,
/// and (under faults) check the degradation invariants.
pub fn run_spec(spec: &CaseSpec, bug: BugHook) -> Result<(), CaseError> {
    if spec.fabric && spec.migrate.is_some() {
        return Err(CaseError::Skip(
            "fabric and migrate modes are mutually exclusive".into(),
        ));
    }
    let case = gen_case(spec);
    let errs = case.program.validate();
    if !errs.is_empty() {
        return Err(CaseError::Skip(format!(
            "generated invalid program: {errs:?}"
        )));
    }
    let prepared = prepare_workload(&case, spec);
    let total = prepared.len() as u64;
    let link_dropped = prepared.iter().filter(|p| p.link_dropped).count() as u64;
    let corrupted = prepared.iter().filter(|p| p.corrupted).count() as u64;

    let reference = run_reference(&case, &prepared).map_err(CaseError::Mismatch)?;

    // Degradation invariants (trivially true in the clean phase): every
    // packet is accounted to exactly one fate, and corrupted frames are all
    // rejected by the frame check.
    if reference.fcs_drops != corrupted {
        return Err(CaseError::Mismatch(format!(
            "reference: fcs_drops {} != corrupted {corrupted}",
            reference.fcs_drops
        )));
    }
    if total != link_dropped + corrupted + reference.filtered + reference.delivered.len() as u64 {
        return Err(CaseError::Mismatch(format!(
            "accounting leak: {total} packets != {link_dropped} link-dropped + {corrupted} \
             corrupted + {} filtered + {} delivered",
            reference.filtered,
            reference.delivered.len()
        )));
    }

    if let Some(mk) = spec.migrate {
        // Migrate mode: the partitioned ADCP switch must reproduce the
        // reference with no migration, and again with a seeded mid-workload
        // owner reassignment under every requested strategy. RMT targets
        // are skipped — they have no global partitioned area to migrate.
        let n_pipes = u32::from(TargetModel::adcp_reference().central_pipes);
        let initial = PartitionMap::uniform(REG_CELLS, n_pipes);
        let next = perturb_owners(&initial, spec.seed, n_pipes);
        let at = SimTime::from_ns(((total + 1) * GAP_NS * mk.at_pm as u64 / 1000).max(1));
        let base = run_adcp(
            &case,
            &prepared,
            bug,
            Some(&MigratePlan {
                initial: &initial,
                step: None,
            }),
        )?;
        compare("adcp-partitioned", &reference, &base, true).map_err(CaseError::Mismatch)?;
        for strategy in strategies(mk.strategy_sel) {
            let plan = MigratePlan {
                initial: &initial,
                step: Some((&next, strategy, at)),
            };
            let got = run_adcp(&case, &prepared, bug, Some(&plan))?;
            compare(
                &format!("adcp-migrate-{strategy:?}"),
                &reference,
                &got,
                true,
            )
            .map_err(CaseError::Mismatch)?;
        }
        return Ok(());
    }

    if spec.fabric {
        // Fabric mode: the partitioned route spreads state across central
        // pipes, so the single-big-switch ADCP run carries a uniform
        // partition map (never migrated); the fabric must then agree with
        // the same reference — minus the MAT counters that transit hops
        // inflate by design. RMT targets are skipped (no partitioned area
        // to split, and the scratch fields are meaningless to them).
        let n_pipes = u32::from(TargetModel::adcp_reference().central_pipes);
        let initial = PartitionMap::uniform(REG_CELLS, n_pipes);
        let single = run_adcp(
            &case,
            &prepared,
            bug,
            Some(&MigratePlan {
                initial: &initial,
                step: None,
            }),
        )?;
        compare("adcp-partitioned", &reference, &single, true).map_err(CaseError::Mismatch)?;
        let fab = run_fabric(&case, &prepared, spec, bug)?;
        compare("fabric", &reference, &fab, false).map_err(CaseError::Mismatch)?;
        return Ok(());
    }

    let adcp = run_adcp(&case, &prepared, bug, None)?;
    compare("adcp", &reference, &adcp, true).map_err(CaseError::Mismatch)?;
    if case.has_array_actions {
        // §3.2 separation: scalar MAUs must refuse array action ops.
        assert_rmt_rejects(&case)?;
    } else {
        let pinned = run_rmt(&case, &prepared, SwitchTarget::RmtPinned)?;
        compare("rmt-pinned", &reference, &pinned, true).map_err(CaseError::Mismatch)?;
        let recirc = run_rmt(&case, &prepared, SwitchTarget::RmtRecirc)?;
        compare("rmt-recirc", &reference, &recirc, true).map_err(CaseError::Mismatch)?;
    }
    Ok(())
}

/// The strategies a `strategy_sel` knob requests (2 = both).
fn strategies(sel: u32) -> Vec<MigrationStrategy> {
    match sel {
        0 => vec![MigrationStrategy::Drain],
        1 => vec![MigrationStrategy::Incremental],
        _ => vec![MigrationStrategy::Drain, MigrationStrategy::Incremental],
    }
}

/// A seeded owner perturbation of `map`, guaranteed to move at least one
/// bucket: the migration target for migrate-mode cases.
fn perturb_owners(map: &PartitionMap, seed: u64, n_pipes: u32) -> PartitionMap {
    if n_pipes < 2 {
        return map.clone();
    }
    let mut rng = SimRng::seed_from(seed ^ 0x0061_6272_A7E5_EED5);
    let mut owners: Vec<u32> = (0..map.num_buckets())
        .map(|b| map.owner_of_bucket(b))
        .collect();
    let mut moved = false;
    for o in owners.iter_mut() {
        if rng.chance(0.3) {
            *o = (*o + rng.range(1u64..n_pipes as u64) as u32) % n_pipes;
            moved = true;
        }
    }
    if !moved {
        owners[0] = (owners[0] + 1) % n_pipes;
    }
    PartitionMap::from_buckets(owners)
}

/// An array-action program must fail RMT compilation under *both* central
/// strategies; RMT silently accepting one is itself a conformance bug.
fn assert_rmt_rejects(case: &GenCase) -> Result<(), CaseError> {
    for (program, strategy) in [
        (&case.program, RmtCentralStrategy::EgressPin),
        (&case.program_recirc, RmtCentralStrategy::Recirculate),
    ] {
        if RmtSwitch::new(
            program.clone(),
            TargetModel::rmt_12t(),
            CompileOptions {
                rmt_central: strategy,
            },
            RmtConfig::default(),
        )
        .is_ok()
        {
            return Err(CaseError::Mismatch(format!(
                "rmt ({strategy:?}) compiled an array-action program it must reject (§3.2)"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shrinking + artifacts
// ---------------------------------------------------------------------------

/// Shrink a failing spec: greedily try smaller caps (and dropping the fault
/// schedule), keeping any reduction that still fails. Returns the minimal
/// spec found and its failure message.
pub fn shrink(spec: &CaseSpec, bug: BugHook, original_error: String) -> (CaseSpec, String) {
    let mut cur = *spec;
    let mut err = original_error;
    for _ in 0..64 {
        let mut candidates: Vec<CaseSpec> = Vec::new();
        if cur.fault.is_some() {
            candidates.push(CaseSpec { fault: None, ..cur });
        }
        if let Some(mk) = cur.migrate {
            // A migrate failure may not need the migration at all; if it
            // does, one strategy is a smaller witness than both.
            candidates.push(CaseSpec {
                migrate: None,
                ..cur
            });
            if mk.strategy_sel >= 2 {
                for sel in [0u32, 1] {
                    candidates.push(CaseSpec {
                        migrate: Some(MigrateKnobs {
                            strategy_sel: sel,
                            ..mk
                        }),
                        ..cur
                    });
                }
            }
        }
        if cur.max_packets > 1 {
            candidates.push(CaseSpec {
                max_packets: cur.max_packets / 2,
                ..cur
            });
            candidates.push(CaseSpec {
                max_packets: cur.max_packets - 1,
                ..cur
            });
        }
        if cur.max_entries > 0 {
            candidates.push(CaseSpec {
                max_entries: cur.max_entries / 2,
                ..cur
            });
        }
        if cur.max_tables > 1 {
            candidates.push(CaseSpec {
                max_tables: cur.max_tables - 1,
                ..cur
            });
        }
        if cur.max_array > 1 {
            candidates.push(CaseSpec {
                max_array: cur.max_array / 2,
                ..cur
            });
        }
        let mut improved = false;
        for cand in candidates {
            if let Err(CaseError::Mismatch(e)) = run_spec(&cand, bug) {
                cur = cand;
                err = e;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (cur, err)
}

fn spec_to_value(spec: &CaseSpec) -> serde_json::Value {
    serde_json::to_value(spec).expect("specs serialize")
}

/// Parse a spec back from artifact JSON (the `--replay` path).
pub fn spec_from_value(v: &serde_json::Value) -> Result<CaseSpec, String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("artifact spec missing field {k}"))
    };
    let fault = match v.get("fault") {
        None | Some(serde_json::Value::Null) => None,
        Some(f) => {
            let sub = |k: &str| {
                f.get(k)
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| format!("artifact fault missing field {k}"))
            };
            Some(FaultKnobs {
                drop_pm: sub("drop_pm")? as u32,
                corrupt_pm: sub("corrupt_pm")? as u32,
                delay_pm: sub("delay_pm")? as u32,
            })
        }
    };
    let migrate = match v.get("migrate") {
        None | Some(serde_json::Value::Null) => None,
        Some(m) => {
            let sub = |k: &str| {
                m.get(k)
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| format!("artifact migrate missing field {k}"))
            };
            Some(MigrateKnobs {
                strategy_sel: sub("strategy_sel")? as u32,
                at_pm: sub("at_pm")? as u32,
            })
        }
    };
    Ok(CaseSpec {
        seed: field("seed")?,
        max_packets: field("max_packets")? as u32,
        max_entries: field("max_entries")? as u32,
        max_array: field("max_array")? as u16,
        max_tables: field("max_tables")? as u32,
        fault,
        migrate,
        // Absent in pre-fabric artifacts: default to the one-switch mode.
        fabric: v.get("fabric").and_then(|x| x.as_bool()).unwrap_or(false),
    })
}

/// Write the replayable failure artifact; returns its file name.
fn write_artifact(
    dir: &Path,
    original: &CaseSpec,
    shrunk: &CaseSpec,
    error: &str,
) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut doc = serde_json::Map::new();
    doc.insert("version".into(), serde_json::Value::U64(1));
    doc.insert("error".into(), serde_json::Value::String(error.to_string()));
    doc.insert("spec".into(), spec_to_value(shrunk));
    doc.insert("original".into(), spec_to_value(original));
    let name = format!("CONFORMANCE_FAIL_{:016x}.json", original.seed);
    let text =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("artifact encodes");
    std::fs::write(dir.join(&name), text + "\n")?;
    Ok(name)
}

/// Reload a failure artifact and re-run its shrunk spec.
pub fn replay(path: &Path, bug: BugHook) -> Result<(), CaseError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CaseError::Skip(format!("cannot read {}: {e}", path.display())))?;
    let doc = serde_json::from_str(&text)
        .map_err(|e| CaseError::Skip(format!("cannot parse {}: {e}", path.display())))?;
    let spec = doc
        .get("spec")
        .ok_or_else(|| CaseError::Skip("artifact has no spec".into()))
        .and_then(|s| spec_from_value(s).map_err(CaseError::Skip))?;
    run_spec(&spec, bug)
}

// ---------------------------------------------------------------------------
// Harness driver
// ---------------------------------------------------------------------------

/// Harness configuration (one run = one [`Report`]).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Master seed; case `i` derives its own seed from it.
    pub master_seed: u64,
    /// Number of generated cases.
    pub cases: u32,
    /// Smaller caps per case (CI-friendly).
    pub quick: bool,
    /// Test-only sabotage hook (see [`BugHook`]).
    pub bug: BugHook,
    /// Soak the §3.1 control plane: every case runs partitioned, with a
    /// seeded mid-workload repartitioning under both strategies.
    pub migrate: bool,
    /// Soak the leaf–spine fabric: every case also runs split across a
    /// 2-spine × 4-leaf fabric and must agree with the one-big-switch
    /// reference. Mutually exclusive with `migrate` (fabric wins).
    pub fabric: bool,
    /// Where failure artifacts are written.
    pub out_dir: PathBuf,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            master_seed: 0xC04F_0041,
            cases: 1000,
            quick: false,
            bug: BugHook::None,
            migrate: false,
            fabric: false,
            out_dir: PathBuf::from("."),
        }
    }
}

/// One recorded failure (post-shrink).
#[derive(Debug, Clone, Serialize)]
pub struct FailureRecord {
    /// Which case failed.
    pub case_index: u32,
    /// Its derived seed.
    pub seed: u64,
    /// `"clean"` or `"fault"`.
    pub phase: String,
    /// The (post-shrink) mismatch message.
    pub error: String,
    /// The shrunk spec that still reproduces.
    pub shrunk: CaseSpec,
    /// Artifact file name inside the output directory.
    pub artifact: String,
}

/// Aggregate result of a harness run. Contains no timestamps or paths, so
/// the same seed and configuration serialize byte-identically.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// The master seed the run derived everything from.
    pub master_seed: u64,
    /// Cases attempted.
    pub cases: u32,
    /// Cases that passed both the clean and the fault phase.
    pub passed: u64,
    /// Cases with at least one mismatch.
    pub failed: u64,
    /// Cases skipped because a draw did not compile on some target.
    pub skipped_compile: u64,
    /// Fault-phase runs executed (passed clean first).
    pub fault_cases: u64,
    /// True when a shutdown signal stopped the run at a case boundary;
    /// `cases` then reflects the cases actually attempted, and the report
    /// is a valid partial result for them.
    pub interrupted: bool,
    /// Every failure, post-shrink.
    pub failures: Vec<FailureRecord>,
}

/// The spec for case `i` of a run. Migrate-mode cases exercise both
/// strategies and stagger the reconfiguration point across the workload
/// (early / midpoint / late).
fn case_spec(cfg: &RunConfig, i: u32) -> CaseSpec {
    CaseSpec {
        seed: cfg
            .master_seed
            .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        max_packets: if cfg.quick { 10 } else { 20 },
        max_entries: 8,
        max_array: 8,
        max_tables: 3,
        fault: None,
        migrate: (cfg.migrate && !cfg.fabric).then(|| MigrateKnobs {
            strategy_sel: 2,
            at_pm: 250 + (i % 3) * 250,
        }),
        fabric: cfg.fabric,
    }
}

/// Fault knobs for the soak phase (fixed: ~5% drop, ~5% corrupt, ~10%
/// delay — enough to exercise every outcome on every case).
fn soak_knobs() -> FaultKnobs {
    FaultKnobs {
        drop_pm: 50,
        corrupt_pm: 50,
        delay_pm: 100,
    }
}

/// Run the harness: `cfg.cases` generated cases, each executed clean and
/// (if clean passes) again under the fault schedule; failures are shrunk
/// and written as replayable artifacts.
pub fn run(cfg: &RunConfig) -> Report {
    let mut report = Report {
        master_seed: cfg.master_seed,
        cases: cfg.cases,
        passed: 0,
        failed: 0,
        skipped_compile: 0,
        fault_cases: 0,
        interrupted: false,
        failures: Vec::new(),
    };
    for i in 0..cfg.cases {
        // Graceful exit: finish the case in progress, never start another.
        if crate::shutdown::requested() {
            report.interrupted = true;
            report.cases = i;
            break;
        }
        let clean_spec = case_spec(cfg, i);
        let mut phases = vec![("clean", clean_spec)];
        match run_spec(&clean_spec, cfg.bug) {
            Ok(()) => {
                report.fault_cases += 1;
                phases.push((
                    "fault",
                    CaseSpec {
                        fault: Some(soak_knobs()),
                        ..clean_spec
                    },
                ));
                phases.remove(0); // clean already passed
            }
            Err(CaseError::Skip(_)) => {
                report.skipped_compile += 1;
                continue;
            }
            Err(CaseError::Mismatch(_)) => {
                // fall through: the clean phase below re-runs and records it
            }
        }
        let mut case_failed = false;
        for (phase, spec) in phases {
            match run_spec(&spec, cfg.bug) {
                Ok(()) => {}
                Err(CaseError::Skip(_)) => {
                    report.skipped_compile += 1;
                }
                Err(CaseError::Mismatch(err)) => {
                    case_failed = true;
                    let (shrunk, final_err) = shrink(&spec, cfg.bug, err);
                    let artifact = write_artifact(&cfg.out_dir, &spec, &shrunk, &final_err)
                        .unwrap_or_else(|e| format!("<artifact write failed: {e}>"));
                    report.failures.push(FailureRecord {
                        case_index: i,
                        seed: spec.seed,
                        phase: phase.to_string(),
                        error: final_err,
                        shrunk,
                        artifact,
                    });
                }
            }
        }
        if case_failed {
            report.failed += 1;
        } else {
            report.passed += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64, cases: u32, bug: BugHook) -> RunConfig {
        RunConfig {
            master_seed: seed,
            cases,
            quick: true,
            bug,
            migrate: false,
            fabric: false,
            out_dir: std::env::temp_dir().join("conformance-unit"),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = case_spec(&tiny_cfg(42, 1, BugHook::None), 0);
        let a = gen_case(&spec);
        let b = gen_case(&spec);
        assert_eq!(a.packets.len(), b.packets.len());
        for ((pa, ka), (pb, kb)) in a.packets.iter().zip(b.packets.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(&ka.data[..], &kb.data[..]);
        }
        assert_eq!(a.installs.len(), b.installs.len());
        assert_eq!(a.program.tables.len(), b.program.tables.len());
    }

    #[test]
    fn generated_programs_validate() {
        for i in 0..25 {
            let spec = case_spec(&tiny_cfg(7, 25, BugHook::None), i);
            let case = gen_case(&spec);
            assert!(
                case.program.validate().is_empty(),
                "case {i} generated an invalid program"
            );
            assert!(case.program_recirc.validate().is_empty());
        }
    }

    #[test]
    fn a_handful_of_cases_pass() {
        for i in 0..6 {
            let spec = case_spec(&tiny_cfg(0xA11CE, 6, BugHook::None), i);
            if let Err(CaseError::Mismatch(e)) = run_spec(&spec, BugHook::None) {
                panic!("case {i} (seed {:#x}) mismatched: {e}", spec.seed);
            }
            let fault_spec = CaseSpec {
                fault: Some(soak_knobs()),
                ..spec
            };
            if let Err(CaseError::Mismatch(e)) = run_spec(&fault_spec, BugHook::None) {
                panic!(
                    "case {i} (seed {:#x}) fault phase mismatched: {e}",
                    spec.seed
                );
            }
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CaseSpec {
            seed: 0xDEAD_BEEF_0042,
            max_packets: 20,
            max_entries: 8,
            max_array: 4,
            max_tables: 3,
            fault: Some(soak_knobs()),
            migrate: Some(MigrateKnobs {
                strategy_sel: 2,
                at_pm: 500,
            }),
            fabric: false,
        };
        let text = serde_json::to_string(&spec_to_value(&spec)).unwrap();
        let back = spec_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        let fab = CaseSpec {
            migrate: None,
            fabric: true,
            ..spec
        };
        let text = serde_json::to_string(&spec_to_value(&fab)).unwrap();
        assert_eq!(
            spec_from_value(&serde_json::from_str(&text).unwrap()).unwrap(),
            fab
        );
        let clean = CaseSpec {
            fault: None,
            migrate: None,
            ..spec
        };
        let text = serde_json::to_string(&spec_to_value(&clean)).unwrap();
        assert_eq!(
            spec_from_value(&serde_json::from_str(&text).unwrap()).unwrap(),
            clean
        );
    }

    #[test]
    fn migrate_cases_pass_clean_and_under_faults() {
        let cfg = RunConfig {
            migrate: true,
            ..tiny_cfg(0x716_AB1E, 4, BugHook::None)
        };
        for i in 0..4 {
            let spec = case_spec(&cfg, i);
            assert!(spec.migrate.is_some());
            if let Err(CaseError::Mismatch(e)) = run_spec(&spec, BugHook::None) {
                panic!("migrate case {i} (seed {:#x}) mismatched: {e}", spec.seed);
            }
            let fault_spec = CaseSpec {
                fault: Some(soak_knobs()),
                ..spec
            };
            if let Err(CaseError::Mismatch(e)) = run_spec(&fault_spec, BugHook::None) {
                panic!(
                    "migrate case {i} (seed {:#x}) fault phase mismatched: {e}",
                    spec.seed
                );
            }
        }
    }

    #[test]
    fn fabric_cases_pass_clean_and_under_faults() {
        let cfg = RunConfig {
            fabric: true,
            ..tiny_cfg(0xFAB_C0DE, 4, BugHook::None)
        };
        for i in 0..4 {
            let spec = case_spec(&cfg, i);
            assert!(spec.fabric && spec.migrate.is_none());
            if let Err(CaseError::Mismatch(e)) = run_spec(&spec, BugHook::None) {
                panic!("fabric case {i} (seed {:#x}) mismatched: {e}", spec.seed);
            }
            let fault_spec = CaseSpec {
                fault: Some(soak_knobs()),
                ..spec
            };
            if let Err(CaseError::Mismatch(e)) = run_spec(&fault_spec, BugHook::None) {
                panic!(
                    "fabric case {i} (seed {:#x}) fault phase mismatched: {e}",
                    spec.seed
                );
            }
        }
    }

    #[test]
    fn fabric_mode_catches_misrouted_boundary_keys() {
        // Mis-steering a single boundary key must surface as a register
        // mismatch or a leak onto a non-owner leaf, and the shrinker must
        // keep a fabric spec that still reproduces it. A workload only
        // trips the bug when some packet's `idx` hits the flipped key, so
        // scan a few cases.
        let cfg = RunConfig {
            fabric: true,
            ..tiny_cfg(0xFAB_BAD5EED, 24, BugHook::MisrouteBoundaryKey)
        };
        let mut caught = None;
        for i in 0..24 {
            let spec = case_spec(&cfg, i);
            if let Err(CaseError::Mismatch(e)) = run_spec(&spec, BugHook::MisrouteBoundaryKey) {
                caught = Some((spec, e));
                break;
            }
        }
        let (spec, err) = caught.expect("misrouted boundary key must surface within a few cases");
        assert!(
            err.contains("fabric"),
            "sabotage must be flagged on the fabric target: {err}"
        );
        let (shrunk, final_err) = shrink(&spec, BugHook::MisrouteBoundaryKey, err);
        assert!(shrunk.fabric, "shrinking must preserve the fabric mode");
        assert!(matches!(
            run_spec(&shrunk, BugHook::MisrouteBoundaryKey),
            Err(CaseError::Mismatch(_))
        ));
        assert!(!final_err.is_empty());
        assert!(shrunk.max_packets <= spec.max_packets);
        // The identical spec is clean without the sabotage.
        assert!(!matches!(
            run_spec(&shrunk, BugHook::None),
            Err(CaseError::Mismatch(_))
        ));
    }

    #[test]
    fn migrate_mode_catches_sabotage() {
        // The swapped-ALU bug must still be visible through a migrated run:
        // the register-state comparison flags it and the shrinker keeps a
        // reproducing spec.
        let cfg = RunConfig {
            migrate: true,
            ..tiny_cfg(0xBAD_5EED, 8, BugHook::SwapAddMax)
        };
        let mut caught = None;
        for i in 0..8 {
            let spec = case_spec(&cfg, i);
            if let Err(CaseError::Mismatch(e)) = run_spec(&spec, BugHook::SwapAddMax) {
                caught = Some((spec, e));
                break;
            }
        }
        let (spec, err) = caught.expect("sabotage must surface within a few migrate cases");
        let (shrunk, final_err) = shrink(&spec, BugHook::SwapAddMax, err);
        assert!(matches!(
            run_spec(&shrunk, BugHook::SwapAddMax),
            Err(CaseError::Mismatch(_))
        ));
        assert!(!final_err.is_empty());
        assert!(shrunk.max_packets <= spec.max_packets);
    }

    #[test]
    fn forensics_catches_lost_drop_records() {
        // A target that drops packets without recording them must not pass:
        // arm the forensic-loss sabotage and run under a fault schedule
        // (corrupted frames guarantee drops), expecting the journey
        // tracer's forensics↔counter cross-check to flag the skew. The
        // check is skipped when the registry or tracer is env-disabled, so
        // a hostile environment can only make this test vacuous, not red —
        // guard against that by requiring both to be on.
        let m = MetricsRegistry::from_env();
        let t = adcp_sim::trace::JourneyTracer::from_env(true, 8);
        if !m.enabled() || !t.is_enabled() {
            eprintln!("metrics/trace disabled via env; skipping");
            return;
        }
        let cfg = tiny_cfg(0xF04E_51C5, 12, BugHook::LoseDropForensics);
        let mut caught = None;
        for i in 0..12 {
            let spec = CaseSpec {
                fault: Some(soak_knobs()),
                ..case_spec(&cfg, i)
            };
            match run_spec(&spec, BugHook::LoseDropForensics) {
                Err(CaseError::Mismatch(e)) => {
                    caught = Some(e);
                    break;
                }
                _ => continue,
            }
        }
        let err = caught.expect("lost drop forensics must surface within a few fault cases");
        assert!(
            err.contains("drop forensics disagree"),
            "wrong failure: {err}"
        );
        // And the same specs are clean without the sabotage.
        let spec = CaseSpec {
            fault: Some(soak_knobs()),
            ..case_spec(&cfg, 0)
        };
        assert!(!matches!(
            run_spec(&spec, BugHook::None),
            Err(CaseError::Mismatch(_))
        ));
    }

    #[test]
    fn int_honesty_catches_a_lying_stamp() {
        // A datapath whose INT stamps flatter the TM queue depth must not
        // pass: arm the lying-stamp sabotage, expecting the INT↔tracer
        // honesty check to flag the skew, then shrink the witness and
        // prove the failure artifact replays. The check is skipped when
        // the tracer, the registry, or INT itself is env-disabled, so a
        // hostile environment can only make this test vacuous, not red —
        // guard against that by requiring all three to be on.
        let m = MetricsRegistry::from_env();
        let t = adcp_sim::trace::JourneyTracer::from_env(true, 8);
        let k = adcp_sim::int::IntKnob::from_env(true);
        if !m.enabled() || !t.is_enabled() || !k.on() {
            eprintln!("metrics/trace/int disabled via env; skipping");
            return;
        }
        let cfg = tiny_cfg(0x11E_57A4, 8, BugHook::LieIntStamp);
        let mut caught = None;
        for i in 0..8 {
            let spec = case_spec(&cfg, i);
            match run_spec(&spec, BugHook::LieIntStamp) {
                Err(CaseError::Mismatch(e)) => {
                    caught = Some((spec, e));
                    break;
                }
                _ => continue,
            }
        }
        let (spec, err) = caught.expect("a lying INT stamp must surface within a few cases");
        assert!(err.contains("INT stamp"), "wrong failure: {err}");
        // The shrunk witness still fails, for the same reason class.
        let (shrunk, final_err) = shrink(&spec, BugHook::LieIntStamp, err);
        assert!(final_err.contains("INT stamp"), "{final_err}");
        assert!(matches!(
            run_spec(&shrunk, BugHook::LieIntStamp),
            Err(CaseError::Mismatch(_))
        ));
        // The artifact replays to the same verdict through the file.
        let dir = std::env::temp_dir().join(format!("adcp_int_lie_{}", std::process::id()));
        let name = write_artifact(&dir, &spec, &shrunk, &final_err).expect("artifact writes");
        let verdict = replay(&dir.join(&name), BugHook::LieIntStamp);
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(verdict, Err(CaseError::Mismatch(_))));
        // And the same spec is clean without the sabotage.
        assert!(!matches!(
            run_spec(&shrunk, BugHook::None),
            Err(CaseError::Mismatch(_))
        ));
    }
}
