//! E-D1: the serving-daemon soak matrix (see `EXPERIMENTS.md`).
//!
//! Runs the compressed soak choreography — diurnal + MMPP open-loop
//! traffic through the drop/corrupt/delay fault schedule with the
//! SLO-driven autoscaler live — across both serving applications and
//! central worker counts 1/2/4, and distills each run's [`SoakReport`]
//! into one row. Two properties carry the experiment:
//!
//! * every run must end **healthy**: forensics ≡ registry with zero
//!   drift, serving-oracle clean, packet conservation exact,
//!   `misroutes == 0`, and the autoscaler must have scaled up *and*
//!   down at least once; and
//! * within an app, the full report must be **byte-identical across
//!   worker counts** — the wall-clock execution strategy is not allowed
//!   to be observable.

use adcpd::daemon::{Daemon, DaemonCfg, SoakReport};
use adcpd::menu::ServeApp;
use serde::Serialize;

/// One soak run distilled for the E-D1 table.
#[derive(Debug, Clone, Serialize)]
pub struct SoakRow {
    /// Serving application.
    pub app: String,
    /// Central worker threads the run executed with.
    pub workers: usize,
    /// Simulated time served, ns.
    pub sim_ns: u64,
    /// Open-loop arrivals generated.
    pub arrivals: u64,
    /// Responses delivered.
    pub delivered: u64,
    /// Lifetime p99 latency, ns.
    pub p99_ns: u64,
    /// SLO-violating slices over the run.
    pub violations: u64,
    /// Autoscaler actions: up / down / skew.
    pub scale_ups: u64,
    /// Scale-down actions.
    pub scale_downs: u64,
    /// Skew-driven rebalances.
    pub skew_rebalances: u64,
    /// Epoch-consistency violations (must be 0).
    pub misroutes: u64,
    /// All invariants held at drain.
    pub healthy: bool,
    /// Report bytes match the workers=1 run of the same app.
    pub identical_across_workers: bool,
}

fn row(app: ServeApp, r: &SoakReport, workers: usize, identical: bool) -> SoakRow {
    SoakRow {
        app: app.name().to_string(),
        workers,
        sim_ns: r.sim_ns,
        arrivals: r.arrivals,
        delivered: r.delivered,
        p99_ns: r.slo.p99_ns,
        violations: r.slo.violations,
        scale_ups: r.scale_ups,
        scale_downs: r.scale_downs,
        skew_rebalances: r.skew_rebalances,
        misroutes: r.misroutes,
        healthy: r.healthy,
        identical_across_workers: identical,
    }
}

/// Run the E-D1 matrix: `{shardcount, shardmax} × workers {1, 2, 4}`,
/// quick (compressed) or full (4× sim time). Interruptible at run
/// boundaries via [`crate::shutdown`]; completed rows are still returned.
pub fn exp_soak(quick: bool, seed: u64) -> Vec<SoakRow> {
    let mut rows = Vec::new();
    'apps: for app in [ServeApp::ShardCount, ServeApp::ShardMax] {
        let mut baseline_json: Option<String> = None;
        for workers in [1usize, 2, 4] {
            if crate::shutdown::requested() {
                break 'apps;
            }
            let mut cfg = if quick {
                DaemonCfg::soak_quick(seed)
            } else {
                DaemonCfg::soak(seed)
            };
            cfg.app = app;
            let r = Daemon::new(cfg.with_workers(workers))
                .expect("daemon builds")
                .run();
            let json = r.to_json();
            let identical = match &baseline_json {
                None => {
                    baseline_json = Some(json);
                    true
                }
                Some(base) => *base == json,
            };
            rows.push(row(app, &r, workers, identical));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_healthy_and_worker_invariant() {
        let rows = exp_soak(true, 7);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.healthy, "{}/{} unhealthy", r.app, r.workers);
            assert!(
                r.identical_across_workers,
                "{}/{} diverged",
                r.app, r.workers
            );
            assert!(
                r.scale_ups >= 1 && r.scale_downs >= 1,
                "{} loop never closed",
                r.app
            );
            assert_eq!(r.misroutes, 0);
        }
    }
}
