//! Regenerators for the paper's figures.
//!
//! Figures 1 and 4 are the architectures themselves (exercised by every
//! run); Figures 2, 3, 5 and 6 each make a claim we measure.

use adcp_apps::driver::TargetKind;
use adcp_apps::{kvcache, paramserv};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{compile, CompileOptions, TargetModel};
use adcp_sim::packet::PortId;
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::gradient::GradientWorkload;
use serde::Serialize;

// -------------------------------------------------------------------
// Figure 2 — coflow convergence restrictions
// -------------------------------------------------------------------

/// One Fig. 2 row: what it costs each variant to converge one coflow and
/// distribute its results.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Architecture variant.
    pub target: String,
    /// Did the aggregation produce correct results?
    pub correct: bool,
    /// Ports the coflow's results can reach.
    pub reachable_ports: u16,
    /// Total switch ports.
    pub total_ports: u16,
    /// Extra pipeline traversals per packet (the recirculation tax).
    pub recirc_per_packet: f64,
    /// Makespan, ns.
    pub makespan_ns: f64,
    /// p99 latency, ns.
    pub p99_ns: f64,
}

/// Measure the Fig. 2 claim: a coflow arriving on every pipeline must
/// converge and then reach arbitrary ports. Width is pinned to 1 on all
/// variants so only the *convergence* cost differs (Fig. 6 isolates
/// arrays).
pub fn fig2(quick: bool) -> Vec<Fig2Row> {
    fig2_impl(quick, true)
}

fn fig2_impl(quick: bool, parallel: bool) -> Vec<Fig2Row> {
    let cfg = paramserv::ParamServerCfg {
        workers: 8,
        model_size: if quick { 64 } else { 256 },
        width: 1,
        seed: 2,
        central_workers: 1,
    };
    let kinds = vec![
        TargetKind::Adcp,
        TargetKind::RmtRecirc,
        TargetKind::RmtPinned,
    ];
    crate::par::map_points(parallel, kinds, |kind| {
        // Force scalar on ADCP too for the like-for-like convergence
        // comparison.
        let r = paramserv::run(kind, &cfg);
        let (reachable, total) = match kind {
            // Egress pinning: only the pinned pipeline's ports.
            TargetKind::RmtPinned => {
                let t = TargetModel::rmt_12t();
                (t.ports_per_pipe, t.ports)
            }
            TargetKind::RmtRecirc => {
                let t = TargetModel::rmt_12t();
                (t.ports, t.ports)
            }
            TargetKind::Adcp => {
                let t = TargetModel::adcp_reference();
                (t.ports, t.ports)
            }
        };
        Fig2Row {
            target: kind.label().into(),
            correct: r.correct,
            reachable_ports: reachable,
            total_ports: total,
            recirc_per_packet: r.recirc_passes as f64 / r.injected.max(1) as f64,
            makespan_ns: r.makespan_ns,
            p99_ns: r.latency.p99_ns,
        }
    })
}

// -------------------------------------------------------------------
// Figure 3 — replication due to scalar processing
// -------------------------------------------------------------------

/// One Fig. 3 row: the cost of a `width`-keyed table on each target.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Keys per packet.
    pub width: u16,
    /// Physical table copies on RMT.
    pub rmt_replicas: u16,
    /// RMT table memory for 1024 entries, KiB.
    pub rmt_mem_kib: u64,
    /// ADCP table memory for the same table, KiB.
    pub adcp_mem_kib: u64,
    /// Largest cache that compiles on RMT, entries.
    pub rmt_max_entries: u32,
    /// Largest cache that compiles on a dRMT-style pooled-memory target.
    /// Bigger than RMT's (no per-stage bound) but still divided by the
    /// replication factor — pooling does not lift the Fig. 3 tax.
    pub drmt_max_entries: u32,
    /// Largest cache that compiles on ADCP, entries.
    pub adcp_max_entries: u32,
    /// ADCP/RMT capacity ratio (≈ width).
    pub capacity_ratio: f64,
}

/// Compile the kv-cache table at several widths on both targets and read
/// the replication factors and memory budgets off the placements.
pub fn fig3() -> Vec<Fig3Row> {
    let rmt = TargetModel::rmt_12t();
    let drmt = TargetModel::drmt_12t();
    let adcp = TargetModel::adcp_reference();
    crate::par::par_map(vec![1u16, 2, 4, 8, 16], |width| {
        let prog = kvcache::program(width, 1024, PortId(0));
        let p_rmt = compile(&prog, &rmt, CompileOptions::default())
            .expect("1024-entry cache fits both targets");
        let p_adcp = compile(&prog, &adcp, CompileOptions::default()).expect("fits");
        let cache_rmt = p_rmt
            .ingress
            .stages
            .iter()
            .flat_map(|s| &s.tables)
            .find(|t| t.name == "cache")
            .expect("cache placed");
        let cache_adcp = p_adcp
            .ingress
            .stages
            .iter()
            .flat_map(|s| &s.tables)
            .find(|t| t.name == "cache")
            .expect("cache placed");
        let rmt_max = kvcache::max_cache_entries(&rmt, width);
        let drmt_max = kvcache::max_cache_entries(&drmt, width);
        let adcp_max = kvcache::max_cache_entries(&adcp, width);
        Fig3Row {
            width,
            rmt_replicas: cache_rmt.replicas,
            rmt_mem_kib: cache_rmt.mem_bits / 8 / 1024,
            adcp_mem_kib: cache_adcp.mem_bits / 8 / 1024,
            rmt_max_entries: rmt_max,
            drmt_max_entries: drmt_max,
            adcp_max_entries: adcp_max,
            capacity_ratio: adcp_max as f64 / rmt_max.max(1) as f64,
        }
    })
}

/// Fig. 3 follow-through: the hit rate consequence under a Zipf workload.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3HitRow {
    /// Architecture.
    pub target: String,
    /// Keys per packet.
    pub width: u16,
    /// Cache entries installed.
    pub cache_entries: u32,
    /// Observed lane hit rate.
    pub hit_rate: f64,
}

/// Measure cache hit rates at width 8 on both targets.
pub fn fig3_hit_rates(quick: bool) -> Vec<Fig3HitRow> {
    let cfg = kvcache::KvCacheCfg {
        requests: if quick { 300 } else { 2_000 },
        ..Default::default()
    };
    crate::par::par_map(vec![TargetKind::Adcp, TargetKind::RmtPinned], |kind| {
        let out = kvcache::run(kind, &cfg);
        Fig3HitRow {
            target: kind.label().into(),
            width: cfg.width,
            cache_entries: out.cache_entries,
            hit_rate: out.hit_rate,
        }
    })
}

// -------------------------------------------------------------------
// Figure 5 — independent processing and forwarding via the global area
// -------------------------------------------------------------------

/// One Fig. 5 row: a central pipeline's share of the coflow work, and the
/// forwarding freedom of its results.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Central pipeline index.
    pub central_pipe: usize,
    /// Packets the pipeline processed (hash placement balance).
    pub busy_cycles: u64,
    /// Distinct egress ports reached by results from this run (same for
    /// every row — the point is it equals *all* worker ports).
    pub distinct_output_ports: usize,
}

/// Run the ADCP parameter server and read placement balance + output
/// freedom directly off the switch.
pub fn fig5(quick: bool) -> Vec<Fig5Row> {
    let cfg = paramserv::ParamServerCfg {
        workers: 8,
        model_size: if quick { 256 } else { 1024 },
        width: 16,
        seed: 3,
        central_workers: 1,
    };
    let target = TargetModel::adcp_reference();
    let worker_ports: Vec<PortId> = (0..cfg.workers as u16).map(PortId).collect();
    let prog = paramserv::program(
        &cfg,
        TargetKind::Adcp,
        target.central_pipes as u32,
        &worker_ports,
        PortId(cfg.workers as u16),
    );
    let mut sw = AdcpSwitch::new(
        prog,
        target,
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .expect("compiles");
    let wl = GradientWorkload::new(cfg.workers, cfg.model_size, cfg.width);
    let mut rng = SimRng::seed_from(cfg.seed);
    for (i, ch) in wl.all_chunks_shuffled(&mut rng).iter().enumerate() {
        let mut data = Vec::with_capacity(8 + ch.values.len() * 4);
        data.extend_from_slice(&(ch.worker as u16).to_be_bytes());
        data.extend_from_slice(&ch.base_slot.to_be_bytes());
        data.extend_from_slice(&0u16.to_be_bytes());
        for v in &ch.values {
            data.extend_from_slice(&v.to_be_bytes());
        }
        sw.inject(
            PortId(ch.worker as u16),
            adcp_sim::packet::Packet::new(
                i as u64,
                adcp_sim::packet::FlowId(ch.worker as u64),
                data,
            ),
            SimTime::ZERO,
        );
    }
    sw.run_until_idle();
    let delivered = sw.take_delivered();
    let mut ports: Vec<u16> = delivered.iter().map(|d| d.port.0).collect();
    ports.sort_unstable();
    ports.dedup();
    (0..sw.num_central())
        .map(|c| Fig5Row {
            central_pipe: c,
            busy_cycles: sw.central_busy_cycles(c),
            distinct_output_ports: ports.len(),
        })
        .collect()
}

// -------------------------------------------------------------------
// Figure 6 — array matching lifts the key rate
// -------------------------------------------------------------------

/// One Fig. 6 row: analytic and measured key rates at an array width.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Keys per packet.
    pub width: u16,
    /// Analytic keys/s (the §3.2 model at RMT's 5.5 Gpps cap).
    pub analytic_keys_per_sec: f64,
    /// Measured elements/s through the simulated ADCP.
    pub measured_elements_per_sec: f64,
    /// Measured speedup over width 1.
    pub measured_speedup: f64,
}

/// Sweep array widths on the simulated ADCP cache and compare to the
/// analytic model's shape.
pub fn fig6(quick: bool) -> Vec<Fig6Row> {
    fig6_impl(quick, true)
}

fn fig6_impl(quick: bool, parallel: bool) -> Vec<Fig6Row> {
    let widths: [u16; 5] = [1, 2, 4, 8, 16];
    let analytic =
        adcp_analytic::keyrate::width_sweep(5.5e9, 12_800.0, 8, &widths.map(|w| w as u32));
    // Each width is an independent run; the speedup baseline (the width-1
    // row) is only known once all points are back, so it is applied after
    // the map rather than threaded through it.
    let measured = crate::par::map_points(parallel, widths.to_vec(), |width| {
        kvcache::run(
            TargetKind::Adcp,
            &kvcache::KvCacheCfg {
                width,
                requests: if quick { 300 } else { 1_500 },
                ..Default::default()
            },
        )
        .report
        .elements_per_sec
    });
    let base = measured[0];
    widths
        .iter()
        .zip(analytic)
        .zip(measured)
        .map(|((&width, a), meas)| Fig6Row {
            width,
            analytic_keys_per_sec: a.keys_per_sec,
            measured_elements_per_sec: meas,
            measured_speedup: meas / base.max(1.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shapes_hold() {
        let rows = fig2(true);
        assert_eq!(rows.len(), 3);
        let adcp = &rows[0];
        let recirc = &rows[1];
        let pinned = &rows[2];
        assert!(rows.iter().all(|r| r.correct));
        // ADCP: full reach, no recirculation.
        assert_eq!(adcp.reachable_ports, adcp.total_ports);
        assert_eq!(adcp.recirc_per_packet, 0.0);
        // RMT recirc: full reach but ~1 extra pass per packet.
        assert_eq!(recirc.reachable_ports, recirc.total_ports);
        assert!(recirc.recirc_per_packet > 0.9);
        // RMT pinned: no recirculation but restricted reach.
        assert_eq!(pinned.recirc_per_packet, 0.0);
        assert!(pinned.reachable_ports < pinned.total_ports);
    }

    #[test]
    fn fig3_replication_grows_with_width() {
        let rows = fig3();
        for r in &rows {
            assert_eq!(r.rmt_replicas, r.width, "one copy per lane on RMT");
            assert_eq!(
                r.rmt_mem_kib,
                r.adcp_mem_kib * r.width as u64,
                "memory scales with replicas"
            );
            if r.width > 1 {
                assert!(
                    r.capacity_ratio > r.width as f64 * 0.7,
                    "capacity ratio ~width: {r:?}"
                );
                // dRMT pooling raises absolute capacity but the width-w
                // division survives: drmt(w) ~ drmt(1)/w.
                assert!(r.drmt_max_entries > r.rmt_max_entries);
            }
        }
        let d1 = rows[0].drmt_max_entries as f64;
        let d8 = rows[3].drmt_max_entries as f64;
        assert!(
            (d1 / d8 / 8.0 - 1.0).abs() < 0.1,
            "dRMT still divides by width: {d1} vs {d8}"
        );
    }

    #[test]
    fn fig5_balanced_and_unrestricted() {
        let rows = fig5(true);
        assert_eq!(rows.len(), 4, "adcp_reference has 4 central pipes");
        // Hash placement touches every central pipeline.
        assert!(rows.iter().all(|r| r.busy_cycles > 0), "{rows:?}");
        // Results reached all 8 worker ports.
        assert!(rows.iter().all(|r| r.distinct_output_ports == 8));
    }

    /// The parallel sweeps must be bit-identical to their sequential
    /// reference: every point owns its switch and seeded RNG, so thread
    /// scheduling cannot leak into the rows.
    #[test]
    fn fig_sweeps_par_matches_seq() {
        let par = serde_json::to_string(&fig2_impl(true, true)).unwrap();
        let seq = serde_json::to_string(&fig2_impl(true, false)).unwrap();
        assert_eq!(par, seq, "fig2 rows must not depend on scheduling");
        let par = serde_json::to_string(&fig6_impl(true, true)).unwrap();
        let seq = serde_json::to_string(&fig6_impl(true, false)).unwrap();
        assert_eq!(par, seq, "fig6 rows must not depend on scheduling");
    }

    #[test]
    fn fig6_order_of_magnitude() {
        let rows = fig6(true);
        let last = rows.last().unwrap();
        assert_eq!(last.width, 16);
        assert!(
            last.measured_speedup > 8.0,
            "§3.2 promises ~an order of magnitude; got {:.1}x",
            last.measured_speedup
        );
        // Analytic and measured speedups agree in shape (within 2x).
        for r in &rows {
            let analytic_speedup = r.analytic_keys_per_sec / rows[0].analytic_keys_per_sec;
            assert!(
                r.measured_speedup > analytic_speedup / 2.0
                    && r.measured_speedup < analytic_speedup * 2.0,
                "width {}: measured {:.1}x vs analytic {:.1}x",
                r.width,
                r.measured_speedup,
                analytic_speedup
            );
        }
    }
}
