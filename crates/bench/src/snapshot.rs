//! Perf-trajectory snapshot: a fixed throughput suite behind the
//! `bench_snapshot` binary.
//!
//! Runs every Table 1 application on ADCP and on its RMT lowering, measures
//! *wall-clock* time around each simulation, and reports simulated packets
//! per wall-second — i.e. how fast the simulator itself chews through
//! events, the number the hot-path work in this repo is trying to move.
//! `bench_snapshot` writes the rows to `BENCH_<date>.json` so successive
//! PRs accumulate a comparable perf history.

use adcp_apps::driver::{AppReport, TargetKind};
use adcp_apps::{
    dbshuffle, ddos, flowlet, graphmine, groupcomm, kvcache, migrate, netlock, paramserv,
};
use serde::Serialize;
use std::time::Instant;

/// One app × target throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotRow {
    /// Application name.
    pub app: String,
    /// Target label (`adcp`, `rmt/recirc`, `rmt/pinned`).
    pub target: String,
    /// Packets injected into the switch during the run.
    pub injected: u64,
    /// Packets delivered by the switch.
    pub delivered: u64,
    /// Median wall-clock time over the measurement repetitions (after one
    /// untimed warmup), milliseconds.
    pub wall_ms: f64,
    /// Simulated packets (injected) processed per wall-clock second, from
    /// the median repetition.
    pub sim_pkts_per_wall_sec: f64,
    /// Measurement spread: `(max - min) / median` over the timed
    /// repetitions, percent. Large values flag a noisy point whose
    /// `wall_ms` deserves suspicion.
    pub spread_pct: f64,
    /// Whether the app verified its own output during the measured run.
    pub correct: bool,
}

/// The slice of a run the snapshot suite actually measures — lets the
/// suite mix Table 1 app reports with fabric demo reports.
struct Measured {
    target: String,
    injected: u64,
    delivered: u64,
    correct: bool,
}

impl From<AppReport> for Measured {
    fn from(r: AppReport) -> Self {
        Measured {
            target: r.target,
            injected: r.injected,
            delivered: r.delivered,
            correct: r.correct,
        }
    }
}

type Job = (
    &'static str,
    TargetKind,
    Box<dyn Fn() -> Measured + Send + Sync>,
);

fn suite_jobs(quick: bool) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();

    let ps = if quick {
        paramserv::ParamServerCfg {
            workers: 4,
            model_size: 64,
            width: 16,
            seed: 1,
            central_workers: 1,
        }
    } else {
        paramserv::ParamServerCfg::default()
    };
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let ps = ps.clone();
        jobs.push((
            "paramserv",
            k,
            Box::new(move || paramserv::run(k, &ps).into()),
        ));
    }

    let mut db = dbshuffle::DbShuffleCfg::default();
    if quick {
        db.workload.rows_per_mapper = 150;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let db = db.clone();
        jobs.push((
            "dbshuffle",
            k,
            Box::new(move || dbshuffle::run(k, &db).into()),
        ));
    }

    let mut gm = graphmine::GraphMineCfg::default();
    if quick {
        gm.workload.supersteps = 5;
        gm.workload.edges = 3000;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let gm = gm.clone();
        jobs.push((
            "graphmine",
            k,
            Box::new(move || graphmine::run(k, &gm).into()),
        ));
    }

    // Group communication has no central state; its RMT lowering is pinned.
    let mut gc = groupcomm::GroupCommCfg::default();
    if quick {
        gc.packets = 120;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        let gc = gc.clone();
        jobs.push((
            "groupcomm",
            k,
            Box::new(move || groupcomm::run(k, &gc).into()),
        ));
    }

    let mut nl = netlock::NetLockCfg::default();
    if quick {
        nl.rounds = 3;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let nl = nl.clone();
        jobs.push(("netlock", k, Box::new(move || netlock::run(k, &nl).into())));
    }

    let mut kv = kvcache::KvCacheCfg::default();
    if quick {
        kv.requests = 300;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        let kv = kv.clone();
        jobs.push((
            "kvcache",
            k,
            Box::new(move || kvcache::run(k, &kv).report.into()),
        ));
    }

    // Live repartitioning: the ADCP run includes a mid-workload migration
    // (controller + state copy on the event loop), so this point tracks the
    // control-plane overhead too.
    let mut pm = migrate::MigrateCfg::default();
    if quick {
        pm.packets = 800;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let pm = pm.clone();
        jobs.push((
            "partmigrate",
            k,
            Box::new(move || migrate::run(k, &pm).report.into()),
        ));
    }

    // The TE/security workloads (ROADMAP item 4). Full mode runs a
    // million live flows — the scale the paged register files and the
    // O(1) Zipf sampler exist for; quick keeps the same programs at
    // sanity size.
    let fl = if quick {
        flowlet::LdfCfg {
            flows: 256,
            pkts: 1_500,
            ..Default::default()
        }
    } else {
        flowlet::LdfCfg {
            flows: 1_000_000,
            pkts: 40_000,
            ..Default::default()
        }
    };
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let fl = fl.clone();
        jobs.push((
            "flowlet-ldf",
            k,
            Box::new(move || flowlet::run(k, &fl).report.into()),
        ));
    }

    let dd = if quick {
        ddos::DdosCfg {
            flows: 4_000,
            attackers: 4,
            pkts: 2_000,
            cool_pkts: 1_000,
            window_pkts: 200,
            ..Default::default()
        }
    } else {
        ddos::DdosCfg {
            flows: 1_000_000,
            attackers: 32,
            pkts: 40_000,
            cool_pkts: 10_000,
            window_pkts: 2_000,
            ..Default::default()
        }
    };
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let dd = dd.clone();
        jobs.push(("ddos", k, Box::new(move || ddos::run(k, &dd).report.into())));
    }

    // The leaf–spine fabric demo: six event loops coupled by modeled
    // links, the placement pass, and cross-switch steering. Tracks how
    // fast the simulator moves packets through a whole topology rather
    // than one device.
    let fab_pkts = if quick { 400 } else { 4_000 };
    jobs.push((
        "fabric",
        TargetKind::Adcp,
        Box::new(move || {
            let r = adcp_fabric::run_demo(7, fab_pkts, adcp_fabric::FabricConfig::default());
            Measured {
                target: "fabric/2x4".into(),
                injected: r.injected,
                delivered: r.delivered,
                correct: r.correct,
            }
        }),
    ));

    // The serving daemon in steady state: open-loop diurnal+burst traffic,
    // per-slice SLO scoring, and the closed autoscaling loop all running —
    // how fast the simulator serves when the control plane is live.
    let daemon_slices = if quick { 64 } else { 256 };
    jobs.push((
        "adcpd",
        TargetKind::Adcp,
        Box::new(move || {
            let mut cfg = adcpd::daemon::DaemonCfg::soak_quick(7);
            cfg.slices = daemon_slices;
            let r = adcpd::daemon::Daemon::new(cfg)
                .expect("daemon builds")
                .run();
            Measured {
                target: "daemon/serving".into(),
                injected: r.injected,
                delivered: r.delivered,
                correct: r.healthy,
            }
        }),
    ));
    jobs
}

/// Run the fixed suite. Each point runs once untimed (warmup: page in
/// code, fault the allocator, settle caches) and then `reps` timed
/// repetitions; the reported wall time is the **median of the fastest
/// third** of the sorted repetitions and the row carries that core's
/// min-to-max spread so noisy points are visible in the recorded
/// trajectory. Timing noise on a busy host is one-sided — scheduling,
/// page faults, and frequency drift only ever *add* time — so the fastest
/// repetitions are the closest estimate of the true cost; the raw
/// min-to-max spread used to exceed 30% on sub-millisecond quick points
/// and made the CI `--check` guard vacuous. Quick mode also floors the
/// repetition count at 15 so the kept core holds several samples, and
/// keeps sampling (up to a hard cap) while the core's spread is still
/// above the 15% noise flag — host noise is bursty, and a fixed rep
/// count can land entirely inside one burst. The points are timed
/// **sequentially**: concurrent points contend for cores and that
/// contention showed up directly as spread, which is exactly the noise
/// this suite exists to keep out of the recorded trajectory.
pub fn run_suite(quick: bool, reps: u32) -> Vec<SnapshotRow> {
    let min_reps = if quick { reps.max(15) } else { reps.max(1) };
    // Quick points run in milliseconds, so re-sampling a noisy one is
    // cheap; full points run for seconds, so they get their fixed count.
    let cap_reps = if quick { min_reps.max(180) } else { min_reps };
    crate::par::seq_map(suite_jobs(quick), move |(app, _kind, job)| {
        let report = job(); // warmup, untimed
        let mut times_ns: Vec<u128> = (0..min_reps)
            .map(|_| {
                let t0 = Instant::now();
                job();
                t0.elapsed().as_nanos()
            })
            .collect();
        let (median_ns, spread) = loop {
            times_ns.sort_unstable();
            // Keep at least two samples (when available) so the spread
            // flag never degenerates to a vacuous 0% on low-rep runs.
            let core_len = (times_ns.len() / 3).max(2).min(times_ns.len());
            let core = &times_ns[..core_len];
            let median_ns = core[core.len() / 2];
            let spread = (core[core.len() - 1] - core[0]) as f64 / median_ns as f64;
            if spread <= 0.15 || times_ns.len() >= cap_reps as usize {
                break (median_ns, spread);
            }
            for _ in 0..5 {
                let t0 = Instant::now();
                job();
                times_ns.push(t0.elapsed().as_nanos());
            }
        };
        let wall_s = median_ns as f64 / 1e9;
        SnapshotRow {
            app: app.to_string(),
            target: report.target.clone(),
            injected: report.injected,
            delivered: report.delivered,
            wall_ms: wall_s * 1e3,
            sim_pkts_per_wall_sec: report.injected as f64 / wall_s,
            spread_pct: spread * 100.0,
            correct: report.correct,
        }
    })
}

/// One app × target instrumentation-overhead measurement: the same job
/// timed with one observability knob disabled and enabled.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Application name.
    pub app: String,
    /// Target label.
    pub target: String,
    /// Which knob was toggled: `"metrics"` or `"trace(sample=N)"`.
    pub knob: String,
    /// Median wall-clock with the knob off, milliseconds.
    pub wall_ms_off: f64,
    /// Median wall-clock with the knob on, milliseconds.
    pub wall_ms_on: f64,
    /// Overhead of instrumentation, percent (negative = within noise).
    pub overhead_pct: f64,
}

/// Time the suite with `var` set to `value`, restoring the caller's value
/// after. Both observability knobs (`ADCP_METRICS`, `ADCP_TRACE`) are read
/// at switch construction, so the variable must be set process-wide before
/// the pass; call only from the main thread.
fn suite_with_env(var: &str, value: &str, quick: bool, reps: u32) -> Vec<SnapshotRow> {
    let saved = std::env::var(var).ok();
    std::env::set_var(var, value);
    let rows = run_suite(quick, reps);
    match saved {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    rows
}

fn diff_rows(knob: &str, off: &[SnapshotRow], on: &[SnapshotRow]) -> (Vec<OverheadRow>, f64) {
    let rows: Vec<OverheadRow> = off
        .iter()
        .zip(on.iter())
        .map(|(o, n)| {
            debug_assert_eq!((&o.app, &o.target), (&n.app, &n.target));
            OverheadRow {
                app: o.app.clone(),
                target: o.target.clone(),
                knob: knob.to_string(),
                wall_ms_off: o.wall_ms,
                wall_ms_on: n.wall_ms,
                overhead_pct: (n.wall_ms / o.wall_ms - 1.0) * 100.0,
            }
        })
        .collect();
    let total_off: f64 = rows.iter().map(|r| r.wall_ms_off).sum();
    let total_on: f64 = rows.iter().map(|r| r.wall_ms_on).sum();
    (rows, (total_on / total_off - 1.0) * 100.0)
}

/// Self-profiling hook: time the suite twice — metrics registry off, then
/// on — and report the per-point and aggregate instrumentation overhead.
/// The target for the observability layer is **< 5 % aggregate**.
pub fn measure_overhead(quick: bool, reps: u32) -> (Vec<OverheadRow>, f64) {
    let off = suite_with_env("ADCP_METRICS", "off", quick, reps);
    let on = suite_with_env("ADCP_METRICS", "on", quick, reps);
    diff_rows("metrics", &off, &on)
}

/// Same self-profiling for the journey tracer: the suite timed with
/// `ADCP_TRACE=off` and then `ADCP_TRACE=<sample>`. Same **< 5 %
/// aggregate** target at the default production sampling rate (64).
pub fn measure_trace_overhead(quick: bool, reps: u32, sample: u64) -> (Vec<OverheadRow>, f64) {
    let off = suite_with_env("ADCP_TRACE", "off", quick, reps);
    let on = suite_with_env("ADCP_TRACE", &sample.to_string(), quick, reps);
    diff_rows(&format!("trace(sample={sample})"), &off, &on)
}

/// Same self-profiling for INT stamping: the suite timed with
/// `ADCP_INT=off` (the knob must be zero-cost on the datapath) and then
/// `ADCP_INT=on` (stamp every packet). Same **< 5 % aggregate** target —
/// stamping is a per-hop append into a pre-sized stack, not an alloc.
pub fn measure_int_overhead(quick: bool, reps: u32) -> (Vec<OverheadRow>, f64) {
    let off = suite_with_env("ADCP_INT", "off", quick, reps);
    let on = suite_with_env("ADCP_INT", "on", quick, reps);
    diff_rows("int", &off, &on)
}
/// Outcome of comparing one measured row against the checked-in baseline.
#[derive(Debug, Clone, Serialize)]
pub struct CheckRow {
    /// Application name.
    pub app: String,
    /// Target label.
    pub target: String,
    /// Baseline throughput, simulated packets per wall-second.
    pub baseline_pkts_per_sec: f64,
    /// Measured throughput this run.
    pub current_pkts_per_sec: f64,
    /// Relative change, percent (positive = faster than baseline).
    pub delta_pct: f64,
    /// Whether the row breached the regression threshold.
    pub regressed: bool,
}

/// Compare measured rows against a `bench_snapshot` baseline document
/// (the JSON written by `--write-baseline` / the daily `BENCH_<date>.json`).
/// A row regresses when its throughput falls more than `threshold_pct`
/// below the baseline's row for the same app × target. Rows present on
/// only one side are ignored — adding an app must not fail the guard —
/// but a baseline with no overlap at all is an error (wrong file).
pub fn check_against_baseline(
    rows: &[SnapshotRow],
    baseline_text: &str,
    threshold_pct: f64,
) -> Result<Vec<CheckRow>, String> {
    let doc = serde_json::from_str(baseline_text).map_err(|e| format!("baseline parse: {e:?}"))?;
    let base_rows = doc
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or("baseline has no rows array")?;
    let mut baseline: Vec<(String, String, f64)> = Vec::new();
    for r in base_rows {
        let (Some(app), Some(target), Some(pps)) = (
            r.get("app").and_then(|v| v.as_str()),
            r.get("target").and_then(|v| v.as_str()),
            r.get("sim_pkts_per_wall_sec").and_then(|v| v.as_f64()),
        ) else {
            return Err("baseline row missing app/target/sim_pkts_per_wall_sec".into());
        };
        baseline.push((app.to_string(), target.to_string(), pps));
    }
    let mut out = Vec::new();
    for row in rows {
        let Some((_, _, base)) = baseline
            .iter()
            .find(|(a, t, _)| *a == row.app && *t == row.target)
        else {
            continue;
        };
        let delta_pct = (row.sim_pkts_per_wall_sec - base) / base * 100.0;
        out.push(CheckRow {
            app: row.app.clone(),
            target: row.target.clone(),
            baseline_pkts_per_sec: *base,
            current_pkts_per_sec: row.sim_pkts_per_wall_sec,
            delta_pct,
            regressed: delta_pct < -threshold_pct,
        });
    }
    if out.is_empty() {
        return Err("baseline shares no app x target rows with this run".into());
    }
    Ok(out)
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_measures_every_point() {
        let rows = run_suite(true, 1);
        assert_eq!(rows.len(), 20);
        for r in &rows {
            assert!(r.wall_ms > 0.0, "{}/{} wall time", r.app, r.target);
            assert!(r.sim_pkts_per_wall_sec > 0.0, "{}/{} rate", r.app, r.target);
            assert!(r.injected > 0);
        }
        // Both architectures appear for every app, plus the fabric and
        // serving-daemon points.
        assert_eq!(rows.iter().filter(|r| r.target == "adcp").count(), 9);
        let fab = rows
            .iter()
            .find(|r| r.target == "fabric/2x4")
            .expect("fabric row present");
        assert!(fab.correct, "fabric demo must verify during measurement");
        let daemon = rows
            .iter()
            .find(|r| r.target == "daemon/serving")
            .expect("daemon row present");
        assert!(daemon.correct, "daemon must report healthy books");
    }

    #[test]
    fn date_is_well_formed() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        let year: u32 = d[..4].parse().unwrap();
        assert!((2020..2200).contains(&year), "{d}");
    }
}
