//! Perf-trajectory snapshot: a fixed throughput suite behind the
//! `bench_snapshot` binary.
//!
//! Runs every Table 1 application on ADCP and on its RMT lowering, measures
//! *wall-clock* time around each simulation, and reports simulated packets
//! per wall-second — i.e. how fast the simulator itself chews through
//! events, the number the hot-path work in this repo is trying to move.
//! `bench_snapshot` writes the rows to `BENCH_<date>.json` so successive
//! PRs accumulate a comparable perf history.

use adcp_apps::driver::{AppReport, TargetKind};
use adcp_apps::{dbshuffle, graphmine, groupcomm, kvcache, migrate, netlock, paramserv};
use serde::Serialize;
use std::time::Instant;

/// One app × target throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotRow {
    /// Application name.
    pub app: String,
    /// Target label (`adcp`, `rmt/recirc`, `rmt/pinned`).
    pub target: String,
    /// Packets injected into the switch during the run.
    pub injected: u64,
    /// Packets delivered by the switch.
    pub delivered: u64,
    /// Best wall-clock time over the measurement repetitions, milliseconds.
    pub wall_ms: f64,
    /// Simulated packets (injected) processed per wall-clock second.
    pub sim_pkts_per_wall_sec: f64,
    /// Whether the app verified its own output during the measured run.
    pub correct: bool,
}

type Job = (
    &'static str,
    TargetKind,
    Box<dyn Fn() -> AppReport + Send + Sync>,
);

fn suite_jobs(quick: bool) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();

    let ps = if quick {
        paramserv::ParamServerCfg {
            workers: 4,
            model_size: 64,
            width: 16,
            seed: 1,
        }
    } else {
        paramserv::ParamServerCfg::default()
    };
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let ps = ps.clone();
        jobs.push(("paramserv", k, Box::new(move || paramserv::run(k, &ps))));
    }

    let mut db = dbshuffle::DbShuffleCfg::default();
    if quick {
        db.workload.rows_per_mapper = 150;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let db = db.clone();
        jobs.push(("dbshuffle", k, Box::new(move || dbshuffle::run(k, &db))));
    }

    let mut gm = graphmine::GraphMineCfg::default();
    if quick {
        gm.workload.supersteps = 5;
        gm.workload.edges = 3000;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let gm = gm.clone();
        jobs.push(("graphmine", k, Box::new(move || graphmine::run(k, &gm))));
    }

    // Group communication has no central state; its RMT lowering is pinned.
    let mut gc = groupcomm::GroupCommCfg::default();
    if quick {
        gc.packets = 120;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        let gc = gc.clone();
        jobs.push(("groupcomm", k, Box::new(move || groupcomm::run(k, &gc))));
    }

    let mut nl = netlock::NetLockCfg::default();
    if quick {
        nl.rounds = 3;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let nl = nl.clone();
        jobs.push(("netlock", k, Box::new(move || netlock::run(k, &nl))));
    }

    let mut kv = kvcache::KvCacheCfg::default();
    if quick {
        kv.requests = 300;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        let kv = kv.clone();
        jobs.push(("kvcache", k, Box::new(move || kvcache::run(k, &kv).report)));
    }

    // Live repartitioning: the ADCP run includes a mid-workload migration
    // (controller + state copy on the event loop), so this point tracks the
    // control-plane overhead too.
    let mut pm = migrate::MigrateCfg::default();
    if quick {
        pm.packets = 800;
    }
    for k in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let pm = pm.clone();
        jobs.push((
            "partmigrate",
            k,
            Box::new(move || migrate::run(k, &pm).report),
        ));
    }
    jobs
}

/// Run the fixed suite. `reps` wall-clock repetitions per point (best-of);
/// the apps run in parallel across points but each point's repetitions are
/// timed individually on its worker thread.
pub fn run_suite(quick: bool, reps: u32) -> Vec<SnapshotRow> {
    let reps = reps.max(1);
    crate::par::par_map(suite_jobs(quick), move |(app, _kind, job)| {
        let mut best_ns = u128::MAX;
        let mut report = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = job();
            let ns = t0.elapsed().as_nanos();
            if ns < best_ns {
                best_ns = ns;
                report = Some(r);
            }
        }
        let report = report.expect("at least one rep ran");
        let wall_s = best_ns as f64 / 1e9;
        SnapshotRow {
            app: app.to_string(),
            target: report.target.clone(),
            injected: report.injected,
            delivered: report.delivered,
            wall_ms: wall_s * 1e3,
            sim_pkts_per_wall_sec: report.injected as f64 / wall_s,
            correct: report.correct,
        }
    })
}

/// One app × target instrumentation-overhead measurement: the same job
/// timed with one observability knob disabled and enabled.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Application name.
    pub app: String,
    /// Target label.
    pub target: String,
    /// Which knob was toggled: `"metrics"` or `"trace(sample=N)"`.
    pub knob: String,
    /// Best wall-clock with the knob off, milliseconds.
    pub wall_ms_off: f64,
    /// Best wall-clock with the knob on, milliseconds.
    pub wall_ms_on: f64,
    /// Overhead of instrumentation, percent (negative = within noise).
    pub overhead_pct: f64,
}

/// Time the suite with `var` set to `value`, restoring the caller's value
/// after. Both observability knobs (`ADCP_METRICS`, `ADCP_TRACE`) are read
/// at switch construction, so the variable must be set process-wide before
/// the pass; call only from the main thread.
fn suite_with_env(var: &str, value: &str, quick: bool, reps: u32) -> Vec<SnapshotRow> {
    let saved = std::env::var(var).ok();
    std::env::set_var(var, value);
    let rows = run_suite(quick, reps);
    match saved {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    rows
}

fn diff_rows(knob: &str, off: &[SnapshotRow], on: &[SnapshotRow]) -> (Vec<OverheadRow>, f64) {
    let rows: Vec<OverheadRow> = off
        .iter()
        .zip(on.iter())
        .map(|(o, n)| {
            debug_assert_eq!((&o.app, &o.target), (&n.app, &n.target));
            OverheadRow {
                app: o.app.clone(),
                target: o.target.clone(),
                knob: knob.to_string(),
                wall_ms_off: o.wall_ms,
                wall_ms_on: n.wall_ms,
                overhead_pct: (n.wall_ms / o.wall_ms - 1.0) * 100.0,
            }
        })
        .collect();
    let total_off: f64 = rows.iter().map(|r| r.wall_ms_off).sum();
    let total_on: f64 = rows.iter().map(|r| r.wall_ms_on).sum();
    (rows, (total_on / total_off - 1.0) * 100.0)
}

/// Self-profiling hook: time the suite twice — metrics registry off, then
/// on — and report the per-point and aggregate instrumentation overhead.
/// The target for the observability layer is **< 5 % aggregate**.
pub fn measure_overhead(quick: bool, reps: u32) -> (Vec<OverheadRow>, f64) {
    let off = suite_with_env("ADCP_METRICS", "off", quick, reps);
    let on = suite_with_env("ADCP_METRICS", "on", quick, reps);
    diff_rows("metrics", &off, &on)
}

/// Same self-profiling for the journey tracer: the suite timed with
/// `ADCP_TRACE=off` and then `ADCP_TRACE=<sample>`. Same **< 5 %
/// aggregate** target at the default production sampling rate (64).
pub fn measure_trace_overhead(quick: bool, reps: u32, sample: u64) -> (Vec<OverheadRow>, f64) {
    let off = suite_with_env("ADCP_TRACE", "off", quick, reps);
    let on = suite_with_env("ADCP_TRACE", &sample.to_string(), quick, reps);
    diff_rows(&format!("trace(sample={sample})"), &off, &on)
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_measures_every_point() {
        let rows = run_suite(true, 1);
        assert_eq!(rows.len(), 14);
        for r in &rows {
            assert!(r.wall_ms > 0.0, "{}/{} wall time", r.app, r.target);
            assert!(r.sim_pkts_per_wall_sec > 0.0, "{}/{} rate", r.app, r.target);
            assert!(r.injected > 0);
        }
        // Both architectures appear for every app.
        assert_eq!(rows.iter().filter(|r| r.target == "adcp").count(), 7);
    }

    #[test]
    fn date_is_well_formed() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        let year: u32 = d[..4].parse().unwrap();
        assert!((2020..2200).contains(&year), "{d}");
    }
}
