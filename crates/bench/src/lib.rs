//! # adcp-bench — the experiment harness
//!
//! Library behind the regenerator binaries (one per paper table/figure,
//! see `src/bin/`) and the criterion microbenches (`benches/`):
//!
//! * [`exp_tables`] — Table 1 (live application matrix), Tables 2/3
//!   (scaling arithmetic vs the paper's printed rows).
//! * [`exp_figs`] — Fig. 2 (coflow convergence costs), Fig. 3 (table
//!   replication + hit-rate consequence), Fig. 5 (global-area balance and
//!   forwarding freedom), Fig. 6 (key-rate vs array width).
//! * [`exp_ablations`] — demux ratio, TM floorplan congestion, multi-clock
//!   MAT envelope.
//! * [`exp_sched`] — the §5 extension: a programmable (PIFO) first TM
//!   running shortest-coflow-first.
//! * [`exp_faults`] — aggregation completion vs per-link loss.
//! * [`exp_load`] — offered load vs latency on both architectures (the
//!   honest cost of the central hop).
//! * [`exp_tse`] — E-TS1: the stateful TE/security workloads (load-driven
//!   flowlet forwarding, DDoS detection with live hot-range isolation) at
//!   up to a million live flows per target.
//! * [`exp_soak`] — E-D1: the `adcpd` serving-daemon soak matrix — both
//!   serving apps × central workers 1/2/4 through the fault choreography,
//!   graded on invariant health and byte-identity across worker counts.
//! * [`conformance`] — the E-C1 differential conformance harness: random
//!   program/workload generation, three-way RMT↔ADCP↔reference
//!   equivalence, fault-injection soak, and failure shrinking behind the
//!   `conformance` binary.
//! * [`journey`] — journey-tracer consumers: Chrome-trace/Perfetto export,
//!   drop forensics cross-checked against the metrics registry, and
//!   packet-walk printing (behind `adcp-trace --chrome/--forensics/
//!   --journeys`).
//! * [`par`] — order-preserving scoped-thread map; every sweep above runs
//!   its config points through it.
//! * [`report`] — console tables and `--json` output.
//! * [`snapshot`] — the `bench_snapshot` throughput suite behind
//!   `BENCH_<date>.json` perf-trajectory files.
//! * [`telemetry`] — the INT collector: drain datapath postcards into
//!   per-flow paths and per-queue depth series, detect microbursts (EWMA
//!   threshold), path changes (digest flips) and drop hotspots, and emit
//!   schema-validated reports plus Chrome-trace overlays.
//! * [`trace`] — app dispatch and per-stage flattening for the
//!   `adcp-trace` binary.
//! * [`schema`] — the JSON-Schema-subset validator behind
//!   `adcp-trace --validate` and `schemas/*.schema.json`.
//! * [`shutdown`] — SIGINT/SIGTERM latch (re-exported from `adcp-sim`)
//!   behind the graceful-exit paths of `adcp-trace --app table1`,
//!   `conformance`, and `exp_soak`: long sweeps stop at the next case
//!   boundary and still flush a partial report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conformance;
pub mod exp_ablations;
pub mod exp_faults;
pub mod exp_figs;
pub mod exp_load;
pub mod exp_migrate;
pub mod exp_sched;
pub mod exp_soak;
pub mod exp_tables;
pub mod exp_tse;
pub mod journey;
pub mod par;
pub mod report;
pub mod schema;
pub mod snapshot;
pub mod telemetry;
pub mod trace;

pub use adcp_sim::shutdown;
