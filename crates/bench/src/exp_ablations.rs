//! Ablations over the design choices DESIGN.md calls out.
//!
//! * demux ratio (§3.3): how far does splitting a port drive the pipeline
//!   clock down, and what does it cost the TM in pipeline count?
//! * TM floorplan (§4): monolithic vs interleaved g-cell congestion.
//! * multi-clock MAT (§4): how wide an array can SRAM frequency serve?

use adcp_analytic::feasibility::{
    estimate_congestion, multiclock_sweep, relative_dynamic_power, relative_logic_area,
    CongestionInput, TmFloorplan,
};
use adcp_analytic::scaling::{required_freq_ghz, tm_pipeline_count, MIN_WIRE_BYTES};
use serde::Serialize;

/// One demux-sweep row.
#[derive(Debug, Clone, Serialize)]
pub struct DemuxRow {
    /// Port speed, Gbps.
    pub port_gbps: u32,
    /// Demux factor m (1 = classic, one port per pipeline).
    pub demux: u32,
    /// Required pipeline frequency at 84 B packets, GHz.
    pub pipe_ghz: f64,
    /// Relative dynamic power vs the m=1 design.
    pub rel_power: f64,
    /// Relative logic area vs the m=1 design.
    pub rel_area: f64,
    /// Pipelines a 51.2 Tbps switch's TM must serve at this design point.
    pub tm_pipelines_51t: u32,
}

/// Sweep port speeds × demux factors.
pub fn ablate_demux() -> Vec<DemuxRow> {
    ablate_demux_impl(true)
}

fn ablate_demux_impl(parallel: bool) -> Vec<DemuxRow> {
    // One worker per port speed; each produces its four demux rows, and
    // the flatten keeps (port, m) order identical to the nested loops.
    let per_port = crate::par::map_points(parallel, vec![100u32, 400, 800, 1600], |port| {
        let base = required_freq_ghz(port as f64, MIN_WIRE_BYTES);
        [1u32, 2, 4, 8]
            .into_iter()
            .map(|m| {
                let f = required_freq_ghz(port as f64 / m as f64, MIN_WIRE_BYTES);
                DemuxRow {
                    port_gbps: port,
                    demux: m,
                    pipe_ghz: (f * 100.0).round() / 100.0,
                    rel_power: relative_dynamic_power(base, f),
                    rel_area: relative_logic_area(base, f),
                    tm_pipelines_51t: tm_pipeline_count(51_200, port, m),
                }
            })
            .collect::<Vec<_>>()
    });
    per_port.into_iter().flatten().collect()
}

/// One TM-floorplan row.
#[derive(Debug, Clone, Serialize)]
pub struct FloorplanRow {
    /// Pipelines connected to the TM.
    pub pipelines: u32,
    /// Monolithic peak g-cell utilization (demand/capacity).
    pub monolithic_util: f64,
    /// Interleaved (16 banks) peak utilization.
    pub interleaved_util: f64,
    /// Is the monolithic plan routable (< 0.8 utilization)?
    pub monolithic_routable: bool,
    /// Is the interleaved plan routable?
    pub interleaved_routable: bool,
}

/// Sweep TM pipeline counts (the §3.3 projection says 64 then 128).
pub fn ablate_tm_floorplan() -> Vec<FloorplanRow> {
    crate::par::par_map(vec![8u32, 16, 32, 64, 128], |pipelines| {
        let input = CongestionInput {
            pipelines,
            phv_bits: 4096,
            tracks_per_gcell: 200,
            gcells_per_block_edge: 40,
        };
        let mono = estimate_congestion(&input, TmFloorplan::Monolithic);
        let inter = estimate_congestion(&input, TmFloorplan::Interleaved { banks: 16 });
        FloorplanRow {
            pipelines,
            monolithic_util: mono.peak_utilization,
            interleaved_util: inter.peak_utilization,
            monolithic_routable: mono.peak_utilization < 0.8,
            interleaved_routable: inter.peak_utilization < 0.8,
        }
    })
}

/// One multi-clock row.
#[derive(Debug, Clone, Serialize)]
pub struct MultiClockRow {
    /// Pipeline frequency, GHz.
    pub pipe_ghz: f64,
    /// Array width served.
    pub width: u32,
    /// Required SRAM frequency, GHz.
    pub mem_ghz: f64,
    /// Feasible under a 4 GHz SRAM?
    pub feasible: bool,
}

/// Sweep the §4 multi-clock MAT envelope across the design space:
/// RMT's 1.62 GHz, the original 0.95 GHz, and ADCP demuxed clocks.
pub fn ablate_multiclock() -> Vec<MultiClockRow> {
    let per_clock = crate::par::par_map(vec![1.62f64, 0.95, 0.60, 0.30], |pipe| {
        multiclock_sweep(pipe, &[1, 2, 4, 8, 16, 32], 4.0)
            .into_iter()
            .map(|pt| MultiClockRow {
                pipe_ghz: pipe,
                width: pt.width,
                mem_ghz: (pt.mem_ghz * 100.0).round() / 100.0,
                feasible: pt.feasible,
            })
            .collect::<Vec<_>>()
    });
    per_clock.into_iter().flatten().collect()
}

/// Sanity: Table 3's demuxed design point exists in the sweep.
pub fn table3_point_in_sweep() -> bool {
    ablate_demux()
        .iter()
        .any(|r| r.port_gbps == 800 && r.demux == 2 && (r.pipe_ghz - 0.60).abs() < 0.011)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demux_sweep_par_matches_seq() {
        let par = serde_json::to_string(&ablate_demux_impl(true)).unwrap();
        let seq = serde_json::to_string(&ablate_demux_impl(false)).unwrap();
        assert_eq!(par, seq, "demux rows must not depend on scheduling");
    }

    #[test]
    fn demux_sweep_monotone_in_m() {
        let rows = ablate_demux();
        for port in [100u32, 400, 800, 1600] {
            let series: Vec<&DemuxRow> = rows.iter().filter(|r| r.port_gbps == port).collect();
            for w in series.windows(2) {
                assert!(w[1].pipe_ghz < w[0].pipe_ghz, "freq falls with m");
                assert!(w[1].rel_power < w[0].rel_power);
                assert!(w[1].tm_pipelines_51t > w[0].tm_pipelines_51t);
            }
        }
        assert!(table3_point_in_sweep());
    }

    #[test]
    fn floorplan_crossover() {
        let rows = ablate_tm_floorplan();
        // Small TMs route either way; the 64+-pipeline future does not
        // route monolithically but does interleaved (the §4 mitigation).
        let big = rows.iter().find(|r| r.pipelines == 64).unwrap();
        assert!(!big.monolithic_routable, "{big:?}");
        assert!(big.interleaved_routable, "{big:?}");
        let small = rows.iter().find(|r| r.pipelines == 8).unwrap();
        assert!(small.interleaved_routable);
    }

    #[test]
    fn multiclock_envelope() {
        let rows = ablate_multiclock();
        // RMT clock can only multi-clock a width-2 array; the demuxed
        // 0.30 GHz design reaches width 8+.
        let rmt16 = rows
            .iter()
            .find(|r| r.pipe_ghz == 1.62 && r.width == 16)
            .unwrap();
        assert!(!rmt16.feasible);
        let adcp8 = rows
            .iter()
            .find(|r| r.pipe_ghz == 0.30 && r.width == 8)
            .unwrap();
        assert!(adcp8.feasible);
    }
}
