//! Fault-injection sweep: how in-network aggregation degrades on lossy
//! links.
//!
//! SwitchML-style aggregation is all-or-nothing per chunk: a chunk whose
//! contribution was lost never completes (the switch holds a partial sum
//! forever — in real deployments an end-host timeout retransmits). The
//! sweep quantifies the blast radius: at per-link drop probability `p`, a
//! chunk needs all `W` contributions, so its completion probability is
//! `(1-p)^W` — the measured completion fraction should track that curve.

use adcp_apps::driver::TargetKind;
use adcp_apps::paramserv::{self, ParamServerCfg};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{CompileOptions, TargetModel};
use adcp_sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::gradient::GradientWorkload;
use serde::Serialize;

/// One fault-sweep row.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRow {
    /// Per-link drop probability.
    pub drop_chance: f64,
    /// Contributions actually lost.
    pub dropped: u64,
    /// Chunks that completed (all workers contributed).
    pub completed_chunks: u64,
    /// Total chunks in the model.
    pub total_chunks: u64,
    /// Measured completion fraction.
    pub completion: f64,
    /// The analytic expectation `(1-p)^workers`.
    pub expected_completion: f64,
}

/// Sweep drop probabilities over the ADCP parameter server.
pub fn ablate_faults(quick: bool) -> Vec<FaultRow> {
    // Quick mode still models 128 chunks: the completion-vs-loss comparison
    // is statistical, and fewer chunks puts honest RNG draws outside the
    // test tolerance (~1.6σ at 32 chunks).
    let cfg = ParamServerCfg {
        workers: 8,
        model_size: if quick { 2048 } else { 4096 },
        width: 16,
        seed: 77,
        central_workers: 1,
    };
    [0.0, 0.01, 0.05, 0.1, 0.2]
        .into_iter()
        .map(|p| run_with_loss(&cfg, p))
        .collect()
}

fn run_with_loss(cfg: &ParamServerCfg, drop_chance: f64) -> FaultRow {
    let target = TargetModel::adcp_reference();
    let worker_ports: Vec<PortId> = (0..cfg.workers as u16).map(PortId).collect();
    let prog = paramserv::program(
        cfg,
        TargetKind::Adcp,
        target.central_pipes as u32,
        &worker_ports,
        PortId(cfg.workers as u16),
    );
    let mut sw = AdcpSwitch::new(
        prog,
        target,
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .expect("compiles");
    let wl = GradientWorkload::new(cfg.workers, cfg.model_size, cfg.width);
    let mut inj = FaultInjector::new(FaultConfig::lossy(drop_chance), SimRng::seed_from(5));
    let mut rng = SimRng::seed_from(cfg.seed);
    for (i, ch) in wl.all_chunks_shuffled(&mut rng).iter().enumerate() {
        let mut data = Vec::with_capacity(8 + ch.values.len() * 4);
        data.extend_from_slice(&(ch.worker as u16).to_be_bytes());
        data.extend_from_slice(&ch.base_slot.to_be_bytes());
        data.extend_from_slice(&0u16.to_be_bytes());
        for v in &ch.values {
            data.extend_from_slice(&v.to_be_bytes());
        }
        let mut pkt = Packet::new(i as u64, FlowId(ch.worker as u64), data);
        if inj.apply(&mut pkt) == FaultOutcome::Dropped {
            continue;
        }
        sw.inject(PortId(ch.worker as u16), pkt, SimTime::ZERO);
    }
    sw.run_until_idle();
    sw.check_conservation();
    let total_chunks = (cfg.model_size / cfg.width) as u64;
    let completed = sw.counters.delivered / cfg.workers as u64;
    FaultRow {
        drop_chance,
        dropped: inj.dropped,
        completed_chunks: completed,
        total_chunks,
        completion: completed as f64 / total_chunks as f64,
        expected_completion: (1.0 - drop_chance).powi(cfg.workers as i32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_completes_everything() {
        let rows = ablate_faults(true);
        assert_eq!(rows[0].drop_chance, 0.0);
        assert_eq!(rows[0].completion, 1.0);
        assert_eq!(rows[0].dropped, 0);
    }

    #[test]
    fn completion_tracks_the_analytic_curve() {
        for r in ablate_faults(true) {
            assert!(
                (r.completion - r.expected_completion).abs() < 0.12,
                "p={}: measured {:.3} vs expected {:.3}",
                r.drop_chance,
                r.completion,
                r.expected_completion
            );
        }
    }

    #[test]
    fn completion_is_monotone_in_loss() {
        let rows = ablate_faults(true);
        for w in rows.windows(2) {
            assert!(
                w[1].completion <= w[0].completion + 0.05,
                "more loss should not complete more chunks: {w:?}"
            );
        }
    }
}
