//! Deterministic fork/join parallelism for experiment sweeps.
//!
//! Every sweep in this crate is a map over independent config points: each
//! point builds its own switch, drives its own workload, and returns one row.
//! [`par_map`] runs those points on scoped threads (`std::thread::scope`, so
//! borrows of the surrounding config work without `'static` bounds) while
//! keeping the *output order* identical to the input order — results land in
//! their input slot, not in completion order. Combined with the simulator's
//! seeded RNG this makes parallel sweeps bit-identical to sequential runs,
//! which `tests/` verifies by comparing encoded JSON rows.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on scoped worker threads, preserving input order.
///
/// Spawns at most `available_parallelism` workers; items are handed out via
/// an atomic cursor so the work balances regardless of per-item cost. Panics
/// in `f` propagate to the caller (the scope re-raises them on join).
pub fn par_map<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n <= 1 || workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let out: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let row = f(item);
                *out[i].lock().unwrap() = Some(row);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("slot filled"))
        .collect()
}

/// Sequential reference implementation of [`par_map`]; the determinism tests
/// compare its rows against the parallel version bit for bit.
pub fn seq_map<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    F: Fn(T) -> O,
{
    items.into_iter().map(f).collect()
}

/// Dispatch to [`par_map`] or [`seq_map`].
///
/// Sweeps route through this so their determinism tests can run the exact
/// same point closure both ways and compare encoded rows.
pub fn map_points<T, O, F>(parallel: bool, items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    if parallel {
        par_map(items, f)
    } else {
        seq_map(items, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let rows = par_map(items, |x| x * 3);
        assert_eq!(rows, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential() {
        let items: Vec<u64> = (0..37).collect();
        let par = par_map(items.clone(), |x| x.wrapping_mul(0x9E37_79B9).to_string());
        let seq = seq_map(items, |x| x.wrapping_mul(0x9E37_79B9).to_string());
        assert_eq!(par, seq);
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map(Vec::<u8>::new(), |x| x).is_empty());
        assert_eq!(par_map(vec![5u8], |x| x + 1), vec![6]);
    }
}
