//! E-TS1 — stateful TE/security workloads at flow-table scale (see
//! `EXPERIMENTS.md`).
//!
//! Two applications from the BEBA/OPP exemplar family — load-driven
//! flowlet forwarding (`flowlet-ldf`) and per-source DDoS detection with
//! live hot-range isolation (`ddos`) — run on the ADCP and on both RMT
//! lowerings. Quick mode keeps the unit-test scale; full mode drives a
//! **million live flows** per app per target, the scale the paged
//! register files, the O(1) Zipf sampler, and `ctrl`'s range
//! repartitioning exist for. Every row verifies against the app's exact
//! host reference (same fates, same ports, per seed); the ADCP `ddos`
//! row additionally shows the mid-attack `ctrl` reshard of the hot key
//! range completing with zero misroutes.

use adcp_apps::{ddos, flowlet, TargetKind};
use serde::Serialize;

/// One app × target point of the E-TS1 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct TseRow {
    /// Application name (`flowlet-ldf` or `ddos`).
    pub app: String,
    /// Architecture variant.
    pub target: String,
    /// Live flows (distinct benign sources) the workload draws from.
    pub flows: u64,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Drops (for `ddos`, mitigation: packets the promoted entries ate).
    pub drops: u64,
    /// Recirculation passes (RMT recirc lowering only).
    pub recirc_passes: u64,
    /// Did the run match its host reference exactly?
    pub correct: bool,
    /// `flowlet-ldf`: flowlet-gap uplink re-picks the reference confirmed.
    pub repicks: u64,
    /// `ddos`: 0→1 threshold promotions.
    pub promotions: u64,
    /// `ddos`: 1→0 hysteresis demotions during cooldown.
    pub demotions: u64,
    /// `ddos` on ADCP: security-controller reshards that completed.
    pub rebalances: u64,
    /// `ddos` on ADCP: register cells the live migrations moved.
    pub moved_keys: u64,
    /// `ddos` on ADCP: packets serviced by a wrong owner mid-migration
    /// (the invariant is that this stays **zero**).
    pub misroutes: u64,
    /// `ddos` on ADCP: peak pipe-load skew before the controller reacted.
    pub skew_before: f64,
    /// `ddos` on ADCP: pipe-load skew after the last reshard settled.
    pub skew_after: f64,
    /// Delivered-packet p99 latency, ns.
    pub p99_ns: f64,
}

const TARGETS: [TargetKind; 3] = [
    TargetKind::Adcp,
    TargetKind::RmtPinned,
    TargetKind::RmtRecirc,
];

fn flowlet_cfg(quick: bool) -> flowlet::LdfCfg {
    if quick {
        flowlet::LdfCfg::default()
    } else {
        flowlet::LdfCfg {
            flows: 1_000_000,
            pkts: 60_000,
            ..Default::default()
        }
    }
}

fn ddos_cfg(quick: bool) -> ddos::DdosCfg {
    if quick {
        ddos::DdosCfg::default()
    } else {
        ddos::DdosCfg {
            flows: 1_000_000,
            attackers: 32,
            pkts: 60_000,
            cool_pkts: 20_000,
            window_pkts: 2_000,
            ..Default::default()
        }
    }
}

/// Run the E-TS1 sweep: both apps on all three targets.
pub fn exp_tse(quick: bool) -> Vec<TseRow> {
    exp_tse_impl(quick, true)
}

fn exp_tse_impl(quick: bool, parallel: bool) -> Vec<TseRow> {
    let mut points: Vec<(&str, TargetKind)> = Vec::new();
    for kind in TARGETS {
        points.push(("flowlet-ldf", kind));
    }
    for kind in TARGETS {
        points.push(("ddos", kind));
    }
    crate::par::map_points(parallel, points, |(app, kind)| match app {
        "flowlet-ldf" => {
            let cfg = flowlet_cfg(quick);
            let o = flowlet::run(kind, &cfg);
            TseRow {
                app: app.into(),
                target: kind.label().into(),
                flows: cfg.flows,
                injected: o.report.injected,
                delivered: o.report.delivered,
                drops: o.report.drops,
                recirc_passes: o.report.recirc_passes,
                correct: o.report.correct,
                repicks: o.repicks,
                promotions: 0,
                demotions: 0,
                rebalances: 0,
                moved_keys: 0,
                misroutes: 0,
                skew_before: 0.0,
                skew_after: 0.0,
                p99_ns: o.report.latency.p99_ns,
            }
        }
        _ => {
            let cfg = ddos_cfg(quick);
            let o = ddos::run(kind, &cfg);
            TseRow {
                app: app.into(),
                target: kind.label().into(),
                flows: cfg.flows,
                injected: o.report.injected,
                delivered: o.report.delivered,
                drops: o.report.drops,
                recirc_passes: o.report.recirc_passes,
                correct: o.report.correct,
                repicks: 0,
                promotions: o.promotions,
                demotions: o.demotions,
                rebalances: o.rebalances as u64,
                moved_keys: o.stats.moved_keys,
                misroutes: o.stats.misroutes,
                skew_before: o.skew_before,
                skew_after: o.skew_after,
                p99_ns: o.report.latency.p99_ns,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tse_sweep_par_matches_seq() {
        let par = serde_json::to_string(&exp_tse_impl(true, true)).unwrap();
        let seq = serde_json::to_string(&exp_tse_impl(true, false)).unwrap();
        assert_eq!(par, seq, "tse rows must not depend on scheduling");
    }

    #[test]
    fn tse_quick_shapes() {
        let rows = exp_tse(true);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.correct,
                "{}/{} diverged from its reference",
                r.app, r.target
            );
            assert!(r.injected > 0 && r.delivered > 0, "{}/{}", r.app, r.target);
        }
        // The TE app re-picks uplinks on flowlet gaps on every target.
        for r in rows.iter().filter(|r| r.app == "flowlet-ldf") {
            assert!(r.repicks > 0, "{}: no flowlet re-picks", r.target);
        }
        // The attack ramp promotes entries everywhere; mitigation drops.
        for r in rows.iter().filter(|r| r.app == "ddos") {
            assert!(r.promotions > 0 && r.demotions > 0, "{}", r.target);
            assert!(r.drops > 0, "{}: mitigation never fired", r.target);
        }
        // The ADCP point runs the security controller: a mid-attack
        // reshard completes, moves state, and misroutes nothing.
        let d = rows
            .iter()
            .find(|r| r.app == "ddos" && r.target == "adcp")
            .unwrap();
        assert!(d.rebalances >= 1, "controller never resharded");
        assert!(d.moved_keys > 0);
        assert_eq!(d.misroutes, 0, "live reshard must not misroute");
        // The recirc lowering pays its tax on both apps.
        for r in rows.iter().filter(|r| r.target == "rmt/recirc") {
            assert!(
                r.recirc_passes >= r.injected,
                "{}: {} passes / {} injected",
                r.app,
                r.recirc_passes,
                r.injected
            );
        }
    }
}
