//! Console/JSON reporting for the regenerators.
//!
//! Every experiment returns serializable rows; the binaries print an
//! aligned text table (what EXPERIMENTS.md quotes) and, with `--json`,
//! machine-readable lines for downstream plotting.

use serde::Serialize;

/// Print a titled, aligned table from header + rows of strings.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Tag a serialized row with its experiment name.
fn tagged_row<T: Serialize>(experiment: &str, row: &T) -> serde_json::Value {
    let mut v = serde_json::to_value(row).expect("rows serialize");
    if let Some(obj) = v.as_object_mut() {
        obj.insert(
            "experiment".into(),
            serde_json::Value::String(experiment.into()),
        );
    }
    v
}

/// Emit one JSON line per row through a locked, buffered stdout handle,
/// flushing once at the end (rows can number in the thousands; per-row
/// unbuffered writes dominated the old profile).
pub fn print_json<T: Serialize>(experiment: &str, rows: &[T]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for r in rows {
        let v = tagged_row(experiment, r);
        writeln!(out, "{}", serde_json::to_string(&v).expect("json encodes"))
            .expect("stdout write");
    }
    out.flush().expect("stdout flush");
}

/// Write rows as one pretty-printed JSON document:
/// `{"experiment": ..., "date": ..., "rows": [...]}`. Used by
/// `bench_snapshot` to record the perf trajectory (`BENCH_<date>.json`).
pub fn write_json_file<T: Serialize>(
    path: &std::path::Path,
    experiment: &str,
    date: &str,
    rows: &[T],
) -> std::io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert(
        "experiment".into(),
        serde_json::Value::String(experiment.into()),
    );
    doc.insert("date".into(), serde_json::Value::String(date.into()));
    let items: Vec<serde_json::Value> = rows.iter().map(|r| tagged_row(experiment, r)).collect();
    doc.insert("rows".into(), serde_json::Value::Array(items));
    let text = serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("json encodes");
    std::fs::write(path, text + "\n")
}

/// True when the process args ask for JSON output.
pub fn want_json() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Format a float with engineering-style precision.
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x.abs() >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x.abs() >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.2}")
    }
}
