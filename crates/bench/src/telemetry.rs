//! The INT collector behind the telemetry experiments.
//!
//! The collector itself moved into the substrate ([`adcp_sim::telemetry`])
//! so the serving daemon can stream per-slice telemetry without depending
//! on the bench harness (which depends on `adcpd` for the soak matrix);
//! this module re-exports it to keep the harness-side call sites (the INT
//! honesty conformance, the fabric trace overlay) stable.

pub use adcp_sim::telemetry::{Collector, CollectorCfg, DropHotspot, Microburst, PathChange};
