//! E-C1 — the differential conformance harness (see `EXPERIMENTS.md`).
//!
//! ```text
//! conformance [--cases N] [--seed S] [--quick] [--migrate] [--fabric] [--out DIR]
//! conformance --replay PATH
//! ```
//!
//! Generates `N` random program/workload cases and checks RMT ↔ ADCP ↔
//! reference equivalence plus fault-degradation invariants; failures are
//! shrunk and written as replayable `CONFORMANCE_FAIL_<seed>.json`
//! artifacts in `--out DIR` (default: current directory). `--replay PATH`
//! re-runs one artifact's shrunk spec. Exit status 1 on any failure.
//!
//! `--migrate` soaks the §3.1 control plane instead: every case runs on a
//! partitioned ADCP switch and is live-repartitioned mid-workload (both
//! drain and incremental strategies, staggered reconfiguration points);
//! delivered frames, filtered counts, and merged register state must stay
//! byte-identical to the never-migrated reference. The fault phase then
//! repeats the migration under drop/corrupt/delay faults.
//!
//! `--fabric` runs every case on a 2-spine × 4-leaf fabric of ADCP switches
//! as well: the program's global partitioned area is split across the
//! leaves by key range, and delivered frames, filtered counts, and the
//! merged register state must agree with the one-big-switch reference
//! bit-for-bit (see `EXPERIMENTS.md` E-F1).
//!
//! `CONFORMANCE_BUG=swap-add-max` arms the test-only sabotage hook (the
//! ADCP target's register Adds and Maxes are swapped) to prove the harness
//! catches and shrinks a real semantic bug.
//! `CONFORMANCE_BUG=lose-drop-forensics` instead loses every other drop's
//! journey-tracer forensic record on the ADCP target, which the
//! forensics↔counter cross-check must flag.
//! `CONFORMANCE_BUG=misroute-boundary-key` (with `--fabric`) makes the
//! fabric steer every key at an ownership boundary to the wrong leaf (an
//! off-by-one range split), which the register merge/leak checks must flag.
//! `CONFORMANCE_BUG=lie-int-stamp` makes the ADCP target's INT stamps
//! report one more than the observed TM queue depth while the journey
//! tracer keeps the truth, which the INT honesty check must flag.

use std::path::PathBuf;
use std::process::ExitCode;

use adcp_bench::conformance::{replay, run, BugHook, CaseError, RunConfig};

fn parse_bug() -> BugHook {
    match std::env::var("CONFORMANCE_BUG").as_deref() {
        Ok("swap-add-max") => BugHook::SwapAddMax,
        Ok("lose-drop-forensics") => BugHook::LoseDropForensics,
        Ok("misroute-boundary-key") => BugHook::MisrouteBoundaryKey,
        Ok("lie-int-stamp") => BugHook::LieIntStamp,
        Ok(other) if !other.is_empty() => {
            eprintln!("conformance: unknown CONFORMANCE_BUG {other:?}, ignoring");
            BugHook::None
        }
        _ => BugHook::None,
    }
}

fn main() -> ExitCode {
    let mut cfg = RunConfig::default();
    let mut replay_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("conformance: {name} needs a value"))
        };
        match arg.as_str() {
            "--cases" => cfg.cases = value("--cases").parse().expect("--cases: not a number"),
            "--seed" => {
                let v = value("--seed");
                cfg.master_seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse())
                    .expect("--seed: not a number");
            }
            "--quick" => cfg.quick = true,
            "--migrate" => cfg.migrate = true,
            "--fabric" => cfg.fabric = true,
            "--out" => cfg.out_dir = PathBuf::from(value("--out")),
            "--replay" => replay_path = Some(PathBuf::from(value("--replay"))),
            other => {
                eprintln!("conformance: unknown argument {other:?}");
                eprintln!("usage: conformance [--cases N] [--seed S] [--quick] [--migrate] [--fabric] [--out DIR] [--replay PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    cfg.bug = parse_bug();
    // SIGINT/SIGTERM stop the run at the next case boundary; the partial
    // report (every case actually attempted) is still printed below.
    adcp_bench::shutdown::install();

    if let Some(path) = replay_path {
        return match replay(&path, cfg.bug) {
            Ok(()) => {
                println!("replay {}: PASS", path.display());
                ExitCode::SUCCESS
            }
            Err(CaseError::Skip(e)) => {
                eprintln!("replay {}: could not run: {e}", path.display());
                ExitCode::FAILURE
            }
            Err(CaseError::Mismatch(e)) => {
                eprintln!("replay {}: FAIL: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let report = run(&cfg);
    println!("{}", serde_json::to_string_pretty(&report).unwrap());
    eprintln!(
        "conformance: {} cases, {} passed, {} failed, {} compile-skips, {} fault-soaked",
        report.cases, report.passed, report.failed, report.skipped_compile, report.fault_cases
    );
    if report.interrupted {
        eprintln!(
            "conformance: interrupted by signal — partial report above covers every case attempted"
        );
    }
    for f in &report.failures {
        eprintln!(
            "  case {} (seed {:#x}, {} phase): {} -> {}",
            f.case_index, f.seed, f.phase, f.error, f.artifact
        );
    }
    if report.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
