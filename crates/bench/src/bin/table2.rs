//! Regenerate Table 2: RMT port-multiplexing scalability.

use adcp_bench::exp_tables::{scaling_cells, table2};
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let rows = table2();
    if want_json() {
        print_json("table2", &rows);
        return;
    }
    print_table(
        "Table 2 — port multiplexing poor scalability (derived vs paper)",
        &[
            "thr_Gbps",
            "port_Gbps",
            "pipes",
            "ports/pipe",
            "min_pkt_B",
            "freq_GHz",
            "paper",
            "match",
        ],
        &scaling_cells(&rows),
    );
    println!(
        "\nnote: the paper's printed row 4 labels an 8x8x800G configuration \
         as 25.6 Tbps; the per-pipeline figures (which the argument rests on) \
         are reproduced exactly."
    );
}
