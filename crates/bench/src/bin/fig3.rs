//! Regenerate Figure 3: table replication due to scalar processing, and
//! its hit-rate consequence.

use adcp_bench::exp_figs::{fig3, fig3_hit_rates};
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = fig3();
    let hits = fig3_hit_rates(quick);
    if want_json() {
        print_json("fig3", &rows);
        print_json("fig3_hits", &hits);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.width.to_string(),
                r.rmt_replicas.to_string(),
                r.rmt_mem_kib.to_string(),
                r.adcp_mem_kib.to_string(),
                r.rmt_max_entries.to_string(),
                r.drmt_max_entries.to_string(),
                r.adcp_max_entries.to_string(),
                format!("{:.1}", r.capacity_ratio),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 — replication cost of a 1024-entry table keyed on a width-w array",
        &[
            "width",
            "rmt_replicas",
            "rmt_KiB",
            "adcp_KiB",
            "rmt_max",
            "drmt_max",
            "adcp_max",
            "capacity_x",
        ],
        &cells,
    );
    let cells: Vec<Vec<String>> = hits
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                r.width.to_string(),
                r.cache_entries.to_string(),
                format!("{:.3}", r.hit_rate),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 (consequence) — Zipf(0.99) cache hit rate at equal stage memory",
        &["target", "width", "cache_entries", "hit_rate"],
        &cells,
    );
}
