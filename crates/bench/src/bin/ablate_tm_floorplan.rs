//! Ablation (§4): TM floorplan g-cell congestion, monolithic vs
//! interleaved.

use adcp_bench::exp_ablations::ablate_tm_floorplan;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let rows = ablate_tm_floorplan();
    if want_json() {
        print_json("ablate_tm_floorplan", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pipelines.to_string(),
                format!("{:.2}", r.monolithic_util),
                format!("{:.2}", r.interleaved_util),
                r.monolithic_routable.to_string(),
                r.interleaved_routable.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation — TM boundary g-cell utilization (>0.8 = congestion risk)",
        &[
            "pipelines",
            "mono_util",
            "inter_util",
            "mono_ok",
            "inter_ok",
        ],
        &cells,
    );
}
