//! Ablation (§3.3): demux ratio vs pipeline clock, power, area, TM load.

use adcp_bench::exp_ablations::ablate_demux;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let rows = ablate_demux();
    if want_json() {
        print_json("ablate_demux", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.port_gbps.to_string(),
                r.demux.to_string(),
                format!("{:.2}", r.pipe_ghz),
                format!("{:.3}", r.rel_power),
                format!("{:.2}", r.rel_area),
                r.tm_pipelines_51t.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation — demux ratio (84 B minimum packets)",
        &[
            "port_Gbps",
            "m",
            "pipe_GHz",
            "rel_power",
            "rel_area",
            "tm_pipes@51T",
        ],
        &cells,
    );
}
