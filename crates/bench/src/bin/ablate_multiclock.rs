//! Ablation (§4): multi-clock MAT memory feasibility envelope.

use adcp_bench::exp_ablations::ablate_multiclock;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let rows = ablate_multiclock();
    if want_json() {
        print_json("ablate_multiclock", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.pipe_ghz),
                r.width.to_string(),
                format!("{:.2}", r.mem_ghz),
                r.feasible.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation — multi-clock MAT (SRAM limit 4 GHz): mem_freq = width x pipe_freq",
        &["pipe_GHz", "width", "mem_GHz", "feasible"],
        &cells,
    );
}
