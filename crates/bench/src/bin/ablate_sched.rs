//! §5 extension: programmable TM1 scheduling (PIFO, shortest-coflow-first)
//! vs FIFO under short/long coflow contention.

use adcp_bench::exp_sched::ablate_sched;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = ablate_sched(quick);
    if want_json() {
        print_json("ablate_sched", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.1}", r.short_cct_ns),
                format!("{:.1}", r.long_cct_ns),
                format!("{:.1}", r.makespan_ns),
            ]
        })
        .collect();
    print_table(
        "Extension (§5) — programmable TM1: shortest-coflow-first vs FIFO",
        &["tm1_policy", "short_cct_ns", "long_cct_ns", "makespan_ns"],
        &cells,
    );
    println!(
        "\nreading: with the program computing each packet's rank (its coflow's\n\
         size), the PIFO lets the latency-sensitive coflow overtake the bulk\n\
         shuffle — its completion time collapses while the bulk's is unmoved."
    );
}
