//! Regenerate Table 3: port demultiplexing examples.

use adcp_bench::exp_tables::{scaling_cells, table3};
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let rows = table3();
    if want_json() {
        print_json("table3", &rows);
        return;
    }
    print_table(
        "Table 3 — port demultiplexing (derived vs paper)",
        &[
            "thr_Gbps",
            "port_Gbps",
            "pipes",
            "ports/pipe",
            "min_pkt_B",
            "freq_GHz",
            "paper",
            "match",
        ],
        &scaling_cells(&rows),
    );
}
