//! Record a perf-trajectory snapshot: simulated packets per wall-second for
//! every Table 1 app on ADCP and its RMT lowering, written to
//! `BENCH_<date>.json` (see EXPERIMENTS.md for the format).
//!
//! Usage: `cargo run --release -p adcp-bench --bin bench_snapshot
//!         [--quick] [--json] [--repeat N] [--out DIR]
//!         [--check BASELINE.json] [--write-baseline PATH]`
//!
//! `--json` prints rows to stdout instead of (in addition to) the file;
//! `--repeat` sets the number of timed wall-clock repetitions per point
//! (default 5; `--reps` is accepted as an alias). Each point first runs
//! once untimed as warmup, the reported time is the median repetition, and
//! every row carries the min-to-max spread so noisy points are visible.
//! `--quick` shrinks the workloads and skips the file write, so a sanity
//! run never clobbers the day's recorded trajectory point.
//!
//! `--check BASELINE.json` compares the measured rows against a previous
//! snapshot (same workload scale — check a `--quick` run against a
//! `--quick` baseline) and exits nonzero if any app x target falls more
//! than 25% below it: the CI perf-regression guard. `--write-baseline
//! PATH` records the rows for that purpose regardless of `--quick`.
//!
//! `--overhead` instead self-profiles the observability layer: the suite
//! is timed with each knob off, then on — the metrics registry
//! (`ADCP_METRICS`), the journey tracer at the production sampling rate
//! (`ADCP_TRACE=64`), and INT stamping at every packet (`ADCP_INT=on`) —
//! and the per-point and aggregate instrumentation overhead is written
//! to `BENCH_<date>_obs.json` (target: < 5 % aggregate per knob; the
//! off leg doubles as the zero-cost proof for each knob). The separate
//! file name keeps it from clobbering the day's throughput trajectory
//! point.

use adcp_bench::report::{eng, print_json, print_table, want_json, write_json_file};
use adcp_bench::snapshot::{
    check_against_baseline, measure_int_overhead, measure_overhead, measure_trace_overhead,
    run_suite, today_utc, OverheadRow, SnapshotRow,
};
use std::path::{Path, PathBuf};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The journey-tracer sampling rate the overhead budget is stated at.
const TRACE_OVERHEAD_SAMPLE: u64 = 64;

fn overhead_main(quick: bool, reps: u32, out_dir: &Path) {
    let (metrics_rows, metrics_pct) = measure_overhead(quick, reps);
    let (trace_rows, trace_pct) = measure_trace_overhead(quick, reps, TRACE_OVERHEAD_SAMPLE);
    let (int_rows, int_pct) = measure_int_overhead(quick, reps);
    let rows: Vec<OverheadRow> = metrics_rows
        .into_iter()
        .chain(trace_rows)
        .chain(int_rows)
        .collect();
    let date = today_utc();
    let path = (!quick).then(|| out_dir.join(format!("BENCH_{date}_obs.json")));
    if let Some(path) = &path {
        write_json_file(path, "bench_snapshot_overhead", &date, &rows)
            .expect("write overhead file");
    }
    if want_json() {
        print_json("bench_snapshot_overhead", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r: &OverheadRow| {
            vec![
                r.app.clone(),
                r.target.clone(),
                r.knob.clone(),
                format!("{:.2}", r.wall_ms_off),
                format!("{:.2}", r.wall_ms_on),
                format!("{:+.2}%", r.overhead_pct),
            ]
        })
        .collect();
    print_table(
        &format!("bench_snapshot {date} — instrumentation overhead (knob off vs on)"),
        &["app", "target", "knob", "off_ms", "on_ms", "overhead"],
        &cells,
    );
    println!(
        "\naggregate overhead: metrics {metrics_pct:+.2}%, \
         trace(sample={TRACE_OVERHEAD_SAMPLE}) {trace_pct:+.2}%, \
         int {int_pct:+.2}% (target < 5% each)"
    );
    match &path {
        Some(p) => println!("wrote {}", p.display()),
        None => println!("(quick run: overhead file not written)"),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps: u32 = arg_value("--repeat")
        .or_else(|| arg_value("--reps"))
        .map(|v| v.parse().expect("--repeat takes a number"))
        .unwrap_or(5);
    let out_dir = arg_value("--out").map(PathBuf::from).unwrap_or_default();
    if std::env::args().any(|a| a == "--overhead") {
        overhead_main(quick, reps, &out_dir);
        return;
    }

    let rows = run_suite(quick, reps);
    let date = today_utc();
    if let Some(path) = arg_value("--write-baseline") {
        write_json_file(Path::new(&path), "bench_snapshot", &date, &rows)
            .expect("write baseline file");
        println!("wrote baseline {path}");
    }
    if let Some(baseline) = arg_value("--check") {
        let text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("read baseline {baseline}: {e}"));
        let checks = check_against_baseline(&rows, &text, 25.0).expect("baseline check");
        let cells: Vec<Vec<String>> = checks
            .iter()
            .map(|c| {
                vec![
                    c.app.clone(),
                    c.target.clone(),
                    eng(c.baseline_pkts_per_sec),
                    eng(c.current_pkts_per_sec),
                    format!("{:+.1}%", c.delta_pct),
                    if c.regressed {
                        "REGRESSED".into()
                    } else {
                        "ok".into()
                    },
                ]
            })
            .collect();
        print_table(
            &format!("bench_snapshot — regression check vs {baseline} (threshold -25%)"),
            &["app", "target", "baseline", "current", "delta", "status"],
            &cells,
        );
        let regressed: Vec<&str> = checks
            .iter()
            .filter(|c| c.regressed)
            .map(|c| c.app.as_str())
            .collect();
        if !regressed.is_empty() {
            eprintln!(
                "perf regression: {} row(s) > 25% below baseline",
                regressed.len()
            );
            std::process::exit(1);
        }
        println!("\nno row more than 25% below baseline");
        return;
    }
    // Quick runs are sanity checks, not trajectory points: never let one
    // overwrite the day's full `BENCH_<date>.json`.
    let path = (!quick).then(|| out_dir.join(format!("BENCH_{date}.json")));
    if let Some(path) = &path {
        write_json_file(path, "bench_snapshot", &date, &rows).expect("write snapshot file");
    }

    if want_json() {
        print_json("bench_snapshot", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r: &SnapshotRow| {
            vec![
                r.app.clone(),
                r.target.clone(),
                r.injected.to_string(),
                r.delivered.to_string(),
                format!("{:.2}", r.wall_ms),
                eng(r.sim_pkts_per_wall_sec),
                format!("{:.0}%", r.spread_pct),
                r.correct.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("bench_snapshot {date} — simulated packets per wall-second"),
        &[
            "app",
            "target",
            "in",
            "out",
            "wall_ms",
            "sim_pkts/s",
            "spread",
            "correct",
        ],
        &cells,
    );
    match &path {
        Some(p) => println!("\nwrote {}", p.display()),
        None => println!("\n(quick run: snapshot file not written)"),
    }
}
