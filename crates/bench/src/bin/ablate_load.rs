//! Offered-load vs latency curve for both architectures.

use adcp_bench::exp_load::ablate_load;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = ablate_load(quick);
    if want_json() {
        print_json("ablate_load", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                format!("{:.2}", r.load),
                r.delivered.to_string(),
                r.drops.to_string(),
                format!("{:.1}", r.latency.p50_ns),
                format!("{:.1}", r.latency.p99_ns),
            ]
        })
        .collect();
    print_table(
        "Load sweep — 4 sources to 4 sinks, 256 B frames",
        &["target", "load", "delivered", "drops", "p50_ns", "p99_ns"],
        &cells,
    );
    println!(
        "\nreading: every ADCP packet takes the extra TM1->central->TM2 hop\n\
         (the cost of the global area), offset here by its faster ports'\n\
         serialization. Load is relative to each target's own line rate:\n\
         latency is flat below saturation and backlogs at 1.2x (sources\n\
         block rather than drop in this sweep)."
    );
}
