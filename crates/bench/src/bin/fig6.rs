//! Regenerate Figure 6 / §3.2: key rate vs array width.

use adcp_bench::exp_figs::fig6;
use adcp_bench::report::{eng, print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = fig6(quick);
    if want_json() {
        print_json("fig6", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.width.to_string(),
                eng(r.analytic_keys_per_sec),
                eng(r.measured_elements_per_sec),
                format!("{:.1}x", r.measured_speedup),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — array matching lifts the key rate (analytic + measured)",
        &["width", "analytic_keys/s", "measured_elems/s", "speedup"],
        &cells,
    );
}
