//! E-TS1 — stateful TE/security workloads (load-driven flowlet forwarding
//! and DDoS detection with live hot-range isolation) on both
//! architectures. Full mode runs a million live flows per point; `--quick`
//! keeps the unit-test scale.

use adcp_bench::exp_tse::exp_tse;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = exp_tse(quick);
    if want_json() {
        print_json("exp_tse", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.target.clone(),
                r.flows.to_string(),
                r.injected.to_string(),
                r.delivered.to_string(),
                r.drops.to_string(),
                r.recirc_passes.to_string(),
                if r.app == "flowlet-ldf" {
                    format!("repicks={}", r.repicks)
                } else {
                    format!("promo={} demo={}", r.promotions, r.demotions)
                },
                if r.app == "ddos" && r.target == "adcp" {
                    format!(
                        "reshards={} moved={} misroutes={} skew {:.2}->{:.2}",
                        r.rebalances, r.moved_keys, r.misroutes, r.skew_before, r.skew_after
                    )
                } else {
                    "-".into()
                },
                format!("{:.1}", r.p99_ns),
                r.correct.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E-TS1 — TE/security workloads ({} mode)",
            if quick {
                "quick"
            } else {
                "full: 10^6 live flows"
            }
        ),
        &[
            "app", "target", "flows", "in", "out", "drops", "recirc", "detector", "ctrl", "p99_ns",
            "correct",
        ],
        &cells,
    );
    println!(
        "\nreading: both stateful apps verify exactly against their host\n\
         references on every target. The RMT recirc lowering pays one pass\n\
         per stateful packet; the pinned lowering funnels everything to the\n\
         collector port. On the ADCP the ddos security controller isolates\n\
         the promoted (attacked) key range into singleton buckets mid-ramp\n\
         and the live reshard completes with zero misroutes."
    );
    if rows.iter().any(|r| !r.correct) {
        eprintln!("exp_tse: at least one row diverged from its reference");
        std::process::exit(1);
    }
}
