//! E-M1: live state migration — drain vs incremental, at equal final balance.

use adcp_bench::exp_migrate::exp_migrate;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = exp_migrate(quick);
    if want_json() {
        print_json("exp_migrate", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{}/{}", r.delivered, r.packets),
                r.identical_to_baseline.to_string(),
                r.migrations.to_string(),
                r.moved_keys.to_string(),
                r.paused_ns.to_string(),
                r.redirected_pkts.to_string(),
                r.misroutes.to_string(),
                format!("{:.1}", r.p99_ns),
                format!("{:.2}", r.final_max_over_mean),
            ]
        })
        .collect();
    print_table(
        "E-M1 — live repartitioning: drain vs incremental (same traffic, same final map)",
        &[
            "scenario",
            "delivered",
            "identical",
            "migs",
            "moved",
            "paused_ns",
            "redirected",
            "misroutes",
            "p99_ns",
            "final_skew",
        ],
        &cells,
    );
    println!(
        "\nreading: both strategies end at the same balance and reproduce the\n\
         never-migrated output byte for byte; the drain pause covers the whole\n\
         shard copy while incremental pays only the in-flight fence, so its\n\
         pause (and p99) is strictly lower."
    );
}
