//! Figures 1 and 4 — the two architectures themselves. Builds both
//! switches for the same program, prints the compiler's placement view
//! and one packet's walk through each datapath.

use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    describe_placement, ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef,
    HeaderDef, HeaderId, KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program,
    ProgramBuilder, RegAluOp, Region, RegisterDef, RmtCentralStrategy, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::time::SimTime;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

fn program() -> Program {
    let mut b = ProgramBuilder::new("walk");
    let h = b.header(HeaderDef::new(
        "fwd",
        vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
    ));
    b.parser(ParserSpec::single(h));
    let ctr = b.register(RegisterDef::new("coflow_ctr", 64, 64));
    b.table(TableDef {
        name: "route".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(0),
            kind: MatchKind::Exact,
            bits: 16,
        }),
        actions: vec![
            ActionDef::new("fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("drop", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 64,
    });
    b.table(TableDef {
        name: "count".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "count",
            vec![ActionOp::RegRmw {
                reg: ctr,
                index: Operand::Field(fr(0)),
                op: RegAluOp::Add,
                value: Operand::Const(1),
                fetch: None,
            }],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn pkt(id: u64, dst: u16) -> Packet {
    let mut data = vec![0u8; 64];
    data[..2].copy_from_slice(&dst.to_be_bytes());
    Packet::new(id, FlowId(dst as u64), data)
}

fn main() {
    println!("== Fig. 1 — the RMT architecture (32x400G, 4 pipelines) ==\n");
    for strategy in [
        RmtCentralStrategy::EgressPin,
        RmtCentralStrategy::Recirculate,
    ] {
        let mut sw = RmtSwitch::new(
            program(),
            TargetModel::rmt_12t(),
            CompileOptions {
                rmt_central: strategy,
            },
            RmtConfig {
                trace: true,
                ..Default::default()
            },
        )
        .expect("compiles");
        println!("{}\n", describe_placement(&sw.placement));
        sw.install_all(
            "route",
            Entry {
                value: MatchValue::Exact(3),
                action: 0,
                params: vec![20],
            },
        )
        .unwrap();
        // Under the recirculation lowering the program itself would mark
        // packets; the default program walk shows the egress-pinned path.
        sw.inject(PortId(1), pkt(1, 3), SimTime::ZERO);
        sw.run_until_idle();
        println!("packet walk ({strategy:?}):");
        println!("{}", sw.tracer.format_journey(1));
    }

    println!("== Fig. 4 — the ADCP architecture (16x800G, 1:2 demux, 4 central pipes) ==\n");
    let mut sw = AdcpSwitch::new(
        program(),
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig {
            trace: true,
            ..Default::default()
        },
    )
    .expect("compiles");
    println!("{}\n", describe_placement(&sw.placement));
    sw.install_all(
        "route",
        Entry {
            value: MatchValue::Exact(3),
            action: 0,
            params: vec![12],
        },
    )
    .unwrap();
    sw.inject(PortId(1), pkt(1, 3), SimTime::ZERO);
    sw.run_until_idle();
    println!("packet walk:");
    print!("{}", sw.tracer.format_journey(1));
    println!(
        "\nreading: same program, three physical realizations — the central\n\
         'count' table lands in the egress pipelines (pinned), on a second\n\
         ingress pass (recirculated), or in the native central region."
    );
}
