//! Regenerate Figure 2's claim: what coflow convergence costs each
//! architecture (reachable ports, recirculation tax, latency).

use adcp_bench::exp_figs::fig2;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = fig2(quick);
    if want_json() {
        print_json("fig2", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                r.correct.to_string(),
                format!("{}/{}", r.reachable_ports, r.total_ports),
                format!("{:.2}", r.recirc_per_packet),
                format!("{:.1}", r.makespan_ns),
                format!("{:.1}", r.p99_ns),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — coflow convergence restrictions (8-worker aggregation, width 1)",
        &[
            "target",
            "correct",
            "reach",
            "recirc/pkt",
            "makespan_ns",
            "p99_ns",
        ],
        &cells,
    );
}
