//! `adcp-trace` — run one application and dump its per-stage breakdown.
//!
//! Usage: `cargo run --release -p adcp-bench --bin adcp-trace --
//!         [--app NAME|table1] [--target adcp|rmt-pinned|rmt-recirc]
//!         [--quick] [--json] [--validate]
//!         [--migrate drain|incremental|off]
//!         [--sample N] [--chrome OUT.json] [--journeys [PKT]]
//!         [--forensics]`
//!        `adcp-trace --fabric --chrome OUT.json [--quick]`
//!        `adcp-trace --diff A.json B.json`
//!
//! Default output is a per-stage table of every counter, gauge, span
//! histogram, and queue-depth series the switch recorded. `--json` prints
//! the full `AppReport` (metrics block included) instead. `--validate`
//! checks the exported metrics block against
//! `schemas/metrics.schema.json` and exits non-zero on any violation —
//! CI runs this on a quick regenerator.
//!
//! The journey-tracer consumers (any of them force-enables tracing for
//! the run; `--sample N` keeps hop spans for packet ids where
//! `fnv(id) % N == 0`, default 1 = every packet):
//!
//! * `--chrome OUT.json` writes a Chrome trace-event document loadable in
//!   Perfetto / `chrome://tracing` — one track per pipe/TM, journey spans
//!   as duration events, drops and control-plane actions as instants.
//!   The document is validated against `schemas/chrome_trace.schema.json`
//!   before it is written.
//! * `--journeys [PKT]` pretty-prints reconstructed packet walks (all
//!   sampled packets, or just `PKT`).
//! * `--forensics` groups every recorded drop by site+reason with the
//!   queue state at the moment of death and cross-checks the per-reason
//!   totals against the metrics registry's drop counters, exiting
//!   non-zero on any mismatch. Drops are captured at every sampling
//!   rate, so the check is exact even under `--sample 64`.
//!
//! `--app table1` is a pseudo-app: every application of the paper's
//! Table 1, each run on both the ADCP and the RMT baseline — the
//! configuration under which the forensics invariant is asserted across
//! the whole matrix.
//!
//! `--fabric --chrome OUT.json` runs the 2-spine × 4-leaf demo fabric
//! with tracing and INT stamping on and writes ONE Chrome trace for the
//! whole topology: `pid` = device, flow events (`ph:s`/`ph:f`, bound by
//! packet id) for every inter-switch link crossing, and the INT
//! collector's microburst / path-change anomalies overlaid per device.
//!
//! `--migrate` sets the control-plane policy for apps that carry one
//! (currently `partmigrate`): pick the migration strategy or turn the
//! controller off entirely.
//!
//! `--diff A.json B.json` compares two saved metrics exports (raw blocks
//! or `--json` AppReports) and prints changed counters/gauges plus scopes
//! present on only one side — the quickest way to see what a code or
//! config change did to the per-stage picture.

use adcp_apps::driver::{AppReport, TargetKind};
use adcp_bench::journey::{
    chrome_trace, fabric_chrome_trace, forensics, format_journeys, ChromeRun, FabricChromeDevice,
};
use adcp_bench::report::{print_json, print_table};
use adcp_bench::schema::{load_chrome_trace_schema, load_metrics_schema, validate};
use adcp_bench::telemetry::{Collector, CollectorCfg};
use adcp_bench::trace::{
    diff_metrics, flatten, metrics_block, parse_target, run_one_with, APP_NAMES,
};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn diff_main(path_a: &str, path_b: &str) -> ! {
    let load = |path: &str| -> serde::Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let doc_a = load(path_a);
    let doc_b = load(path_b);
    let a = metrics_block(&doc_a).unwrap_or_else(|| {
        eprintln!("{path_a}: no metrics block found (want a raw export or an AppReport)");
        std::process::exit(2);
    });
    let b = metrics_block(&doc_b).unwrap_or_else(|| {
        eprintln!("{path_b}: no metrics block found (want a raw export or an AppReport)");
        std::process::exit(2);
    });
    let rows = diff_metrics(a, b);
    if rows.is_empty() {
        println!("no metric differences between {path_a} and {path_b}");
        std::process::exit(0);
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scope.clone(),
                r.name.clone(),
                r.a.clone(),
                r.b.clone(),
                r.delta.clone(),
            ]
        })
        .collect();
    print_table(
        &format!("adcp-trace --diff {path_a} {path_b}"),
        &["stage", "metric", "a", "b", "delta"],
        &cells,
    );
    std::process::exit(0);
}

/// `--fabric --chrome OUT.json`: run the 2-spine × 4-leaf demo fabric
/// with journey tracing and INT stamping on every device, then write ONE
/// Chrome trace for the whole fabric — `pid` = device (leaves then
/// spines), journey spans on each device's tracks, `ph:s`/`ph:f` flow
/// events for every inter-switch link crossing (bound by packet id), and
/// the INT collector's microburst / path-change instants overlaid on a
/// per-device `telemetry` track.
fn fabric_main(chrome: Option<&str>, quick: bool) -> ! {
    let Some(path) = chrome else {
        eprintln!("--fabric needs --chrome OUT.json (it is a trace exporter)");
        std::process::exit(2);
    };
    let packets = if quick { 400 } else { 4000 };
    let mut cfg = adcp_fabric::FabricConfig::default();
    cfg.switch.trace = true;
    cfg.switch.int = true;
    let (demo, mut fabric) = adcp_fabric::run_demo_keep(7, packets, cfg);
    if !demo.correct {
        eprintln!("fabric demo run diverged from its oracle: {demo:?}");
        std::process::exit(1);
    }

    let mut coll = Collector::new(CollectorCfg::default());
    for d in 0..fabric.n_devices() {
        coll.set_device_name(d, fabric.device_name(d));
    }
    for pc in fabric.drain_postcards() {
        coll.ingest(&pc);
    }
    for d in 0..fabric.n_devices() {
        coll.ingest_drops(d, &fabric.device_trace_json(d));
    }

    let devices: Vec<FabricChromeDevice> = (0..fabric.n_devices())
        .map(|d| FabricChromeDevice {
            device: d,
            name: fabric.device_name(d),
            trace: fabric.device_trace_json(d),
        })
        .collect();
    let overlay = coll.chrome_overlay_events(950);
    let doc = fabric_chrome_trace(&devices, fabric.crossings(), overlay);
    let schema = load_chrome_trace_schema().unwrap_or_else(|e| {
        eprintln!("cannot load chrome trace schema: {e}");
        std::process::exit(2);
    });
    if let Err(errors) = validate(&doc, &schema) {
        eprintln!("fabric chrome export violates schemas/chrome_trace.schema.json:");
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    let n_events = doc
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .map_or(0, |a| a.len());
    let text = serde_json::to_string_pretty(&doc).expect("chrome doc serializes");
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    let (stamps, postcards, truncated) = fabric.int_totals();
    let (bursts, _) = coll.microbursts();
    let (changes, _) = coll.path_changes();
    println!(
        "fabric: {} devices, {}/{} pkts delivered, {} link crossings{}",
        fabric.n_devices(),
        demo.delivered,
        demo.injected,
        fabric.crossings().len(),
        if fabric.crossings_truncated() > 0 {
            " (truncated)"
        } else {
            ""
        }
    );
    println!(
        "int: {stamps} stamps / {postcards} postcards / {truncated} truncated; \
         collector saw {} microbursts, {} path changes",
        bursts.len(),
        changes.len()
    );
    println!(
        "wrote {n_events} trace events to {path} (schema-valid; load in \
         https://ui.perfetto.dev or chrome://tracing)"
    );
    std::process::exit(0);
}

/// `--journeys` takes an optional packet id: present when the next token
/// parses as one, absent when the flag is last or followed by a flag.
fn journeys_arg() -> Option<Option<u64>> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--journeys")?;
    Some(args.get(i + 1).and_then(|v| v.parse::<u64>().ok()))
}

fn print_forensics(name: &str, report: &AppReport) -> bool {
    let Some(f) = forensics(&report.trace, &report.metrics) else {
        eprintln!(
            "{name}: forensics skipped — tracing or metrics disabled \
             (is ADCP_METRICS=off set?)"
        );
        return false;
    };
    let check_cells: Vec<Vec<String>> = f
        .checks
        .iter()
        .map(|c| {
            vec![
                c.reason.clone(),
                if c.tm == 0 {
                    "-".into()
                } else {
                    format!("tm{}", c.tm)
                },
                c.forensic.to_string(),
                c.counter.to_string(),
                c.counter_name.clone(),
                if c.ok { "ok".into() } else { "MISMATCH".into() },
            ]
        })
        .collect();
    print_table(
        &format!("{name}: drop forensics vs metrics registry"),
        &[
            "reason",
            "tm",
            "forensic",
            "counter",
            "counter name",
            "check",
        ],
        &check_cells,
    );
    if !f.rows.is_empty() {
        let site_cells: Vec<Vec<String>> = f
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.site.clone(),
                    r.reason.clone(),
                    r.queue
                        .map(|q| format!("q{q}"))
                        .unwrap_or_else(|| "-".into()),
                    r.count.to_string(),
                    r.detail.clone(),
                ]
            })
            .collect();
        print_table(
            &format!("{name}: drops by site (queue state at death)"),
            &["site", "reason", "queue", "count", "state at death"],
            &site_cells,
        );
    }
    for m in &f.mismatches {
        eprintln!("{name}: FORENSICS MISMATCH: {m}");
    }
    f.ok()
}

fn main() {
    if let Some(a) = arg_value("--diff") {
        let args: Vec<String> = std::env::args().collect();
        let b = args
            .iter()
            .position(|x| x == "--diff")
            .and_then(|i| args.get(i + 2).cloned())
            .unwrap_or_else(|| {
                eprintln!("--diff needs two file arguments: --diff A.json B.json");
                std::process::exit(2);
            });
        diff_main(&a, &b);
    }
    if std::env::args().any(|a| a == "--fabric") {
        let chrome = arg_value("--chrome");
        let quick = std::env::args().any(|a| a == "--quick");
        fabric_main(chrome.as_deref(), quick);
    }
    let app = arg_value("--app").unwrap_or_else(|| "paramserv".into());
    let target = match arg_value("--target") {
        None => TargetKind::Adcp,
        Some(s) => parse_target(&s).unwrap_or_else(|| {
            eprintln!("unknown --target {s:?} (want adcp, rmt-pinned, or rmt-recirc)");
            std::process::exit(2);
        }),
    };
    let migrate = arg_value("--migrate").map(|s| {
        adcp_apps::migrate::parse_strategy(&s).unwrap_or_else(|| {
            eprintln!("unknown --migrate {s:?} (want drain, incremental, or off)");
            std::process::exit(2);
        })
    });
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let do_validate = std::env::args().any(|a| a == "--validate");
    let chrome = arg_value("--chrome");
    let journeys = journeys_arg();
    let do_forensics = std::env::args().any(|a| a == "--forensics");
    let sample = arg_value("--sample").map(|s| {
        s.parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--sample wants an integer N >= 1, got {s:?}");
                std::process::exit(2);
            })
    });

    // Any journey consumer force-enables tracing for the run (the env
    // override both switch models read at construction).
    if sample.is_some() || chrome.is_some() || journeys.is_some() || do_forensics {
        std::env::set_var("ADCP_TRACE", sample.unwrap_or(1).to_string());
    }

    // SIGINT/SIGTERM finish the app run in progress, then fall through to
    // the consumers below with whatever completed — a partial table1 sweep
    // still validates, exports, and prints its forensics.
    adcp_bench::shutdown::install();

    let runs: Vec<(String, AppReport)> = if app == "table1" {
        let mut v = Vec::new();
        'sweep: for &a in APP_NAMES {
            for kind in [TargetKind::Adcp, TargetKind::RmtPinned] {
                if adcp_bench::shutdown::requested() {
                    eprintln!(
                        "adcp-trace: interrupted by signal — flushing the {} completed run(s)",
                        v.len()
                    );
                    break 'sweep;
                }
                let r = run_one_with(a, kind, quick, migrate).expect("known app");
                v.push((format!("{a} on {}", kind.label()), r));
            }
        }
        if v.is_empty() {
            eprintln!("adcp-trace: no runs completed before the signal");
            std::process::exit(130);
        }
        v
    } else {
        let report = run_one_with(&app, target, quick, migrate).unwrap_or_else(|| {
            eprintln!(
                "unknown --app {app:?} (want table1 or one of: {})",
                APP_NAMES.join(", ")
            );
            std::process::exit(2);
        });
        vec![(format!("{app} on {}", target.label()), report)]
    };

    if do_validate {
        let schema = load_metrics_schema().unwrap_or_else(|e| {
            eprintln!("cannot load metrics schema: {e}");
            std::process::exit(2);
        });
        for (name, report) in &runs {
            match validate(&report.metrics, &schema) {
                Ok(()) => println!("{name}: metrics block conforms to schemas/metrics.schema.json"),
                Err(errors) => {
                    eprintln!("{name}: metrics block violates schemas/metrics.schema.json:");
                    for e in &errors {
                        eprintln!("  {e}");
                    }
                    std::process::exit(1);
                }
            }
        }
    }

    if let Some(path) = &chrome {
        let chrome_runs: Vec<ChromeRun> = runs
            .iter()
            .map(|(name, r)| ChromeRun {
                name: name.clone(),
                trace: r.trace.clone(),
            })
            .collect();
        let doc = chrome_trace(&chrome_runs);
        let schema = load_chrome_trace_schema().unwrap_or_else(|e| {
            eprintln!("cannot load chrome trace schema: {e}");
            std::process::exit(2);
        });
        if let Err(errors) = validate(&doc, &schema) {
            eprintln!("chrome export violates schemas/chrome_trace.schema.json:");
            for e in &errors {
                eprintln!("  {e}");
            }
            std::process::exit(1);
        }
        let n_events = doc
            .get("traceEvents")
            .and_then(serde::Value::as_array)
            .map_or(0, |a| a.len());
        let text = serde_json::to_string_pretty(&doc).expect("chrome doc serializes");
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!(
            "wrote {n_events} trace events to {path} (schema-valid; load in \
             https://ui.perfetto.dev or chrome://tracing)"
        );
    }

    if let Some(pkt) = journeys {
        for (name, report) in &runs {
            println!("── journeys: {name}");
            print!("{}", format_journeys(&report.trace, pkt, 8));
        }
    }

    if do_forensics {
        let mut all_ok = true;
        for (name, report) in &runs {
            all_ok &= print_forensics(name, report);
        }
        if !all_ok {
            eprintln!("forensic drop counts disagree with the metrics registry");
            std::process::exit(1);
        }
        println!(
            "forensics: every recorded drop reason matches its registry counter \
             across {} run(s)",
            runs.len()
        );
    }

    if json {
        let reports: Vec<AppReport> = runs.iter().map(|(_, r)| r.clone()).collect();
        print_json("adcp_trace", &reports);
        return;
    }

    if chrome.is_some() || journeys.is_some() || do_forensics {
        return; // journey consumers replace the default metrics table
    }

    let (_, report) = &runs[0];
    let rows = flatten(&report.metrics);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scope.clone(),
                r.kind.to_string(),
                r.name.clone(),
                r.value.clone(),
                r.detail.clone(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "adcp-trace — {} on {} ({} run): per-stage metrics",
            report.app,
            report.target,
            if quick { "quick" } else { "full" },
        ),
        &["stage", "kind", "metric", "value", "detail"],
        &cells,
    );
    println!(
        "\n{} | end-to-end p99 {:.1}ns over {} delivered packets",
        report.summary_line(),
        report.latency.p99_ns,
        report.delivered,
    );
    if !report
        .metrics
        .get("enabled")
        .and_then(serde::Value::as_bool)
        .unwrap_or(false)
    {
        println!("note: metrics registry disabled (ADCP_METRICS=off) — nothing was recorded");
    }
}
