//! `adcp-trace` — run one application and dump its per-stage breakdown.
//!
//! Usage: `cargo run --release -p adcp-bench --bin adcp-trace --
//!         [--app NAME] [--target adcp|rmt-pinned|rmt-recirc]
//!         [--quick] [--json] [--validate]
//!         [--migrate drain|incremental|off]`
//!        `adcp-trace --diff A.json B.json`
//!
//! Default output is a per-stage table of every counter, gauge, span
//! histogram, and queue-depth series the switch recorded. `--json` prints
//! the full `AppReport` (metrics block included) instead. `--validate`
//! checks the exported metrics block against
//! `schemas/metrics.schema.json` and exits non-zero on any violation —
//! CI runs this on a quick regenerator.
//!
//! `--migrate` sets the control-plane policy for apps that carry one
//! (currently `partmigrate`): pick the migration strategy or turn the
//! controller off entirely.
//!
//! `--diff A.json B.json` compares two saved metrics exports (raw blocks
//! or `--json` AppReports) and prints changed counters/gauges plus scopes
//! present on only one side — the quickest way to see what a code or
//! config change did to the per-stage picture.

use adcp_apps::driver::TargetKind;
use adcp_bench::report::{print_json, print_table};
use adcp_bench::schema::{load_metrics_schema, validate};
use adcp_bench::trace::{
    diff_metrics, flatten, metrics_block, parse_target, run_one_with, APP_NAMES,
};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn diff_main(path_a: &str, path_b: &str) -> ! {
    let load = |path: &str| -> serde::Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let doc_a = load(path_a);
    let doc_b = load(path_b);
    let a = metrics_block(&doc_a).unwrap_or_else(|| {
        eprintln!("{path_a}: no metrics block found (want a raw export or an AppReport)");
        std::process::exit(2);
    });
    let b = metrics_block(&doc_b).unwrap_or_else(|| {
        eprintln!("{path_b}: no metrics block found (want a raw export or an AppReport)");
        std::process::exit(2);
    });
    let rows = diff_metrics(a, b);
    if rows.is_empty() {
        println!("no metric differences between {path_a} and {path_b}");
        std::process::exit(0);
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scope.clone(),
                r.name.clone(),
                r.a.clone(),
                r.b.clone(),
                r.delta.clone(),
            ]
        })
        .collect();
    print_table(
        &format!("adcp-trace --diff {path_a} {path_b}"),
        &["stage", "metric", "a", "b", "delta"],
        &cells,
    );
    std::process::exit(0);
}

fn main() {
    if let Some(a) = arg_value("--diff") {
        let args: Vec<String> = std::env::args().collect();
        let b = args
            .iter()
            .position(|x| x == "--diff")
            .and_then(|i| args.get(i + 2).cloned())
            .unwrap_or_else(|| {
                eprintln!("--diff needs two file arguments: --diff A.json B.json");
                std::process::exit(2);
            });
        diff_main(&a, &b);
    }
    let app = arg_value("--app").unwrap_or_else(|| "paramserv".into());
    let target = match arg_value("--target") {
        None => TargetKind::Adcp,
        Some(s) => parse_target(&s).unwrap_or_else(|| {
            eprintln!("unknown --target {s:?} (want adcp, rmt-pinned, or rmt-recirc)");
            std::process::exit(2);
        }),
    };
    let migrate = arg_value("--migrate").map(|s| {
        adcp_apps::migrate::parse_strategy(&s).unwrap_or_else(|| {
            eprintln!("unknown --migrate {s:?} (want drain, incremental, or off)");
            std::process::exit(2);
        })
    });
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let do_validate = std::env::args().any(|a| a == "--validate");

    let report = run_one_with(&app, target, quick, migrate).unwrap_or_else(|| {
        eprintln!(
            "unknown --app {app:?} (want one of: {})",
            APP_NAMES.join(", ")
        );
        std::process::exit(2);
    });

    if do_validate {
        let schema = load_metrics_schema().unwrap_or_else(|e| {
            eprintln!("cannot load metrics schema: {e}");
            std::process::exit(2);
        });
        match validate(&report.metrics, &schema) {
            Ok(()) => println!("metrics block conforms to schemas/metrics.schema.json"),
            Err(errors) => {
                eprintln!("metrics block violates schemas/metrics.schema.json:");
                for e in &errors {
                    eprintln!("  {e}");
                }
                std::process::exit(1);
            }
        }
    }

    if json {
        print_json("adcp_trace", std::slice::from_ref(&report));
        return;
    }

    let rows = flatten(&report.metrics);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scope.clone(),
                r.kind.to_string(),
                r.name.clone(),
                r.value.clone(),
                r.detail.clone(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "adcp-trace — {} on {} ({} run): per-stage metrics",
            report.app,
            report.target,
            if quick { "quick" } else { "full" },
        ),
        &["stage", "kind", "metric", "value", "detail"],
        &cells,
    );
    println!(
        "\n{} | end-to-end p99 {:.1}ns over {} delivered packets",
        report.summary_line(),
        report.latency.p99_ns,
        report.delivered,
    );
    if !report
        .metrics
        .get("enabled")
        .and_then(serde::Value::as_bool)
        .unwrap_or(false)
    {
        println!("note: metrics registry disabled (ADCP_METRICS=off) — nothing was recorded");
    }
}
