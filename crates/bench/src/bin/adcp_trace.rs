//! `adcp-trace` — run one application and dump its per-stage breakdown.
//!
//! Usage: `cargo run --release -p adcp-bench --bin adcp-trace --
//!         [--app NAME] [--target adcp|rmt-pinned|rmt-recirc]
//!         [--quick] [--json] [--validate]`
//!
//! Default output is a per-stage table of every counter, gauge, span
//! histogram, and queue-depth series the switch recorded. `--json` prints
//! the full `AppReport` (metrics block included) instead. `--validate`
//! checks the exported metrics block against
//! `schemas/metrics.schema.json` and exits non-zero on any violation —
//! CI runs this on a quick regenerator.

use adcp_apps::driver::TargetKind;
use adcp_bench::report::{print_json, print_table};
use adcp_bench::schema::{load_metrics_schema, validate};
use adcp_bench::trace::{flatten, parse_target, run_one, APP_NAMES};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let app = arg_value("--app").unwrap_or_else(|| "paramserv".into());
    let target = match arg_value("--target") {
        None => TargetKind::Adcp,
        Some(s) => parse_target(&s).unwrap_or_else(|| {
            eprintln!("unknown --target {s:?} (want adcp, rmt-pinned, or rmt-recirc)");
            std::process::exit(2);
        }),
    };
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let do_validate = std::env::args().any(|a| a == "--validate");

    let report = run_one(&app, target, quick).unwrap_or_else(|| {
        eprintln!(
            "unknown --app {app:?} (want one of: {})",
            APP_NAMES.join(", ")
        );
        std::process::exit(2);
    });

    if do_validate {
        let schema = load_metrics_schema().unwrap_or_else(|e| {
            eprintln!("cannot load metrics schema: {e}");
            std::process::exit(2);
        });
        match validate(&report.metrics, &schema) {
            Ok(()) => println!("metrics block conforms to schemas/metrics.schema.json"),
            Err(errors) => {
                eprintln!("metrics block violates schemas/metrics.schema.json:");
                for e in &errors {
                    eprintln!("  {e}");
                }
                std::process::exit(1);
            }
        }
    }

    if json {
        print_json("adcp_trace", std::slice::from_ref(&report));
        return;
    }

    let rows = flatten(&report.metrics);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scope.clone(),
                r.kind.to_string(),
                r.name.clone(),
                r.value.clone(),
                r.detail.clone(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "adcp-trace — {} on {} ({} run): per-stage metrics",
            report.app,
            report.target,
            if quick { "quick" } else { "full" },
        ),
        &["stage", "kind", "metric", "value", "detail"],
        &cells,
    );
    println!(
        "\n{} | end-to-end p99 {:.1}ns over {} delivered packets",
        report.summary_line(),
        report.latency.p99_ns,
        report.delivered,
    );
    if !report
        .metrics
        .get("enabled")
        .and_then(serde::Value::as_bool)
        .unwrap_or(false)
    {
        println!("note: metrics registry disabled (ADCP_METRICS=off) — nothing was recorded");
    }
}
