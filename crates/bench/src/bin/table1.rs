//! Regenerate Table 1: every coflow application on every architecture.
//!
//! Usage: `cargo run --release -p adcp-bench --bin table1 [--quick] [--json]`

use adcp_bench::exp_tables::table1;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = table1(quick);
    if want_json() {
        print_json("table1", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let r = &r.report;
            vec![
                r.app.clone(),
                r.target.clone(),
                r.correct.to_string(),
                r.injected.to_string(),
                r.delivered.to_string(),
                r.recirc_passes.to_string(),
                format!("{:.1}", r.makespan_ns),
                format!("{:.3}", r.goodput_gbps),
                format!("{:.3e}", r.elements_per_sec),
                format!("{:.1}", r.latency.p99_ns),
            ]
        })
        .collect();
    print_table(
        "Table 1 — coflow applications on both architectures (live runs)",
        &[
            "app",
            "target",
            "correct",
            "in",
            "out",
            "recirc",
            "makespan_ns",
            "goodput_Gbps",
            "elems/s",
            "p99_ns",
        ],
        &cells,
    );
    for r in &rows {
        for n in &r.report.notes {
            println!("  note[{} {}]: {}", r.report.app, r.report.target, n);
        }
    }
}
