//! E-D1: the serving-daemon soak matrix — both serving apps × central
//! worker counts 1/2/4 through the compressed fault choreography, each
//! run graded on invariant health and byte-identity across workers.
//!
//! Usage: `exp_soak [--quick] [--seed N] [--json]`
//! Exit status 1 if any run is unhealthy, misses a scale direction, or
//! diverges across worker counts.

use adcp_bench::exp_soak::exp_soak;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    adcp_bench::shutdown::install();
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--seed: not a number"))
            .unwrap_or(7)
    };
    let rows = exp_soak(quick, seed);
    let ok = rows
        .iter()
        .all(|r| r.healthy && r.identical_across_workers && r.scale_ups >= 1 && r.scale_downs >= 1);
    if want_json() {
        print_json("exp_soak", &rows);
    } else {
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    r.workers.to_string(),
                    format!("{:.1}", r.sim_ns as f64 / 1e6),
                    r.arrivals.to_string(),
                    r.delivered.to_string(),
                    r.p99_ns.to_string(),
                    format!("{}+{}+{}", r.scale_ups, r.scale_downs, r.skew_rebalances),
                    r.misroutes.to_string(),
                    r.healthy.to_string(),
                    r.identical_across_workers.to_string(),
                ]
            })
            .collect();
        print_table(
            "E-D1 — serving-daemon soak: SLO autoscaling under faults, workers 1/2/4",
            &[
                "app",
                "workers",
                "sim_ms",
                "arrivals",
                "delivered",
                "p99_ns",
                "up+down+skew",
                "misroutes",
                "healthy",
                "identical",
            ],
            &cells,
        );
        println!(
            "\nreading: every run drains with forensics == registry (zero drift),\n\
             a clean serving oracle, exact conservation, and zero misroutes; the\n\
             burn-rate loop scales up at every diurnal peak and releases pipes in\n\
             the troughs; and the report bytes are identical for 1/2/4 central\n\
             workers — execution parallelism is unobservable by construction."
        );
    }
    std::process::exit(if ok { 0 } else { 1 });
}
