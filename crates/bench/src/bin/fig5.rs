//! Regenerate Figure 5: the global partitioned area places coflow state by
//! hash across central pipelines while results reach any port.

use adcp_bench::exp_figs::fig5;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = fig5(quick);
    if want_json() {
        print_json("fig5", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.central_pipe.to_string(),
                r.busy_cycles.to_string(),
                r.distinct_output_ports.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 5 — hash placement across central pipelines; any-port output",
        &["central_pipe", "busy_cycles", "distinct_out_ports"],
        &cells,
    );
}
