//! Fault sweep: aggregation completion fraction vs per-link drop rate.

use adcp_bench::exp_faults::ablate_faults;
use adcp_bench::report::{print_json, print_table, want_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = ablate_faults(quick);
    if want_json() {
        print_json("ablate_faults", &rows);
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.drop_chance),
                r.dropped.to_string(),
                format!("{}/{}", r.completed_chunks, r.total_chunks),
                format!("{:.3}", r.completion),
                format!("{:.3}", r.expected_completion),
            ]
        })
        .collect();
    print_table(
        "Fault sweep — aggregation completion under per-link loss (8 workers)",
        &["drop_p", "lost_pkts", "chunks", "completion", "(1-p)^8"],
        &cells,
    );
    println!(
        "\nreading: a chunk completes only if all 8 contributions survive, so\n\
         completion tracks (1-p)^8 — the all-or-nothing cost of in-network\n\
         aggregation that end-host retransmission protocols must cover."
    );
}
