//! Migration experiment (E-M1): drain vs incremental state migration
//! under skewed keys, at equal final balance.
//!
//! Three runs share byte-identical traffic (Zipf keys whose hot shards
//! collide onto one central pipeline) and the same *final* partition map
//! (planned offline from the full key histogram, so both strategies end
//! at the same balance):
//!
//! * **baseline** — the final map is installed before any traffic; no
//!   migration ever happens. This is the reference output.
//! * **drain** — starts uniform, migrates to the final map mid-run with
//!   pause–drain–copy–resume. The pause covers the whole copy.
//! * **incremental** — same reconfiguration with copy-on-first-touch;
//!   the pause is only the in-flight fence drain.
//!
//! The experiment asserts the §3.1 control-plane claim end to end: both
//! migrated runs deliver frames and final register state byte-identical
//! to the never-migrated baseline, and the incremental pause is strictly
//! lower than the drain pause.

use adcp_apps::driver::TargetKind;
use adcp_apps::migrate::{program, SHARDS};
use adcp_core::{AdcpConfig, AdcpSwitch, MigrationStrategy, PartitionMap};
use adcp_ctrl::plan_rebalance;
use adcp_lang::{CompileOptions, RegId, TargetModel};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::stats::LatencySummary;
use adcp_sim::time::SimTime;
use adcp_workloads::keys::ZipfKeys;
use serde::Serialize;

/// One migration-experiment row.
#[derive(Debug, Clone, Serialize)]
pub struct MigrateRow {
    /// Scenario: `baseline`, `drain`, or `incremental`.
    pub scenario: String,
    /// Packets injected.
    pub packets: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Delivered frames and final register state match the baseline run.
    pub identical_to_baseline: bool,
    /// Migrations completed.
    pub migrations: u64,
    /// Register cells moved.
    pub moved_keys: u64,
    /// Time packets spent held at TM1 for migration fencing, ns.
    pub paused_ns: u64,
    /// First-touch shard copies (incremental only).
    pub redirected_pkts: u64,
    /// Packets held at TM1 during fencing.
    pub held_pkts: u64,
    /// Packets dequeued at a pipe their routing epoch does not own.
    pub misroutes: u64,
    /// Median delivered latency, ns.
    pub p50_ns: f64,
    /// Tail delivered latency, ns.
    pub p99_ns: f64,
    /// Simulated makespan, ns.
    pub makespan_ns: f64,
    /// Hottest-pipe load over mean under the *final* map (equal across
    /// scenarios by construction).
    pub final_max_over_mean: f64,
}

const CLIENTS: u16 = 4;
const GAP_PS: u64 = 200_000; // 200 ns between packets
const STRIDE: u64 = 4; // hot keys collide onto one pipe under the uniform map

fn traffic(quick: bool) -> Vec<u16> {
    let packets = if quick { 2_000 } else { 12_000 };
    let keyspace = 4096usize;
    let zipf = ZipfKeys::new(keyspace, 1.1);
    let mut rng = SimRng::seed_from(41);
    (0..packets)
        .map(|_| ((zipf.sample(&mut rng) * STRIDE) % keyspace as u64) as u16)
        .collect()
}

fn mk_pkt(id: u64, key: u16) -> Packet {
    let mut data = Vec::with_capacity(18);
    data.extend_from_slice(&CLIENTS.to_be_bytes()); // dst = collector port
    data.extend_from_slice(&key.to_be_bytes());
    data.extend_from_slice(&[0u8; 6]); // idx + count, filled in-switch
    data.extend_from_slice(&[0u8; 8]); // payload
    Packet::new(id, FlowId(key as u64), data)
        .with_goodput(8)
        .with_elements(1)
}

/// Delivered frames (sorted by id) plus merged per-cell register state —
/// the byte-level output a migration must not perturb.
type Output = (Vec<(u64, Vec<u8>)>, Vec<u64>);

fn run_one(
    keys: &[u16],
    initial: &PartitionMap,
    migrate_to: Option<(&PartitionMap, MigrationStrategy)>,
) -> (AdcpSwitch, SimTime, Output) {
    let mut sw = AdcpSwitch::new(
        program(TargetKind::Adcp, PortId(CLIENTS)),
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .expect("partmigrate compiles on ADCP");
    sw.install_partition_map(initial.clone())
        .expect("idle install");
    for (i, &key) in keys.iter().enumerate() {
        sw.inject(
            PortId(i as u16 % CLIENTS),
            mk_pkt(i as u64, key),
            SimTime(i as u64 * GAP_PS),
        );
    }
    if let Some((next, strategy)) = migrate_to {
        sw.run_until(SimTime(keys.len() as u64 * GAP_PS / 2));
        sw.begin_migration(next.clone(), strategy)
            .expect("migration begins mid-run");
    }
    let makespan = sw.run_until_idle();
    if sw.migration_active() {
        sw.finalize_migration().expect("incremental finalize");
    }
    sw.check_conservation();
    let mut frames: Vec<(u64, Vec<u8>)> = sw
        .take_delivered()
        .iter()
        .map(|d| (d.meta.id, d.data.to_vec()))
        .collect();
    frames.sort_by_key(|(id, _)| *id);
    let merged: Vec<u64> = (0..SHARDS)
        .map(|cell| {
            (0..sw.num_central())
                .map(|c| sw.central_register(c, RegId(0)).unwrap().peek(cell))
                .sum()
        })
        .collect();
    (sw, makespan, (frames, merged))
}

fn row_from(
    scenario: &str,
    sw: &AdcpSwitch,
    packets: u64,
    out: &Output,
    baseline: &Output,
    final_skew: f64,
    makespan: SimTime,
) -> MigrateRow {
    let stats = sw.migration_stats();
    let lat = LatencySummary::from(&sw.latency);
    MigrateRow {
        scenario: scenario.into(),
        packets,
        delivered: sw.counters.delivered,
        identical_to_baseline: out == baseline,
        migrations: stats.migrations,
        moved_keys: stats.moved_keys,
        paused_ns: stats.paused_ns,
        redirected_pkts: stats.redirected_pkts,
        held_pkts: stats.held_pkts,
        misroutes: stats.misroutes,
        p50_ns: lat.p50_ns,
        p99_ns: lat.p99_ns,
        makespan_ns: makespan.as_ps() as f64 / 1e3,
        final_max_over_mean: final_skew,
    }
}

/// Run the three scenarios and report.
pub fn exp_migrate(quick: bool) -> Vec<MigrateRow> {
    let keys = traffic(quick);
    let packets = keys.len() as u64;
    let uniform = PartitionMap::uniform(SHARDS as u32, 4);
    // Plan the final map offline from the full histogram: same target
    // balance for every scenario.
    let mut load = vec![0u64; SHARDS as usize];
    for &k in &keys {
        load[(k as u64 & (SHARDS - 1)) as usize] += 1;
    }
    let next = plan_rebalance(&uniform, &load, 4).expect("skewed traffic is improvable");
    let final_skew = {
        let mut pipe = [0u64; 4];
        for (b, &n) in load.iter().enumerate() {
            pipe[next.owner_of_bucket(b as u32) as usize] += n;
        }
        let mean = packets as f64 / 4.0;
        *pipe.iter().max().unwrap() as f64 / mean
    };

    let (base_sw, base_span, base_out) = run_one(&keys, &next, None);
    let mut rows = vec![row_from(
        "baseline", &base_sw, packets, &base_out, &base_out, final_skew, base_span,
    )];
    for (name, strategy) in [
        ("drain", MigrationStrategy::Drain),
        ("incremental", MigrationStrategy::Incremental),
    ] {
        let (sw, span, out) = run_one(&keys, &uniform, Some((&next, strategy)));
        rows.push(row_from(
            name, &sw, packets, &out, &base_out, final_skew, span,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrated_output_is_identical_to_never_migrated() {
        let rows = exp_migrate(true);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.identical_to_baseline, "{}: output drifted", r.scenario);
            assert_eq!(r.misroutes, 0, "{}", r.scenario);
            assert_eq!(r.delivered, r.packets, "{}", r.scenario);
        }
        assert_eq!(rows[0].migrations, 0);
        assert_eq!(rows[1].migrations, 1);
        assert_eq!(rows[2].migrations, 1);
    }

    #[test]
    fn incremental_pause_is_strictly_lower_than_drain() {
        let rows = exp_migrate(true);
        let drain = &rows[1];
        let inc = &rows[2];
        assert!(drain.paused_ns > 0, "drain must pause for the copy");
        assert!(
            inc.paused_ns < drain.paused_ns,
            "incremental {} ns vs drain {} ns",
            inc.paused_ns,
            drain.paused_ns
        );
        assert!(inc.redirected_pkts > 0, "first-touch copies must occur");
        assert_eq!(drain.redirected_pkts, 0);
        assert_eq!(drain.moved_keys, inc.moved_keys, "same plan, same cells");
    }
}
