//! Consumers of the journey-tracer export: Chrome-trace conversion, drop
//! forensics with the metrics cross-check, and packet-walk printing.
//!
//! All three work on the JSON block a switch exports via `trace_json()`
//! (embedded in every [`adcp_apps::driver::AppReport`] as `trace`), so they
//! compose with saved reports as well as live runs:
//!
//! * [`chrome_trace`] — convert one or more runs into a Chrome trace-event
//!   JSON document loadable in Perfetto / `chrome://tracing`: one track
//!   (tid) per pipe/TM, journey spans as duration events, drops and
//!   control-plane actions as instants.
//! * [`forensics`] — group every recorded drop by site+reason with the
//!   queue state at the moment of death, and cross-check the per-reason
//!   totals against the metrics registry's drop counters. The aggregated
//!   forensic counts are exact at *any* sampling rate (drops are always
//!   captured), so any disagreement means a switch dropped a packet
//!   without recording why — the bug class the check exists to catch.
//! * [`format_journeys`] — pretty-print reconstructed packet walks.

use crate::report::eng;
use serde::{Map, Value};
use std::collections::BTreeMap;

/// One run's trace block plus a display name, for multi-run exports
/// (`pid` in the Chrome trace is the run's index in the slice).
pub struct ChromeRun {
    /// Process name shown in the timeline (e.g. `"paramserv/adcp"`).
    pub name: String,
    /// The switch's `trace_json()` block.
    pub trace: Value,
}

/// Stable track (thread) ids inside one Chrome-trace process. Pipes get
/// `base + index`; the bases are spaced so tracks sort in pipeline order.
fn track_of(site: &str) -> (String, u64) {
    let indexed = |base: u64, prefix: &str| {
        let i: u64 = site[prefix.len()..site.len() - 1].parse().unwrap_or(0);
        (site.to_string(), base + i)
    };
    if site.starts_with("rx(") {
        ("rx".into(), 0)
    } else if site.starts_with("ingress[") {
        indexed(100, "ingress[")
    } else if site == "tm1" {
        ("tm1".into(), 200)
    } else if site.starts_with("central[") {
        indexed(300, "central[")
    } else if site == "tm2" {
        ("tm2".into(), 400)
    } else if site.starts_with("egress[") {
        indexed(500, "egress[")
    } else if site == "recirculate" {
        ("recirculate".into(), 600)
    } else if site.starts_with("tx(") {
        ("tx".into(), 700)
    } else {
        (site.to_string(), 900)
    }
}

/// Track id of the control-plane instants.
const CTRL_TID: u64 = 800;

fn event_base(ph: &str, name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64) -> Map {
    let mut o = Map::new();
    o.insert("name".into(), Value::String(name.into()));
    o.insert("cat".into(), Value::String(cat.into()));
    o.insert("ph".into(), Value::String(ph.into()));
    o.insert("ts".into(), Value::F64(ts_us));
    o.insert("pid".into(), Value::U64(pid));
    o.insert("tid".into(), Value::U64(tid));
    o
}

fn copy_ctx(args: &mut Map, from: &Value) {
    for key in ["queue_depth", "buffer_cells", "epoch"] {
        if let Some(v) = from.get(key) {
            args.insert(key.into(), v.clone());
        }
    }
}

const PS_PER_US: f64 = 1e6;

/// Convert trace blocks into one Chrome trace-event JSON document
/// (`{"traceEvents": [...], "displayTimeUnit": "ns"}`). Journey hop spans
/// become `ph:"X"` duration events on the track of their site; drops and
/// control-plane actions become `ph:"i"` instants. Terminal `drop` ring
/// hops are skipped — the forensic drop records (complete at any sampling
/// rate) carry the instants instead.
pub fn chrome_trace(runs: &[ChromeRun]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (pid, run) in runs.iter().enumerate() {
        push_run_events(&mut events, pid as u64, &run.name, &run.trace);
    }
    let mut root = Map::new();
    root.insert("traceEvents".into(), Value::Array(events));
    root.insert("displayTimeUnit".into(), Value::String("ns".into()));
    Value::Object(root)
}

/// Emit one process's worth of events (metadata, hop spans, drop and
/// control instants) for a trace block, under the given `pid`.
fn push_run_events(events: &mut Vec<Value>, pid: u64, name: &str, trace: &Value) {
    {
        let mut meta = event_base("M", "process_name", "__metadata", pid, 0, 0.0);
        let mut args = Map::new();
        args.insert("name".into(), Value::String(name.into()));
        meta.insert("args".into(), Value::Object(args));
        events.push(Value::Object(meta));
        if trace.get("enabled").and_then(Value::as_bool) != Some(true) {
            return;
        }
        let mut tracks: BTreeMap<u64, String> = BTreeMap::new();
        let empty = Vec::new();
        let hops = trace
            .get("hops")
            .and_then(Value::as_array)
            .unwrap_or(&empty);
        for h in hops {
            let site = h.get("site").and_then(Value::as_str).unwrap_or("?");
            if site == "drop" {
                continue;
            }
            let (track, tid) = track_of(site);
            tracks.entry(tid).or_insert(track);
            let pkt = h.get("pkt").and_then(Value::as_u64).unwrap_or(0);
            let enter = h.get("enter_ps").and_then(Value::as_u64).unwrap_or(0);
            let exit = h.get("exit_ps").and_then(Value::as_u64).unwrap_or(enter);
            let mut ev = event_base(
                "X",
                &format!("pkt {pkt}"),
                "journey",
                pid,
                tid,
                enter as f64 / PS_PER_US,
            );
            ev.insert(
                "dur".into(),
                Value::F64(exit.saturating_sub(enter) as f64 / PS_PER_US),
            );
            let mut args = Map::new();
            args.insert("pkt".into(), Value::U64(pkt));
            args.insert("site".into(), Value::String(site.into()));
            copy_ctx(&mut args, h);
            ev.insert("args".into(), Value::Object(args));
            events.push(Value::Object(ev));
        }
        let drops = trace
            .get("drops")
            .and_then(Value::as_array)
            .unwrap_or(&empty);
        for d in drops {
            let site = d.get("site").and_then(Value::as_str).unwrap_or("?");
            let reason = d.get("reason").and_then(Value::as_str).unwrap_or("?");
            let (track, tid) = track_of(site);
            tracks.entry(tid).or_insert(track);
            let ts = d.get("time_ps").and_then(Value::as_u64).unwrap_or(0);
            let mut ev = event_base(
                "i",
                &format!("drop: {reason}"),
                "drop",
                pid,
                tid,
                ts as f64 / PS_PER_US,
            );
            ev.insert("s".into(), Value::String("t".into()));
            let mut args = Map::new();
            for key in ["pkt", "site", "reason", "tm", "queue"] {
                if let Some(v) = d.get(key) {
                    args.insert(key.into(), v.clone());
                }
            }
            copy_ctx(&mut args, d);
            ev.insert("args".into(), Value::Object(args));
            events.push(Value::Object(ev));
        }
        let ctrl = trace
            .get("ctrl")
            .and_then(Value::as_array)
            .unwrap_or(&empty);
        if !ctrl.is_empty() {
            tracks.entry(CTRL_TID).or_insert("ctrl".into());
        }
        for c in ctrl {
            let name = c.get("event").and_then(Value::as_str).unwrap_or("?");
            let ts = c.get("time_ps").and_then(Value::as_u64).unwrap_or(0);
            let mut ev = event_base("i", name, "ctrl", pid, CTRL_TID, ts as f64 / PS_PER_US);
            ev.insert("s".into(), Value::String("p".into()));
            let mut args = Map::new();
            for key in ["epoch", "strategy", "moved_keys"] {
                if let Some(v) = c.get(key) {
                    args.insert(key.into(), v.clone());
                }
            }
            ev.insert("args".into(), Value::Object(args));
            events.push(Value::Object(ev));
        }
        for (tid, track) in tracks {
            let mut meta = event_base("M", "thread_name", "__metadata", pid, tid, 0.0);
            let mut args = Map::new();
            args.insert("name".into(), Value::String(track));
            meta.insert("args".into(), Value::Object(args));
            events.push(Value::Object(meta));
        }
    }
}

/// One device of a fabric run for the unified Chrome export.
pub struct FabricChromeDevice {
    /// Fabric device id (leaf `l` = `l`, spine `s` = `n_leaves + s`).
    pub device: u16,
    /// Display name (`"leaf0"`, `"spine1"`, ...).
    pub name: String,
    /// That switch's `trace_json()` block.
    pub trace: Value,
}

/// Convert one fabric run into a single Chrome trace-event document:
/// `pid` = fabric device id (process per leaf and spine), every device's
/// journey spans/drops/ctrl instants on its own tracks, inter-switch
/// link crossings as `ph:"s"`/`ph:"f"` flow events bound by packet id
/// (start on the transmitter's `tx` track, finish on the receiver's `rx`
/// track), and any collector overlay instants appended as-is.
pub fn fabric_chrome_trace(
    devices: &[FabricChromeDevice],
    crossings: &[adcp_fabric::Crossing],
    overlay: Vec<Value>,
) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for d in devices {
        push_run_events(&mut events, d.device as u64, &d.name, &d.trace);
    }
    const TX_TID: u64 = 700;
    const RX_TID: u64 = 0;
    for c in crossings {
        let name = format!("pkt {}", c.pkt);
        let mut s = event_base(
            "s",
            &name,
            "link",
            c.from_device as u64,
            TX_TID,
            c.depart.0 as f64 / PS_PER_US,
        );
        s.insert("id".into(), Value::U64(c.pkt));
        let mut args = Map::new();
        args.insert("flow".into(), Value::U64(c.flow));
        args.insert("to_device".into(), Value::U64(c.to_device as u64));
        s.insert("args".into(), Value::Object(args));
        events.push(Value::Object(s));
        let mut f = event_base(
            "f",
            &name,
            "link",
            c.to_device as u64,
            RX_TID,
            c.arrive.0 as f64 / PS_PER_US,
        );
        f.insert("id".into(), Value::U64(c.pkt));
        f.insert("bp".into(), Value::String("e".into()));
        events.push(Value::Object(f));
    }
    events.extend(overlay);
    let mut root = Map::new();
    root.insert("traceEvents".into(), Value::Array(events));
    root.insert("displayTimeUnit".into(), Value::String("ns".into()));
    Value::Object(root)
}

/// One forensic group: every drop recorded at a `(site, reason)` pair, with
/// the observed queue state at the moments of death.
pub struct ForensicsRow {
    /// Death site (e.g. `"tm2"`).
    pub site: String,
    /// Typed reason label (e.g. `"queue_tail"`).
    pub reason: String,
    /// Traffic manager involved (0 for non-TM reasons).
    pub tm: u64,
    /// Destination queue, for queue-tail drops.
    pub queue: Option<u64>,
    /// Exact drop count (immune to detail-log truncation).
    pub count: u64,
    /// Queue-depth / buffer-occupancy ranges at death, from the detailed
    /// log (empty when the reason carries no queue state).
    pub detail: String,
}

/// One cross-check line: the forensic total for a `(reason, tm)` against
/// the matching metrics-registry counter.
pub struct CheckRow {
    /// Reason label.
    pub reason: String,
    /// Traffic manager (0 for non-TM reasons).
    pub tm: u64,
    /// Total from the tracer's exact drop aggregation.
    pub forensic: u64,
    /// Value of the matching registry counter (`scope/name`).
    pub counter: u64,
    /// Which counter was compared, as `scope/name`.
    pub counter_name: String,
    /// Did they match exactly?
    pub ok: bool,
}

/// The forensics report for one run.
pub struct Forensics {
    /// Per-`(site, reason)` groups, largest first.
    pub rows: Vec<ForensicsRow>,
    /// Per-`(reason, tm)` cross-check against the metrics counters.
    pub checks: Vec<CheckRow>,
    /// Human-readable mismatch descriptions; empty means the invariant
    /// held (every drop the switch counted has a recorded reason, and
    /// vice versa).
    pub mismatches: Vec<String>,
}

impl Forensics {
    /// Did every forensic total match its registry counter?
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

// The reason → counter mapping moved into the substrate
// (`adcp_sim::trace`) so the serving daemon's native zero-drift check and
// this JSON-level report share one source of truth.
use adcp_sim::trace::{drop_counter_candidates as counter_candidates, DROP_CHECK_REASONS};

fn counter_lookup(metrics: &Value, scope: &str, name: &str) -> Option<u64> {
    metrics
        .get("scopes")?
        .get(scope)?
        .get("counters")?
        .get(name)?
        .as_u64()
}

/// Build the drop-forensics report for one run: group the recorded drops
/// by site+reason (with queue state at death) and cross-check the exact
/// per-reason totals against the metrics registry's counters.
///
/// Returns `None` when the trace or metrics block is disabled — there is
/// nothing to check (not a pass, not a failure).
pub fn forensics(trace: &Value, metrics: &Value) -> Option<Forensics> {
    if trace.get("enabled").and_then(Value::as_bool) != Some(true)
        || metrics.get("enabled").and_then(Value::as_bool) != Some(true)
    {
        return None;
    }
    let empty = Vec::new();
    let counts = trace
        .get("drop_counts")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let log = trace
        .get("drops")
        .and_then(Value::as_array)
        .unwrap_or(&empty);

    // Site+reason groups with ctx ranges from the detailed log.
    let mut rows: Vec<ForensicsRow> = Vec::new();
    for c in counts {
        let site = c.get("site").and_then(Value::as_str).unwrap_or("?");
        let reason = c.get("reason").and_then(Value::as_str).unwrap_or("?");
        let queue = c.get("queue").and_then(Value::as_u64);
        let mut depth: Option<(u64, u64)> = None;
        let mut buf: Option<(u64, u64)> = None;
        for d in log.iter().filter(|d| {
            d.get("site").and_then(Value::as_str) == Some(site)
                && d.get("reason").and_then(Value::as_str) == Some(reason)
                && d.get("queue").and_then(Value::as_u64) == queue
        }) {
            if let Some(v) = d.get("queue_depth").and_then(Value::as_u64) {
                depth = Some(depth.map_or((v, v), |(lo, hi)| (lo.min(v), hi.max(v))));
            }
            if let Some(v) = d.get("buffer_cells").and_then(Value::as_u64) {
                buf = Some(buf.map_or((v, v), |(lo, hi)| (lo.min(v), hi.max(v))));
            }
        }
        let mut detail = String::new();
        if let Some((lo, hi)) = depth {
            detail.push_str(&format!("depth {lo}..{hi}"));
        }
        if let Some((lo, hi)) = buf {
            if !detail.is_empty() {
                detail.push_str(", ");
            }
            detail.push_str(&format!("buf {}..{} cells", eng(lo as f64), eng(hi as f64)));
        }
        rows.push(ForensicsRow {
            site: site.into(),
            reason: reason.into(),
            tm: c.get("tm").and_then(Value::as_u64).unwrap_or(0),
            queue,
            count: c.get("count").and_then(Value::as_u64).unwrap_or(0),
            detail,
        });
    }
    rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.site.cmp(&b.site)));

    // Per-(reason, tm) totals from the exact aggregation.
    let mut totals: BTreeMap<(String, u64), u64> = BTreeMap::new();
    for c in counts {
        let reason = c.get("reason").and_then(Value::as_str).unwrap_or("?");
        let tm = c.get("tm").and_then(Value::as_u64).unwrap_or(0);
        let n = c.get("count").and_then(Value::as_u64).unwrap_or(0);
        *totals.entry((reason.to_string(), tm)).or_insert(0) += n;
    }

    let mut checks = Vec::new();
    let mut mismatches = Vec::new();
    for &(reason, tm) in DROP_CHECK_REASONS {
        let forensic = totals.remove(&(reason.to_string(), tm)).unwrap_or(0);
        if reason == "migration_fence" {
            // The migration protocol holds fenced packets; it never drops
            // them. A nonzero count means the fence broke.
            if forensic != 0 {
                mismatches.push(format!(
                    "migration_fence recorded {forensic} drops (must stay 0)"
                ));
            }
            checks.push(CheckRow {
                reason: reason.into(),
                tm,
                forensic,
                counter: 0,
                counter_name: "(must be zero)".into(),
                ok: forensic == 0,
            });
            continue;
        }
        let candidates = counter_candidates(reason, tm);
        let found = candidates
            .iter()
            .find_map(|&(s, n)| counter_lookup(metrics, s, n).map(|v| (s, n, v)));
        let Some((scope, name, counter)) = found else {
            // Counter absent on this target (e.g. no tm2 on RMT): the
            // forensic side must be silent too.
            if forensic != 0 {
                mismatches.push(format!(
                    "{reason} (tm{tm}): {forensic} forensic drops but no matching counter"
                ));
            }
            continue;
        };
        let ok = forensic == counter;
        if !ok {
            mismatches.push(format!(
                "{reason} (tm{tm}): forensics recorded {forensic} but {scope}/{name} = {counter}"
            ));
        }
        checks.push(CheckRow {
            reason: reason.into(),
            tm,
            forensic,
            counter,
            counter_name: format!("{scope}/{name}"),
            ok,
        });
    }
    // Anything the tracer recorded beyond the known reason set.
    for ((reason, tm), n) in totals {
        mismatches.push(format!(
            "unknown drop reason {reason:?} (tm{tm}) with {n} forensic drops"
        ));
    }
    Some(Forensics {
        rows,
        checks,
        mismatches,
    })
}

fn fmt_ns(ps: u64) -> String {
    format!("{:.3}ns", ps as f64 / 1e3)
}

/// Pretty-print reconstructed packet walks from a trace block. With
/// `only`, prints that packet's journey (or why it has none); otherwise
/// prints up to `limit` sampled packets and notes how many were omitted.
pub fn format_journeys(trace: &Value, only: Option<u64>, limit: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if trace.get("enabled").and_then(Value::as_bool) != Some(true) {
        out.push_str("journey tracing disabled (ADCP_TRACE=off and cfg.trace=false)\n");
        return out;
    }
    let empty = Vec::new();
    let hops = trace
        .get("hops")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let drops = trace
        .get("drops")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let mut by_pkt: BTreeMap<u64, Vec<&Value>> = BTreeMap::new();
    for h in hops {
        let pkt = h.get("pkt").and_then(Value::as_u64).unwrap_or(0);
        if only.is_none_or(|p| p == pkt) {
            by_pkt.entry(pkt).or_default().push(h);
        }
    }
    if let Some(p) = only {
        if !by_pkt.contains_key(&p) {
            let sample = trace.get("sample").and_then(Value::as_u64).unwrap_or(1);
            let _ = writeln!(
                out,
                "pkt {p}: no retained hops (not sampled at N={sample}, evicted, or never seen)"
            );
            return out;
        }
    }
    let total = by_pkt.len();
    for (pkt, mut phops) in by_pkt.into_iter().take(limit) {
        phops.sort_by_key(|h| {
            (
                h.get("enter_ps").and_then(Value::as_u64).unwrap_or(0),
                h.get("exit_ps").and_then(Value::as_u64).unwrap_or(0),
            )
        });
        let _ = writeln!(out, "pkt {pkt}:");
        for h in phops {
            let site = h.get("site").and_then(Value::as_str).unwrap_or("?");
            let enter = h.get("enter_ps").and_then(Value::as_u64).unwrap_or(0);
            let exit = h.get("exit_ps").and_then(Value::as_u64).unwrap_or(enter);
            let mut ctx = String::new();
            if let Some(d) = h.get("queue_depth").and_then(Value::as_u64) {
                let _ = write!(ctx, "  depth={d}");
            }
            if let Some(b) = h.get("buffer_cells").and_then(Value::as_u64) {
                let _ = write!(ctx, "  buf={b}");
            }
            if let Some(e) = h.get("epoch").and_then(Value::as_u64) {
                let _ = write!(ctx, "  epoch={e}");
            }
            if site == "drop" {
                let verdict = drops
                    .iter()
                    .find(|d| {
                        d.get("pkt").and_then(Value::as_u64) == Some(pkt)
                            && d.get("time_ps").and_then(Value::as_u64) == Some(enter)
                    })
                    .map(|d| {
                        format!(
                            "  {} @ {}",
                            d.get("reason").and_then(Value::as_str).unwrap_or("?"),
                            d.get("site").and_then(Value::as_str).unwrap_or("?"),
                        )
                    })
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  {:<14} {}{}{}",
                    "DROPPED",
                    fmt_ns(enter),
                    verdict,
                    ctx
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {site:<14} {} .. {}{ctx}",
                    fmt_ns(enter),
                    fmt_ns(exit)
                );
            }
        }
    }
    if total > limit {
        let _ = writeln!(
            out,
            "... {} more sampled packets (pass a packet id to --journeys)",
            total - limit
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_sim::time::SimTime;
    use adcp_sim::trace::{CtrlEvent, DropReason, HopCtx, JourneyTracer, Site};
    use adcp_sim::PortId;

    fn sample_trace() -> Value {
        let mut t = JourneyTracer::new(64);
        t.record_hop(
            1,
            Site::Rx(PortId(0)),
            SimTime(0),
            SimTime(500),
            HopCtx::NONE,
        );
        t.record_hop(
            1,
            Site::IngressPipe(0),
            SimTime(500),
            SimTime(900),
            HopCtx::NONE,
        );
        t.record_hop(
            1,
            Site::Tm1,
            SimTime(900),
            SimTime(1_500),
            HopCtx {
                queue_depth: Some(3),
                buffer_cells: Some(12),
                epoch: Some(1),
            },
        );
        t.record_hop(
            1,
            Site::Tx(PortId(2)),
            SimTime(1_500),
            SimTime(2_000),
            HopCtx::NONE,
        );
        t.record_drop(
            SimTime(950),
            2,
            Site::Tm1,
            DropReason::QueueTail { tm: 1, queue: 0 },
            HopCtx {
                queue_depth: Some(8),
                buffer_cells: Some(64),
                epoch: None,
            },
        );
        t.record_ctrl(
            SimTime(1_000),
            CtrlEvent::MigrationBegin {
                strategy: "drain",
                epoch: 2,
            },
        );
        t.to_json()
    }

    fn metrics_with(pairs: &[(&str, &str, u64)]) -> Value {
        let mut grouped: std::collections::BTreeMap<&str, Map> = Default::default();
        for &(scope, name, v) in pairs {
            grouped
                .entry(scope)
                .or_default()
                .insert(name.into(), Value::U64(v));
        }
        let mut scopes = Map::new();
        for (scope, counters) in grouped {
            let mut s = Map::new();
            s.insert("counters".into(), Value::Object(counters));
            scopes.insert(scope.into(), Value::Object(s));
        }
        let mut root = Map::new();
        root.insert("enabled".into(), Value::Bool(true));
        root.insert("scopes".into(), Value::Object(scopes));
        Value::Object(root)
    }

    #[test]
    fn chrome_export_has_tracks_spans_and_instants() {
        let doc = chrome_trace(&[ChromeRun {
            name: "paramserv/adcp".into(),
            trace: sample_trace(),
        }]);
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Value::as_str),
            Some("ns")
        );
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let ph = |e: &Value| e.get("ph").and_then(Value::as_str).unwrap().to_string();
        let spans: Vec<&Value> = events.iter().filter(|e| ph(e) == "X").collect();
        assert_eq!(spans.len(), 4, "one duration event per non-drop hop");
        let tm1 = spans
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("site"))
                    .and_then(Value::as_str)
                    == Some("tm1")
            })
            .unwrap();
        // 900ps enter -> 0.0009us, 600ps residency -> 0.0006us.
        assert!((tm1.get("ts").and_then(Value::as_f64).unwrap() - 0.0009).abs() < 1e-12);
        assert!((tm1.get("dur").and_then(Value::as_f64).unwrap() - 0.0006).abs() < 1e-12);
        let instants: Vec<&Value> = events.iter().filter(|e| ph(e) == "i").collect();
        assert_eq!(instants.len(), 2, "one drop + one ctrl instant");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| ph(e) == "M")
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"paramserv/adcp"));
        assert!(names.contains(&"tm1"));
        assert!(names.contains(&"ctrl"));
        assert!(names.contains(&"rx"));
    }

    #[test]
    fn fabric_chrome_export_binds_crossings_and_validates() {
        let devices = vec![
            FabricChromeDevice {
                device: 0,
                name: "leaf0".into(),
                trace: sample_trace(),
            },
            FabricChromeDevice {
                device: 4,
                name: "spine0".into(),
                trace: sample_trace(),
            },
        ];
        let crossings = vec![adcp_fabric::Crossing {
            pkt: 1,
            flow: 1001,
            from_device: 0,
            to_device: 4,
            depart: SimTime(2_000),
            arrive: SimTime(204_000),
        }];
        let overlay = vec![{
            let mut o = Map::new();
            o.insert(
                "name".into(),
                Value::String("microburst: tm1 depth 9".into()),
            );
            o.insert("cat".into(), Value::String("telemetry".into()));
            o.insert("ph".into(), Value::String("i".into()));
            o.insert("ts".into(), Value::F64(0.5));
            o.insert("pid".into(), Value::U64(4));
            o.insert("tid".into(), Value::U64(950));
            o.insert("s".into(), Value::String("p".into()));
            Value::Object(o)
        }];
        let doc = fabric_chrome_trace(&devices, &crossings, overlay);
        let schema = crate::schema::load_chrome_trace_schema().unwrap();
        crate::schema::validate(&doc, &schema).expect("fabric doc conforms to the chrome schema");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let ph = |e: &Value, want: &str| e.get("ph").and_then(Value::as_str) == Some(want);
        let start = events.iter().find(|e| ph(e, "s")).expect("flow start");
        let finish = events.iter().find(|e| ph(e, "f")).expect("flow finish");
        // Start leaves the transmitter's tx track; finish lands on the
        // receiver's rx track; the Chrome viewer binds them by id.
        assert_eq!(start.get("pid").and_then(Value::as_u64), Some(0));
        assert_eq!(finish.get("pid").and_then(Value::as_u64), Some(4));
        assert_eq!(start.get("id"), finish.get("id"));
        assert_eq!(finish.get("bp").and_then(Value::as_str), Some("e"));
        // Both devices' journey spans and the overlay instant survive.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| ph(e, "M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"leaf0"));
        assert!(names.contains(&"spine0"));
        assert!(events
            .iter()
            .any(|e| e.get("cat").and_then(Value::as_str) == Some("telemetry")));
    }

    #[test]
    fn forensics_cross_check_passes_on_agreeing_counters() {
        let trace = sample_trace();
        let metrics = metrics_with(&[
            ("tm1", "queue_drops", 1),
            ("tm1", "buffer_drops", 0),
            ("tm2", "queue_drops", 0),
            ("tm2", "buffer_drops", 0),
            ("mac", "fcs_drops", 0),
            ("parser", "errors", 0),
            ("drops", "filtered", 0),
            ("drops", "no_decision", 0),
            ("drops", "bad_port", 0),
        ]);
        let f = forensics(&trace, &metrics).unwrap();
        assert!(f.ok(), "mismatches: {:?}", f.mismatches);
        assert_eq!(f.rows.len(), 1);
        assert_eq!(f.rows[0].reason, "queue_tail");
        assert!(
            f.rows[0].detail.contains("depth 8..8"),
            "{}",
            f.rows[0].detail
        );
        let qt = f
            .checks
            .iter()
            .find(|c| c.reason == "queue_tail" && c.tm == 1)
            .unwrap();
        assert_eq!((qt.forensic, qt.counter), (1, 1));
    }

    #[test]
    fn forensics_cross_check_catches_unrecorded_drops() {
        // The switch counted two queue drops but forensics only saw one —
        // a drop happened without being recorded.
        let trace = sample_trace();
        let metrics = metrics_with(&[("tm1", "queue_drops", 2)]);
        let f = forensics(&trace, &metrics).unwrap();
        assert!(!f.ok());
        assert!(f.mismatches[0].contains("queue_tail"), "{:?}", f.mismatches);
    }

    #[test]
    fn forensics_skips_when_tracing_disabled() {
        let t = JourneyTracer::disabled();
        assert!(forensics(&t.to_json(), &metrics_with(&[])).is_none());
    }

    #[test]
    fn rmt_single_tm_counter_fallback() {
        // RMT scopes its only TM as `tm`; the tm1-keyed forensics must
        // find it through the candidate fallback.
        let trace = sample_trace();
        let metrics = metrics_with(&[
            ("tm", "queue_drops", 1),
            ("tm", "buffer_drops", 0),
            ("mac", "fcs_drops", 0),
            ("parser", "errors", 0),
            ("drops", "filtered", 0),
            ("drops", "no_decision", 0),
            ("drops", "bad_port", 0),
        ]);
        let f = forensics(&trace, &metrics).unwrap();
        assert!(f.ok(), "mismatches: {:?}", f.mismatches);
        let qt = f
            .checks
            .iter()
            .find(|c| c.reason == "queue_tail" && c.tm == 1)
            .unwrap();
        assert_eq!(qt.counter_name, "tm/queue_drops");
    }

    #[test]
    fn journey_printing_walks_and_terminates() {
        let trace = sample_trace();
        let s = format_journeys(&trace, Some(1), 10);
        assert!(s.contains("pkt 1:"), "{s}");
        assert!(s.contains("rx(p0)"), "{s}");
        assert!(s.contains("tx(p2)"), "{s}");
        assert!(s.contains("epoch=1"), "{s}");
        let missing = format_journeys(&trace, Some(99), 10);
        assert!(missing.contains("no retained hops"), "{missing}");
    }
}
