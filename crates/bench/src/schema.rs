//! Schema validation for exported artifacts.
//!
//! The JSON-Schema-subset validator moved into the substrate
//! ([`adcp_sim::schema`]) so the serving daemon can validate its rotating
//! metrics stream without depending on the bench harness; this module
//! re-exports it to keep the harness-side call sites
//! (`adcp-trace --validate`, conformance) stable.

pub use adcp_sim::schema::{
    load_chrome_trace_schema, load_metrics_schema, load_schema, load_telemetry_schema, validate,
};
