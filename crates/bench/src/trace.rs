//! Per-stage trace support for the `adcp-trace` binary.
//!
//! Runs one named application on one architecture variant and flattens the
//! [`AppReport`]'s embedded metrics block into printable per-stage rows.
//! The heavy lifting (registration, spans, export) lives in
//! `adcp_sim::metrics`; this module is presentation plus app dispatch.

use adcp_apps::driver::{AppReport, TargetKind};
use adcp_apps::{dbshuffle, flowlet, graphmine, groupcomm, kvcache, netlock, paramserv};
use serde::Value;

/// Application names `adcp-trace --app` accepts, in menu order.
pub const APP_NAMES: &[&str] = &[
    "paramserv",
    "dbshuffle",
    "graphmine",
    "groupcomm",
    "netlock",
    "kvcache",
    "flowlet",
];

/// Parse a `--target` argument. Accepts the report labels (`adcp`,
/// `rmt/pinned`, `rmt/recirc`) and dash-friendly aliases.
pub fn parse_target(s: &str) -> Option<TargetKind> {
    match s {
        "adcp" => Some(TargetKind::Adcp),
        "rmt/pinned" | "rmt-pinned" | "pinned" => Some(TargetKind::RmtPinned),
        "rmt/recirc" | "rmt-recirc" | "recirc" => Some(TargetKind::RmtRecirc),
        _ => None,
    }
}

/// Run one application on one target. `quick` shrinks the workload to the
/// same sizes the table-1 quick suite uses. Returns `None` for an unknown
/// app name.
pub fn run_one(app: &str, kind: TargetKind, quick: bool) -> Option<AppReport> {
    let report = match app {
        "paramserv" => {
            let cfg = if quick {
                paramserv::ParamServerCfg {
                    workers: 4,
                    model_size: 64,
                    width: 16,
                    seed: 1,
                }
            } else {
                paramserv::ParamServerCfg::default()
            };
            paramserv::run(kind, &cfg)
        }
        "dbshuffle" => {
            let mut cfg = dbshuffle::DbShuffleCfg::default();
            if quick {
                cfg.workload.rows_per_mapper = 150;
            }
            dbshuffle::run(kind, &cfg)
        }
        "graphmine" => {
            let mut cfg = graphmine::GraphMineCfg::default();
            if quick {
                cfg.workload.supersteps = 5;
                cfg.workload.edges = 3000;
            }
            graphmine::run(kind, &cfg)
        }
        "groupcomm" => {
            let mut cfg = groupcomm::GroupCommCfg::default();
            if quick {
                cfg.packets = 120;
            }
            groupcomm::run(kind, &cfg)
        }
        "netlock" => {
            let mut cfg = netlock::NetLockCfg::default();
            if quick {
                cfg.rounds = 3;
            }
            netlock::run(kind, &cfg)
        }
        "kvcache" => {
            let mut cfg = kvcache::KvCacheCfg::default();
            if quick {
                cfg.requests = 300;
            }
            kvcache::run(kind, &cfg).report
        }
        "flowlet" => {
            let mut cfg = flowlet::FlowletCfg::default();
            if quick {
                cfg.flows = 16;
                cfg.pkts_per_flow = 8;
            }
            flowlet::run(kind, &cfg)
        }
        _ => return None,
    };
    Some(report)
}

/// One flattened metric for the console table.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Stage scope (`parser`, `tm1`, …).
    pub scope: String,
    /// Metric kind (`counter`, `gauge`, `hist`, `series`).
    pub kind: &'static str,
    /// Metric name within the scope.
    pub name: String,
    /// Headline value (count for hists, offered samples for series).
    pub value: String,
    /// Kind-specific detail column.
    pub detail: String,
}

fn ns(ps: u64) -> String {
    format!("{:.1}ns", ps as f64 / 1e3)
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// Flatten an exported metrics block (`MetricsRegistry::to_json` shape)
/// into per-stage rows, preserving registration order.
pub fn flatten(metrics: &Value) -> Vec<TraceRow> {
    let mut rows = Vec::new();
    let Some(scopes) = metrics.get("scopes").and_then(Value::as_object) else {
        return rows;
    };
    for (scope, body) in scopes.iter() {
        for (kind, key) in [
            ("counter", "counters"),
            ("gauge", "gauges"),
            ("hist", "hists"),
            ("series", "series"),
        ] {
            let Some(group) = body.get(key).and_then(Value::as_object) else {
                continue;
            };
            for (name, v) in group.iter() {
                let (value, detail) = match kind {
                    "counter" => (v.as_u64().unwrap_or(0).to_string(), String::new()),
                    "gauge" => (u(v, "value").to_string(), format!("hwm={}", u(v, "hwm"))),
                    "hist" => (
                        u(v, "count").to_string(),
                        format!(
                            "p50={} p99={} max={}",
                            ns(u(v, "p50_ps")),
                            ns(u(v, "p99_ps")),
                            ns(u(v, "max_ps")),
                        ),
                    ),
                    _ => (
                        u(v, "offered").to_string(),
                        format!(
                            "kept={} stride={} max={}",
                            v.get("points")
                                .and_then(Value::as_array)
                                .map_or(0, <[Value]>::len),
                            u(v, "stride"),
                            v.get("points")
                                .and_then(Value::as_array)
                                .into_iter()
                                .flatten()
                                .filter_map(|p| p.as_array()?.get(1)?.as_u64())
                                .max()
                                .unwrap_or(0),
                        ),
                    ),
                };
                rows.push(TraceRow {
                    scope: scope.clone(),
                    kind,
                    name: name.clone(),
                    value,
                    detail,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_exports_nonempty_metrics() {
        let r = run_one("groupcomm", TargetKind::Adcp, true).expect("known app");
        assert!(r.metrics.get("enabled").and_then(Value::as_bool).unwrap());
        let rows = flatten(&r.metrics);
        assert!(
            rows.iter().any(|r| r.scope == "tx" && r.name == "packets"),
            "tx.packets missing from {rows:?}"
        );
        assert!(rows.iter().any(|r| r.kind == "hist" && r.name == "span_ps"));
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(run_one("nosuchapp", TargetKind::Adcp, true).is_none());
        assert!(parse_target("tofino").is_none());
        assert_eq!(parse_target("rmt-recirc"), Some(TargetKind::RmtRecirc));
    }
}
