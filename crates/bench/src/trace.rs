//! Per-stage trace support for the `adcp-trace` binary.
//!
//! Runs one named application on one architecture variant and flattens the
//! [`AppReport`]'s embedded metrics block into printable per-stage rows.
//! The heavy lifting (registration, spans, export) lives in
//! `adcp_sim::metrics`; this module is presentation plus app dispatch.

use adcp_apps::driver::{AppReport, TargetKind};
use adcp_apps::{
    dbshuffle, ddos, flowlet, graphmine, groupcomm, kvcache, migrate, netlock, paramserv,
};
use serde::Value;

/// Application names `adcp-trace --app` accepts, in menu order.
pub const APP_NAMES: &[&str] = &[
    "paramserv",
    "dbshuffle",
    "graphmine",
    "groupcomm",
    "netlock",
    "kvcache",
    "flowlet-ldf",
    "ddos",
    "partmigrate",
];

/// Parse a `--target` argument. Accepts the report labels (`adcp`,
/// `rmt/pinned`, `rmt/recirc`) and dash-friendly aliases.
pub fn parse_target(s: &str) -> Option<TargetKind> {
    match s {
        "adcp" => Some(TargetKind::Adcp),
        "rmt/pinned" | "rmt-pinned" | "pinned" => Some(TargetKind::RmtPinned),
        "rmt/recirc" | "rmt-recirc" | "recirc" => Some(TargetKind::RmtRecirc),
        _ => None,
    }
}

/// Run one application on one target. `quick` shrinks the workload to the
/// same sizes the table-1 quick suite uses. Returns `None` for an unknown
/// app name.
pub fn run_one(app: &str, kind: TargetKind, quick: bool) -> Option<AppReport> {
    run_one_with(app, kind, quick, None)
}

/// [`run_one`] with the driver's `--migrate` policy applied: `Some(policy)`
/// overrides the partmigrate controller strategy (`Some(Some(s))` picks a
/// strategy, `Some(None)` disables the controller). Apps without a
/// control-plane knob ignore it.
pub fn run_one_with(
    app: &str,
    kind: TargetKind,
    quick: bool,
    strategy: Option<Option<adcp_core::MigrationStrategy>>,
) -> Option<AppReport> {
    let report = match app {
        "paramserv" => {
            let cfg = if quick {
                paramserv::ParamServerCfg {
                    workers: 4,
                    model_size: 64,
                    width: 16,
                    seed: 1,
                    central_workers: 1,
                }
            } else {
                paramserv::ParamServerCfg::default()
            };
            paramserv::run(kind, &cfg)
        }
        "dbshuffle" => {
            let mut cfg = dbshuffle::DbShuffleCfg::default();
            if quick {
                cfg.workload.rows_per_mapper = 150;
            }
            dbshuffle::run(kind, &cfg)
        }
        "graphmine" => {
            let mut cfg = graphmine::GraphMineCfg::default();
            if quick {
                cfg.workload.supersteps = 5;
                cfg.workload.edges = 3000;
            }
            graphmine::run(kind, &cfg)
        }
        "groupcomm" => {
            let mut cfg = groupcomm::GroupCommCfg::default();
            if quick {
                cfg.packets = 120;
            }
            groupcomm::run(kind, &cfg)
        }
        "netlock" => {
            let mut cfg = netlock::NetLockCfg::default();
            if quick {
                cfg.rounds = 3;
            }
            netlock::run(kind, &cfg)
        }
        "kvcache" => {
            let mut cfg = kvcache::KvCacheCfg::default();
            if quick {
                cfg.requests = 300;
            }
            kvcache::run(kind, &cfg).report
        }
        "flowlet-ldf" => {
            let mut cfg = flowlet::LdfCfg::default();
            if quick {
                cfg.flows = 256;
                cfg.pkts = 1_500;
            }
            flowlet::run(kind, &cfg).report
        }
        "ddos" => {
            let mut cfg = ddos::DdosCfg::default();
            if quick {
                cfg.flows = 4_000;
                cfg.attackers = 4;
                cfg.pkts = 2_000;
                cfg.cool_pkts = 1_000;
                cfg.window_pkts = 200;
            }
            ddos::run(kind, &cfg).report
        }
        "partmigrate" => {
            let mut cfg = migrate::MigrateCfg::default();
            if quick {
                cfg.packets = 800;
            }
            if let Some(policy) = strategy {
                cfg.strategy = policy;
            }
            migrate::run(kind, &cfg).report
        }
        _ => return None,
    };
    Some(report)
}

/// One flattened metric for the console table.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Stage scope (`parser`, `tm1`, …).
    pub scope: String,
    /// Metric kind (`counter`, `gauge`, `hist`, `series`).
    pub kind: &'static str,
    /// Metric name within the scope.
    pub name: String,
    /// Headline value (count for hists, offered samples for series).
    pub value: String,
    /// Kind-specific detail column.
    pub detail: String,
}

fn ns(ps: u64) -> String {
    format!("{:.1}ns", ps as f64 / 1e3)
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// Flatten an exported metrics block (`MetricsRegistry::to_json` shape)
/// into per-stage rows, preserving registration order.
pub fn flatten(metrics: &Value) -> Vec<TraceRow> {
    let mut rows = Vec::new();
    let Some(scopes) = metrics.get("scopes").and_then(Value::as_object) else {
        return rows;
    };
    for (scope, body) in scopes.iter() {
        for (kind, key) in [
            ("counter", "counters"),
            ("gauge", "gauges"),
            ("hist", "hists"),
            ("series", "series"),
        ] {
            let Some(group) = body.get(key).and_then(Value::as_object) else {
                continue;
            };
            for (name, v) in group.iter() {
                let (value, detail) = match kind {
                    "counter" => (v.as_u64().unwrap_or(0).to_string(), String::new()),
                    "gauge" => (u(v, "value").to_string(), format!("hwm={}", u(v, "hwm"))),
                    "hist" => (
                        u(v, "count").to_string(),
                        format!(
                            "p50={} p99={} max={}",
                            ns(u(v, "p50_ps")),
                            ns(u(v, "p99_ps")),
                            ns(u(v, "max_ps")),
                        ),
                    ),
                    _ => (
                        u(v, "offered").to_string(),
                        format!(
                            "kept={} stride={} max={}",
                            v.get("points")
                                .and_then(Value::as_array)
                                .map_or(0, <[Value]>::len),
                            u(v, "stride"),
                            v.get("points")
                                .and_then(Value::as_array)
                                .into_iter()
                                .flatten()
                                .filter_map(|p| p.as_array()?.get(1)?.as_u64())
                                .max()
                                .unwrap_or(0),
                        ),
                    ),
                };
                rows.push(TraceRow {
                    scope: scope.clone(),
                    kind,
                    name: name.clone(),
                    value,
                    detail,
                });
            }
        }
    }
    rows
}

/// One line of a metrics diff (`adcp-trace --diff a.json b.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Stage scope.
    pub scope: String,
    /// Metric name (empty for whole-scope additions/removals).
    pub name: String,
    /// `a`'s value, printed (`-` when absent).
    pub a: String,
    /// `b`'s value, printed (`-` when absent).
    pub b: String,
    /// Signed delta for numeric pairs, empty otherwise.
    pub delta: String,
}

/// Pull the metrics block out of a loaded JSON document: accepts either a
/// raw `MetricsRegistry::to_json` export, a full `AppReport` (which embeds
/// one under `metrics`), or the `--json` wrapper (`{"name": [report]}`).
pub fn metrics_block(doc: &Value) -> Option<&Value> {
    if doc.get("scopes").is_some() {
        return Some(doc);
    }
    if let Some(m) = doc.get("metrics") {
        if m.get("scopes").is_some() {
            return Some(m);
        }
    }
    if let Some(obj) = doc.as_object() {
        for (_, v) in obj.iter() {
            if let Some(arr) = v.as_array() {
                if let Some(first) = arr.first() {
                    if let Some(m) = metrics_block(first) {
                        return Some(m);
                    }
                }
            }
        }
    }
    None
}

fn counter_like(v: &Value) -> Option<u64> {
    v.as_u64()
        .or_else(|| v.get("value").and_then(Value::as_u64))
}

/// Diff two metrics blocks: counter/gauge value changes plus scopes and
/// metrics present on only one side. Unchanged values are omitted; hists
/// and series are compared by their headline count only.
pub fn diff_metrics(a: &Value, b: &Value) -> Vec<DiffRow> {
    let empty = serde_json::Map::new();
    let scopes_of = |v: &Value| {
        v.get("scopes")
            .and_then(Value::as_object)
            .cloned()
            .unwrap_or_default()
    };
    let sa = scopes_of(a);
    let sb = scopes_of(b);
    let mut names: Vec<&String> = sa.iter().chain(sb.iter()).map(|(k, _)| k).collect();
    names.sort();
    names.dedup();
    let mut rows = Vec::new();
    for scope in names {
        match (sa.get(scope.as_str()), sb.get(scope.as_str())) {
            (Some(_), None) => rows.push(DiffRow {
                scope: scope.clone(),
                name: String::new(),
                a: "present".into(),
                b: "-".into(),
                delta: "scope removed".into(),
            }),
            (None, Some(_)) => rows.push(DiffRow {
                scope: scope.clone(),
                name: String::new(),
                a: "-".into(),
                b: "present".into(),
                delta: "scope added".into(),
            }),
            (Some(ba), Some(bb)) => {
                for key in ["counters", "gauges", "hists", "series"] {
                    let ga = ba.get(key).and_then(Value::as_object).unwrap_or(&empty);
                    let gb = bb.get(key).and_then(Value::as_object).unwrap_or(&empty);
                    let mut metric_names: Vec<&String> =
                        ga.iter().chain(gb.iter()).map(|(k, _)| k).collect();
                    metric_names.sort();
                    metric_names.dedup();
                    for name in metric_names {
                        let va = ga.get(name.as_str()).and_then(|v| match key {
                            "hists" => v.get("count").and_then(Value::as_u64),
                            "series" => v.get("offered").and_then(Value::as_u64),
                            _ => counter_like(v),
                        });
                        let vb = gb.get(name.as_str()).and_then(|v| match key {
                            "hists" => v.get("count").and_then(Value::as_u64),
                            "series" => v.get("offered").and_then(Value::as_u64),
                            _ => counter_like(v),
                        });
                        if va == vb {
                            continue;
                        }
                        let show =
                            |v: Option<u64>| v.map_or_else(|| "-".to_string(), |x| x.to_string());
                        let delta = match (va, vb) {
                            (Some(x), Some(y)) => format!("{:+}", y as i128 - x as i128),
                            _ => "only one side".into(),
                        };
                        rows.push(DiffRow {
                            scope: scope.clone(),
                            name: name.clone(),
                            a: show(va),
                            b: show(vb),
                            delta,
                        });
                    }
                }
            }
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_exports_nonempty_metrics() {
        let r = run_one("groupcomm", TargetKind::Adcp, true).expect("known app");
        assert!(r.metrics.get("enabled").and_then(Value::as_bool).unwrap());
        let rows = flatten(&r.metrics);
        assert!(
            rows.iter().any(|r| r.scope == "tx" && r.name == "packets"),
            "tx.packets missing from {rows:?}"
        );
        assert!(rows.iter().any(|r| r.kind == "hist" && r.name == "span_ps"));
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(run_one("nosuchapp", TargetKind::Adcp, true).is_none());
        assert!(parse_target("tofino").is_none());
        assert_eq!(parse_target("rmt-recirc"), Some(TargetKind::RmtRecirc));
    }

    #[test]
    fn partmigrate_trace_exports_the_ctrl_scope() {
        let r = run_one("partmigrate", TargetKind::Adcp, true).expect("known app");
        let rows = flatten(&r.metrics);
        assert!(
            rows.iter().any(|r| r.scope == "ctrl"
                && r.name == "migrations"
                && r.value.parse::<u64>().unwrap_or(0) >= 1),
            "ctrl.migrations missing or zero in {rows:?}"
        );
        assert!(rows
            .iter()
            .any(|r| r.scope == "ctrl" && r.name == "moved_keys"));
    }

    #[test]
    fn migrate_off_policy_disables_the_controller() {
        let r = run_one_with("partmigrate", TargetKind::Adcp, true, Some(None)).expect("known app");
        let rows = flatten(&r.metrics);
        for row in rows.iter().filter(|r| r.scope == "ctrl") {
            if row.kind == "counter" {
                assert_eq!(
                    row.value, "0",
                    "ctrl.{} recorded without a controller",
                    row.name
                );
            }
        }
    }

    #[test]
    fn diff_flags_changed_added_and_removed_metrics() {
        let a: Value = serde_json::from_str(
            r#"{"scopes": {
                "tx": {"counters": {"packets": 10}},
                "old": {"counters": {"x": 1}}
            }}"#,
        )
        .unwrap();
        let b: Value = serde_json::from_str(
            r#"{"scopes": {
                "tx": {"counters": {"packets": 12}},
                "ctrl": {"counters": {"migrations": 1}}
            }}"#,
        )
        .unwrap();
        let rows = diff_metrics(&a, &b);
        assert!(rows
            .iter()
            .any(|r| r.scope == "ctrl" && r.delta == "scope added"));
        assert!(rows
            .iter()
            .any(|r| r.scope == "old" && r.delta == "scope removed"));
        let tx = rows
            .iter()
            .find(|r| r.scope == "tx" && r.name == "packets")
            .expect("changed counter appears");
        assert_eq!(tx.delta, "+2");
        // Identical blocks diff to nothing.
        assert!(diff_metrics(&a, &a).is_empty());
    }

    #[test]
    fn diff_calls_out_the_int_scope_instead_of_silently_skipping_it() {
        // An export from a build that stamps INT gains a whole `int/*`
        // scope. Diffing it against a pre-INT export must say so
        // explicitly in both directions — not skip the one-sided scope.
        let pre: Value =
            serde_json::from_str(r#"{"scopes": {"tx": {"counters": {"packets": 10}}}}"#).unwrap();
        let post: Value = serde_json::from_str(
            r#"{"scopes": {
                "tx": {"counters": {"packets": 10}},
                "int": {"counters": {"stamps": 120, "postcards": 40, "truncated": 0}}
            }}"#,
        )
        .unwrap();
        let added = diff_metrics(&pre, &post);
        assert_eq!(added.len(), 1, "only the int scope differs: {added:?}");
        assert_eq!(
            (added[0].scope.as_str(), added[0].delta.as_str()),
            ("int", "scope added")
        );
        let removed = diff_metrics(&post, &pre);
        assert_eq!(removed.len(), 1);
        assert_eq!(
            (removed[0].scope.as_str(), removed[0].delta.as_str()),
            ("int", "scope removed")
        );
    }

    #[test]
    fn metrics_block_unwraps_reports() {
        let raw: Value = serde_json::from_str(r#"{"scopes": {}}"#).unwrap();
        assert!(metrics_block(&raw).is_some());
        let report: Value =
            serde_json::from_str(r#"{"app": "x", "metrics": {"scopes": {}}}"#).unwrap();
        assert!(metrics_block(&report).is_some());
        let wrapped: Value =
            serde_json::from_str(r#"{"adcp_trace": [{"metrics": {"scopes": {}}}]}"#).unwrap();
        assert!(metrics_block(&wrapped).is_some());
        let nothing: Value = serde_json::from_str(r#"{"a": 1}"#).unwrap();
        assert!(metrics_block(&nothing).is_none());
    }
}
