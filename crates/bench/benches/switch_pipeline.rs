//! Whole-switch simulation rate: how many simulated packets per host
//! second each model sustains (simulator performance, not modeled
//! line rate).

use adcp_apps::driver::TargetKind;
use adcp_apps::paramserv::{self, ParamServerCfg};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_switches(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_sim_rate");
    g.sample_size(10);
    let cfg = ParamServerCfg {
        workers: 8,
        model_size: 256,
        width: 16,
        seed: 1,
        central_workers: 1,
    };
    // 8 workers x 16 chunks = 128 packets per run on ADCP.
    g.throughput(Throughput::Elements(128));
    g.bench_function("adcp_paramserv_run", |b| {
        b.iter_batched(
            || cfg.clone(),
            |cfg| paramserv::run(TargetKind::Adcp, &cfg),
            BatchSize::SmallInput,
        )
    });
    // Scalar RMT: 8 x 256 = 2048 packets (plus recirculation).
    g.throughput(Throughput::Elements(2048));
    g.bench_function("rmt_recirc_paramserv_run", |b| {
        b.iter_batched(
            || cfg.clone(),
            |cfg| paramserv::run(TargetKind::RmtRecirc, &cfg),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_switches);
criterion_main!(benches);
