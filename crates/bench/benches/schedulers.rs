//! Traffic-manager scheduler throughput per policy.

use adcp_sim::packet::{FlowId, Packet};
use adcp_sim::sched::{Policy, ScheduledQueues};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_enq_deq");
    g.throughput(Throughput::Elements(1));
    for (name, policy) in [
        ("fifo", Policy::Fifo),
        ("priority", Policy::StrictPriority),
        ("drr", Policy::Drr { quantum: 1500 }),
        ("merge", Policy::MergeOrder),
        ("pifo", Policy::Pifo),
    ] {
        g.bench_function(name, |b| {
            let mut s = ScheduledQueues::new(16, 1024, policy);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let pkt = Packet::new(i, FlowId(i % 16), vec![0u8; 64]).with_sort_key(i);
                s.enqueue((i % 16) as usize, pkt);
                black_box(s.dequeue())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
