//! Match-table lookup throughput per match kind.

use adcp_lang::{
    ActionDef, Entry, FieldId, FieldRef, HeaderId, KeySpec, MatchKind, MatchValue, Region,
    TableDef, TableRuntime,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn table(kind: MatchKind) -> (TableDef, TableRuntime) {
    let def = TableDef {
        name: "t".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: FieldRef::new(HeaderId(0), FieldId(0)),
            kind,
            bits: 32,
        }),
        actions: vec![ActionDef::nop()],
        default_action: 0,
        default_params: vec![],
        size: 4096,
    };
    let mut rt = TableRuntime::new(&def);
    for i in 0..1024u64 {
        let value = match kind {
            MatchKind::Exact => MatchValue::Exact(i * 7),
            MatchKind::Lpm => MatchValue::Lpm {
                value: i << 20,
                len: 12 + (i % 16) as u8,
            },
            MatchKind::Ternary => MatchValue::Ternary {
                value: i * 7,
                mask: 0xFFFF_FF00,
                priority: (i % 32) as u16,
            },
            MatchKind::Range => MatchValue::Range {
                lo: i * 100,
                hi: i * 100 + 50,
            },
        };
        rt.insert(
            &def,
            Entry {
                value,
                action: 0,
                params: vec![],
            },
        )
        .unwrap();
    }
    (def, rt)
}

fn bench_lookups(c: &mut Criterion) {
    let mut g = c.benchmark_group("mat_lookup");
    g.throughput(Throughput::Elements(1));
    for kind in [
        MatchKind::Exact,
        MatchKind::Lpm,
        MatchKind::Ternary,
        MatchKind::Range,
    ] {
        let (_, rt) = table(kind);
        let mut i = 0u64;
        g.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                i = i.wrapping_add(97);
                black_box(rt.lookup(black_box(i % 120_000)).map(|e| e.action))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
