//! Parse-engine throughput: scalar header vs 16-wide array header.
//! (Fig. 6's premise is that array packets cost little extra to parse —
//! parse cost scales with structure, §3.3.)

use adcp_lang::{FieldDef, HeaderDef, HeaderId, ParserSpec, PhvLayout};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("parser");

    // Scalar: 4 scalar fields.
    let scalar_headers = vec![HeaderDef::new(
        "s",
        vec![
            FieldDef::scalar("a", 16),
            FieldDef::scalar("b", 32),
            FieldDef::scalar("c", 32),
            FieldDef::scalar("d", 48),
        ],
    )];
    let scalar_layout = PhvLayout::build(&scalar_headers);
    let scalar_spec = ParserSpec::single(HeaderId(0));
    let scalar_pkt = vec![0xA5u8; 64];

    g.throughput(Throughput::Elements(1));
    g.bench_function("scalar_4_fields", |b| {
        b.iter(|| {
            scalar_spec
                .parse(&scalar_headers, &scalar_layout, black_box(&scalar_pkt))
                .unwrap()
        })
    });

    // Array: 16-wide key + value arrays (the §3.2 packet format).
    let arr_headers = vec![HeaderDef::new(
        "kv",
        vec![
            FieldDef::scalar("op", 8),
            FieldDef::array("keys", 32, 16),
            FieldDef::array("vals", 32, 16),
        ],
    )];
    let arr_layout = PhvLayout::build(&arr_headers);
    let arr_spec = ParserSpec::single(HeaderId(0));
    let arr_pkt = vec![0x5Au8; 160];
    g.bench_function("array_16_wide", |b| {
        b.iter(|| {
            arr_spec
                .parse(&arr_headers, &arr_layout, black_box(&arr_pkt))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
