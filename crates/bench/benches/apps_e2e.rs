//! End-to-end application benchmarks (one full app run per iteration).

use adcp_apps::driver::TargetKind;
use adcp_apps::{dbshuffle, graphmine, kvcache};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps_e2e");
    g.sample_size(10);

    let db = dbshuffle::DbShuffleCfg {
        workload: adcp_workloads::shuffle::ShuffleWorkload {
            mappers: 4,
            reducers: 4,
            rows_per_mapper: 200,
            selectivity: 0.5,
            distinct_keys: 32,
            skew: 0.9,
        },
        coordinator_port: 15,
        seed: 1,
        central_workers: 1,
    };
    g.bench_function("dbshuffle_adcp", |b| {
        b.iter_batched(
            || db.clone(),
            |cfg| dbshuffle::run(TargetKind::Adcp, &cfg),
            BatchSize::SmallInput,
        )
    });

    let gm = graphmine::GraphMineCfg {
        workload: adcp_workloads::graph::BspWorkload {
            partitions: 4,
            vertices: 500,
            edges: 2000,
            supersteps: 5,
        },
        base_candidates: 2,
        seed: 1,
    };
    g.bench_function("graphmine_adcp", |b| {
        b.iter_batched(
            || gm.clone(),
            |cfg| graphmine::run(TargetKind::Adcp, &cfg),
            BatchSize::SmallInput,
        )
    });

    let kv = kvcache::KvCacheCfg {
        requests: 300,
        ..Default::default()
    };
    g.bench_function("kvcache_adcp", |b| {
        b.iter_batched(
            || kv.clone(),
            |cfg| kvcache::run(TargetKind::Adcp, &cfg),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
