//! # adcp-analytic — the paper's quantitative arguments as code
//!
//! Self-contained analytic models (no simulator dependency):
//!
//! * [`scaling`] — the line-rate identity behind Tables 2 and 3
//!   (`freq = per-pipeline bandwidth / (8 × min packet)`), reproducing both
//!   tables row for row, plus the §3.3 TM pipeline-count projection.
//! * [`feasibility`] — §4's first-order chip arguments: the frequency
//!   dividend (power/area), g-cell routing congestion for monolithic vs
//!   interleaved TM floorplans, and the multi-clock MAT memory envelope.
//! * [`keyrate`] — §3.2's keys-per-second model (Fig. 6): key rate =
//!   packet rate × keys per packet, with the pps/bandwidth crossover.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod feasibility;
pub mod keyrate;
pub mod scaling;

pub use feasibility::{
    estimate_congestion, max_multiclock_width, multiclock_sweep, relative_dynamic_power,
    relative_logic_area, CongestionEstimate, CongestionInput, MultiClockPoint, TmFloorplan,
};
pub use keyrate::{key_rate, width_sweep, KeyRatePoint};
pub use scaling::{
    adcp_row, min_packet_for_freq, required_freq_ghz, rmt_row, table2, table3, tm_pipeline_count,
    ScalingRow, PAPER_TABLE2,
};
