//! First-order chip-feasibility models for §4.
//!
//! The paper's feasibility discussion makes three quantitative arguments,
//! each modeled here at the same first-order level the paper uses:
//!
//! 1. **Frequency dividend**: demultiplexed pipelines clock lower, which
//!    lowers dynamic power (`P ∝ f·V²`, with voltage itself roughly linear
//!    in frequency near the design point) and lets synthesis use smaller,
//!    slower gates (area relief).
//! 2. **Routing congestion**: the TMs are heavily shared IP blocks; the
//!    g-cell congestion heuristic estimates demand/capacity per routing
//!    cell for a monolithic vs an interleaved TM floorplan.
//! 3. **Multi-clock MAT memory**: serving a width-`w` array by clocking
//!    the table memory `w×` the pipeline clock is feasible only while
//!    `w × f_pipe` stays under the SRAM's maximum frequency.

use serde::Serialize;

// ---------------------------------------------------------------------
// 1. Frequency dividend
// ---------------------------------------------------------------------

/// Relative dynamic power of running logic at `f_new` vs `f_base`,
/// assuming voltage scales ~linearly with frequency in the DVFS window:
/// `P ∝ f · V² ∝ f³` (clamped to the cubic window edges).
pub fn relative_dynamic_power(f_base_ghz: f64, f_new_ghz: f64) -> f64 {
    assert!(f_base_ghz > 0.0 && f_new_ghz > 0.0);
    (f_new_ghz / f_base_ghz).powi(3)
}

/// Relative combinational area when timing closes at a lower frequency:
/// slower targets let synthesis pick smaller cells and fewer pipeline
/// buffers. Empirical first-order: area shrinks ~20% per halving of
/// frequency, floored at 60%.
pub fn relative_logic_area(f_base_ghz: f64, f_new_ghz: f64) -> f64 {
    assert!(f_base_ghz > 0.0 && f_new_ghz > 0.0);
    let halvings = (f_base_ghz / f_new_ghz).log2();
    (1.0 - 0.20 * halvings).max(0.60)
}

// ---------------------------------------------------------------------
// 2. g-cell routing congestion
// ---------------------------------------------------------------------

/// Floorplan style for the traffic managers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TmFloorplan {
    /// One compact, area-efficient TM block: every pipeline's wires route
    /// to one neighbourhood of the die.
    Monolithic,
    /// TM buffer banks spread across the layout, interleaved with the
    /// pipelines they serve (the mitigation §4 recommends).
    Interleaved {
        /// Number of banks the TM is split into.
        banks: u32,
    },
}

/// Inputs to the congestion estimate.
#[derive(Debug, Clone, Serialize)]
pub struct CongestionInput {
    /// Pipelines the TM connects (each side).
    pub pipelines: u32,
    /// PHV width in bits — the bus each pipeline routes to the TM.
    pub phv_bits: u32,
    /// Routing tracks available per g-cell edge.
    pub tracks_per_gcell: u32,
    /// G-cells along the perimeter of one TM block/bank.
    pub gcells_per_block_edge: u32,
}

/// Result of the g-cell congestion estimate.
#[derive(Debug, Clone, Serialize)]
pub struct CongestionEstimate {
    /// Peak demand/capacity ratio at the block boundary (>1 = unroutable
    /// without detours; EDA folklore treats >0.8 as risky).
    pub peak_utilization: f64,
    /// Total signal wires crossing into TM block(s).
    pub total_wires: u64,
}

/// Estimate boundary routing congestion for a TM floorplan.
///
/// Model: every pipeline routes a `phv_bits`-wide bus to a TM block. A
/// block with perimeter `4 × gcells_per_block_edge` g-cells offers
/// `perimeter × tracks_per_gcell` crossing tracks. A monolithic TM takes
/// every bus at one block; interleaving splits buses over `banks` blocks
/// (each bank still receives every pipeline, but only `1/banks` of the
/// bus width — the buffer is striped).
pub fn estimate_congestion(input: &CongestionInput, plan: TmFloorplan) -> CongestionEstimate {
    let total_wires = input.pipelines as u64 * input.phv_bits as u64;
    let per_block_capacity =
        4.0 * input.gcells_per_block_edge as f64 * input.tracks_per_gcell as f64;
    let peak = match plan {
        TmFloorplan::Monolithic => total_wires as f64 / per_block_capacity,
        TmFloorplan::Interleaved { banks } => {
            let banks = banks.max(1) as f64;
            // Striped: each bank sees total_wires / banks, and spreading
            // the banks across the die also shortens the average route,
            // relieving through-traffic by ~the same factor again (first
            // order: interior g-cells no longer funnel every bus).
            (total_wires as f64 / banks) / per_block_capacity
        }
    };
    CongestionEstimate {
        peak_utilization: peak,
        total_wires,
    }
}

// ---------------------------------------------------------------------
// 3. Multi-clock MAT memory
// ---------------------------------------------------------------------

/// Feasibility of one (array width, pipeline frequency) design point.
#[derive(Debug, Clone, Serialize)]
pub struct MultiClockPoint {
    /// Array width served.
    pub width: u32,
    /// Pipeline frequency, GHz.
    pub pipe_ghz: f64,
    /// Required memory frequency, GHz (`width × pipe`).
    pub mem_ghz: f64,
    /// Whether the SRAM can be clocked that fast.
    pub feasible: bool,
}

/// Sweep array widths for a pipeline frequency against an SRAM limit.
/// §4: "if we wish to support an array width of n, that memory could be
/// clocked n times faster than the pipeline".
pub fn multiclock_sweep(pipe_ghz: f64, widths: &[u32], sram_max_ghz: f64) -> Vec<MultiClockPoint> {
    widths
        .iter()
        .map(|&w| {
            let mem = pipe_ghz * w as f64;
            MultiClockPoint {
                width: w,
                pipe_ghz,
                mem_ghz: mem,
                feasible: mem <= sram_max_ghz,
            }
        })
        .collect()
}

/// The widest array a multi-clock MAT can serve at a pipeline frequency.
pub fn max_multiclock_width(pipe_ghz: f64, sram_max_ghz: f64) -> u32 {
    (sram_max_ghz / pipe_ghz).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_drops_superlinearly_with_frequency() {
        // Table 3: 1.62 GHz -> 0.60 GHz is a ~20x dynamic power reduction.
        let rel = relative_dynamic_power(1.62, 0.60);
        assert!((0.03..0.08).contains(&rel), "rel = {rel}");
        assert_eq!(relative_dynamic_power(1.0, 1.0), 1.0);
    }

    #[test]
    fn area_shrinks_but_floors() {
        let a = relative_logic_area(1.62, 0.60);
        assert!((0.6..0.9).contains(&a), "a = {a}");
        assert_eq!(relative_logic_area(2.0, 0.125), 0.60, "floored");
        assert_eq!(relative_logic_area(1.0, 1.0), 1.0);
    }

    #[test]
    fn monolithic_tm_congests_as_pipelines_grow() {
        let base = CongestionInput {
            pipelines: 8,
            phv_bits: 4096,
            tracks_per_gcell: 200,
            gcells_per_block_edge: 40,
        };
        let small = estimate_congestion(&base, TmFloorplan::Monolithic);
        let big = estimate_congestion(
            &CongestionInput {
                pipelines: 64, // §3.3's projection for 51.2T demuxed designs
                ..base.clone()
            },
            TmFloorplan::Monolithic,
        );
        assert!(big.peak_utilization > small.peak_utilization * 7.0);
        assert!(
            big.peak_utilization > 1.0,
            "64 pipelines into one block should be unroutable: {}",
            big.peak_utilization
        );
    }

    #[test]
    fn interleaving_relieves_congestion() {
        let input = CongestionInput {
            pipelines: 64,
            phv_bits: 4096,
            tracks_per_gcell: 200,
            gcells_per_block_edge: 40,
        };
        let mono = estimate_congestion(&input, TmFloorplan::Monolithic);
        let inter = estimate_congestion(&input, TmFloorplan::Interleaved { banks: 16 });
        assert!(
            inter.peak_utilization < mono.peak_utilization / 8.0,
            "mono={} inter={}",
            mono.peak_utilization,
            inter.peak_utilization
        );
        assert_eq!(mono.total_wires, inter.total_wires);
    }

    #[test]
    fn multiclock_width_limited_by_sram() {
        // At RMT's 1.62 GHz, a 16-wide multi-clock MAT needs 25.9 GHz SRAM
        // — absurd. At ADCP's 0.60 GHz it needs 9.6 GHz — still beyond a
        // ~4 GHz SRAM, capping multi-clock width at 6.
        let pts = multiclock_sweep(1.62, &[1, 2, 4, 8, 16], 4.0);
        assert!(pts[0].feasible && pts[1].feasible);
        assert!(!pts[4].feasible);
        assert!((pts[4].mem_ghz - 25.92).abs() < 0.01);
        assert_eq!(max_multiclock_width(0.60, 4.0), 6);
        assert_eq!(max_multiclock_width(1.62, 4.0), 2);
    }

    #[test]
    fn sweep_is_monotone_in_width() {
        let pts = multiclock_sweep(0.60, &[1, 2, 4, 8, 16, 32], 4.0);
        for w in pts.windows(2) {
            assert!(w[1].mem_ghz > w[0].mem_ghz);
            // Once infeasible, stays infeasible.
            assert!(w[0].feasible || !w[1].feasible);
        }
    }
}
