//! The port-scaling arithmetic behind Tables 2 and 3.
//!
//! Every row of both tables satisfies one identity:
//!
//! ```text
//! pipeline_freq [Hz] = per_pipeline_bandwidth [bit/s] / (8 × min_packet [B])
//! ```
//!
//! because a line-rate pipeline must retire one packet per cycle, and the
//! worst case is back-to-back minimum-size packets. RMT *multiplexes*
//! ports into pipelines (per-pipeline bandwidth = ports_per_pipe × port
//! speed, so frequency pressure *rises* with port speed); ADCP
//! *demultiplexes* ports across pipelines (per-pipeline bandwidth = port
//! speed / m, so frequency pressure *falls*). This module reproduces both
//! tables exactly and extends them to future port speeds.

use serde::Serialize;

/// Minimum on-wire Ethernet packet: 64 B frame + 20 B preamble/IFG.
pub const MIN_WIRE_BYTES: f64 = 84.0;

/// One row of a scaling table.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Aggregate switch throughput in Gbps.
    pub throughput_gbps: u64,
    /// Port speed in Gbps.
    pub port_speed_gbps: u32,
    /// Number of (ingress) pipelines.
    pub num_pipelines: u32,
    /// Ports per pipeline. Fractional for demultiplexed designs
    /// (0.5 = each port split over two pipelines).
    pub ports_per_pipeline: f64,
    /// Minimum packet the design assumes, bytes on the wire.
    pub min_packet_bytes: u32,
    /// Pipeline frequency required for line rate, GHz.
    pub pipeline_freq_ghz: f64,
}

/// Required pipeline frequency (GHz) for a pipeline carrying
/// `pipe_gbps` of bandwidth at a `min_pkt` byte minimum packet.
pub fn required_freq_ghz(pipe_gbps: f64, min_pkt: f64) -> f64 {
    pipe_gbps / (8.0 * min_pkt)
}

/// The minimum packet size (bytes) a pipeline of `pipe_gbps` must assume
/// to stay at or below `freq_ghz`.
pub fn min_packet_for_freq(pipe_gbps: f64, freq_ghz: f64) -> f64 {
    pipe_gbps / (8.0 * freq_ghz)
}

/// An RMT-style (multiplexed) design point.
pub fn rmt_row(
    port_speed_gbps: u32,
    num_ports: u32,
    num_pipelines: u32,
    freq_cap_ghz: f64,
) -> ScalingRow {
    let ports_per_pipe = num_ports as f64 / num_pipelines as f64;
    let pipe_gbps = ports_per_pipe * port_speed_gbps as f64;
    // The design either fits minimum Ethernet packets under the frequency
    // cap, or must assume larger packets.
    let natural_freq = required_freq_ghz(pipe_gbps, MIN_WIRE_BYTES);
    let (min_pkt, freq) = if natural_freq <= freq_cap_ghz {
        (MIN_WIRE_BYTES, natural_freq)
    } else {
        (min_packet_for_freq(pipe_gbps, freq_cap_ghz), freq_cap_ghz)
    };
    ScalingRow {
        throughput_gbps: num_ports as u64 * port_speed_gbps as u64,
        port_speed_gbps,
        num_pipelines,
        ports_per_pipeline: ports_per_pipe,
        min_packet_bytes: min_pkt.round() as u32,
        pipeline_freq_ghz: round2(freq),
    }
}

/// An ADCP-style (demultiplexed) design point: each port split across
/// `demux` pipelines, minimum Ethernet packets kept.
pub fn adcp_row(port_speed_gbps: u32, num_ports: u32, demux: u32) -> ScalingRow {
    let pipe_gbps = port_speed_gbps as f64 / demux as f64;
    ScalingRow {
        throughput_gbps: num_ports as u64 * port_speed_gbps as u64,
        port_speed_gbps,
        num_pipelines: num_ports * demux,
        ports_per_pipeline: 1.0 / demux as f64,
        min_packet_bytes: MIN_WIRE_BYTES as u32,
        pipeline_freq_ghz: round2(required_freq_ghz(pipe_gbps, MIN_WIRE_BYTES)),
    }
}

/// The paper's Table 2 as *printed* (throughput Gbps, port Gbps,
/// pipelines, ports/pipe, min packet B, freq GHz).
///
/// Note: the printed row 4 ("25.6 Tbps, 800 G, 8 pipelines, 8 ports per
/// pipeline") is internally inconsistent — 8 × 8 × 800 G is 51.2 Tbps, and
/// the printed 495 B / 1.62 GHz pair is only consistent with 8 ports per
/// pipeline. The derived table below keeps the printed per-pipeline
/// figures (which is what the scaling argument rests on) and reports the
/// implied aggregate throughput; the regenerator prints both and flags the
/// difference.
pub const PAPER_TABLE2: [(u64, u32, u32, f64, u32, f64); 5] = [
    (640, 10, 1, 64.0, 84, 0.95),
    (6_400, 100, 4, 16.0, 160, 1.25),
    (12_800, 400, 4, 8.0, 247, 1.62),
    (25_600, 800, 8, 8.0, 495, 1.62),
    (51_200, 1_600, 8, 4.0, 495, 1.62),
];

/// Table 2 re-derived from the line-rate identity, row for row.
pub fn table2() -> Vec<ScalingRow> {
    vec![
        rmt_row(10, 64, 1, 0.96),   // 640 Gbps, 0.95 GHz natural
        rmt_row(100, 64, 4, 1.25),  // 6.4 Tbps
        rmt_row(400, 32, 4, 1.62),  // 12.8 Tbps
        rmt_row(800, 64, 8, 1.62),  // printed as 25.6 Tbps; see PAPER_TABLE2
        rmt_row(1600, 32, 8, 1.62), // 51.2 Tbps
    ]
}

/// The paper's Table 3: 800 G and 1.6 T ports, multiplexed (8 or 4 per
/// pipe at 495 B) vs demultiplexed 1:2 at 84 B.
pub fn table3() -> Vec<ScalingRow> {
    vec![
        rmt_row(800, 32, 4, 1.62),
        adcp_row(800, 32, 2),
        rmt_row(1600, 32, 8, 1.62),
        adcp_row(1600, 32, 2),
    ]
}

/// §3.3's projection: pipelines a TM must serve as demultiplexed designs
/// scale ("we anticipate that this number will increase to 64 in 51.2 Tbps
/// switches and double for 102.4 Tbps").
pub fn tm_pipeline_count(throughput_gbps: u64, port_speed_gbps: u32, demux: u32) -> u32 {
    (throughput_gbps / port_speed_gbps as u64) as u32 * demux
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_rows() {
        let t = table2();
        // (throughput, port, pipes, ports/pipe, min pkt, freq)
        for (row, e) in t.iter().zip(PAPER_TABLE2) {
            // Port speed, pipeline count, ports/pipe, min packet, and
            // frequency all match the printed table; the throughput label
            // differs only on the inconsistent row 4 (see PAPER_TABLE2).
            assert_eq!(row.port_speed_gbps, e.1);
            assert_eq!(row.num_pipelines, e.2);
            assert!((row.ports_per_pipeline - e.3).abs() < 1e-9, "{row:?}");
            // +-1 B slack: the paper rounds 493.8 B up to 495 B.
            assert!(
                (row.min_packet_bytes as i64 - e.4 as i64).abs() <= 1,
                "{row:?}"
            );
            assert!((row.pipeline_freq_ghz - e.5).abs() < 0.011, "{row:?}");
        }
        // Throughput labels match except the paper's inconsistent row 4.
        for (i, (row, e)) in t.iter().zip(PAPER_TABLE2).enumerate() {
            if i == 3 {
                assert_eq!(row.throughput_gbps, 51_200, "derived from 8x8x800G");
            } else {
                assert_eq!(row.throughput_gbps, e.0);
            }
        }
    }

    #[test]
    fn table3_matches_paper_rows() {
        let t = table3();
        // 800G multiplexed: 8 ports/pipe? The paper's Table 3 lists
        // (800, 8/pipe, 495B, 1.62) and (800, 0.5, 84, 0.60),
        // (1600, 4/pipe, 495, 1.62) and (1600, 0.5, 84, 1.19).
        assert!((494..=495).contains(&t[0].min_packet_bytes));
        assert!((t[0].pipeline_freq_ghz - 1.62).abs() < 0.01);
        assert!((t[0].ports_per_pipeline - 8.0).abs() < 1e-9);

        assert_eq!(t[1].min_packet_bytes, 84);
        assert!((t[1].pipeline_freq_ghz - 0.60).abs() < 0.01);
        assert!((t[1].ports_per_pipeline - 0.5).abs() < 1e-9);

        assert!((494..=495).contains(&t[2].min_packet_bytes));
        assert!((t[2].pipeline_freq_ghz - 1.62).abs() < 0.01);
        assert!((t[2].ports_per_pipeline - 4.0).abs() < 1e-9);

        assert_eq!(t[3].min_packet_bytes, 84);
        assert!((t[3].pipeline_freq_ghz - 1.19).abs() < 0.01);
    }

    #[test]
    fn identity_between_freq_and_min_packet() {
        // The two helpers are inverses.
        for gbps in [100.0, 400.0, 3200.0] {
            for pkt in [84.0, 247.0, 495.0] {
                let f = required_freq_ghz(gbps, pkt);
                let p = min_packet_for_freq(gbps, f);
                assert!((p - pkt).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn paper_quote_10ghz_unviable() {
        // "64x 100 Gbps ports can generate just about 9.5 Bpps. Clearly, a
        // 10 GHz processor is not a viable option" — single pipeline case.
        let f = required_freq_ghz(6_400.0, MIN_WIRE_BYTES);
        assert!((f - 9.52).abs() < 0.01, "freq = {f}");
    }

    #[test]
    fn demux_halves_frequency() {
        let mux = rmt_row(800, 32, 32, 100.0); // one port per pipe, uncapped
        let demux = adcp_row(800, 32, 2);
        // 0.05 slack: both figures are rounded to 2 decimals first.
        assert!((mux.pipeline_freq_ghz / demux.pipeline_freq_ghz - 2.0).abs() < 0.05);
    }

    #[test]
    fn tm_pipeline_projection() {
        // 51.2T of 1.6T ports at 1:2 -> 64 pipelines; 102.4T doubles.
        assert_eq!(tm_pipeline_count(51_200, 1_600, 2), 64);
        assert_eq!(tm_pipeline_count(102_400, 1_600, 2), 128);
    }
}
