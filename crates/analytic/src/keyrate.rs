//! The keys-per-second model behind §3.2 and Figure 6.
//!
//! "For applications, the performance of a switch is connected to the rate
//! of *keys* rather than the packets it can process. [...] By supporting
//! 8- or 16-wide array processing, the ADCP architecture can push that
//! limit by one order of magnitude simply by allowing the application to
//! pack 8 or 16 keys per packet."
//!
//! The model: a switch retires `pps` packets per second (capped by its
//! pipelines' clocks); an application observes `pps × keys_per_packet`
//! key-operations per second. On RMT, multi-key packets cost replicated
//! tables (Fig. 3), so applications "go scalar" and keys/pkt is pinned
//! at 1; on ADCP, keys/pkt = the array width.

use serde::Serialize;

/// One design point of the key-rate model.
#[derive(Debug, Clone, Serialize)]
pub struct KeyRatePoint {
    /// Keys packed per packet.
    pub keys_per_packet: u32,
    /// Frame bytes of the packet carrying them.
    pub frame_bytes: u32,
    /// Packet rate the switch sustains, packets/s.
    pub pps: f64,
    /// Resulting key-operation rate, keys/s.
    pub keys_per_sec: f64,
    /// Goodput fraction (key bytes / wire bytes).
    pub goodput: f64,
}

/// Bytes of header+framing per packet besides the keys themselves.
pub const PACKET_OVERHEAD_BYTES: u32 = 42; // eth-ish header + app header

/// Compute a key-rate point.
///
/// * `switch_pps_cap` — packets/s the pipelines retire (e.g. 5–6 G for a
///   12.8 Tbps RMT, per §2 ②).
/// * `switch_gbps` — aggregate bandwidth; small packets may be pps-bound,
///   large ones bandwidth-bound.
/// * `key_bytes` — bytes per key (key or key+value).
/// * `keys_per_packet` — array width packed.
pub fn key_rate(
    switch_pps_cap: f64,
    switch_gbps: f64,
    key_bytes: u32,
    keys_per_packet: u32,
) -> KeyRatePoint {
    let frame = PACKET_OVERHEAD_BYTES + key_bytes * keys_per_packet;
    let wire = frame.max(64) + 20;
    let bw_pps = switch_gbps * 1e9 / (wire as f64 * 8.0);
    let pps = switch_pps_cap.min(bw_pps);
    KeyRatePoint {
        keys_per_packet,
        frame_bytes: frame,
        pps,
        keys_per_sec: pps * keys_per_packet as f64,
        goodput: (key_bytes * keys_per_packet) as f64 / wire as f64,
    }
}

/// Sweep array widths (the Fig. 6 x-axis).
pub fn width_sweep(
    switch_pps_cap: f64,
    switch_gbps: f64,
    key_bytes: u32,
    widths: &[u32],
) -> Vec<KeyRatePoint> {
    widths
        .iter()
        .map(|&w| key_rate(switch_pps_cap, switch_gbps, key_bytes, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RMT_PPS: f64 = 5.5e9; // "5 to 6 Bpps" (§2 ②)
    const RMT_GBPS: f64 = 12_800.0;

    #[test]
    fn scalar_rmt_capped_at_packet_rate() {
        let p = key_rate(RMT_PPS, RMT_GBPS, 8, 1);
        // "any application logic we perform on that switch will be capped
        // at 6 Bops/s".
        assert!((p.keys_per_sec - 5.5e9).abs() < 1e6);
        assert!(p.goodput < 0.1, "scalar packets have subpar goodput");
    }

    #[test]
    fn sixteen_wide_gives_order_of_magnitude() {
        let narrow = key_rate(RMT_PPS, RMT_GBPS, 8, 1);
        let wide = key_rate(RMT_PPS, RMT_GBPS, 8, 16);
        let boost = wide.keys_per_sec / narrow.keys_per_sec;
        assert!(
            (10.0..=16.0).contains(&boost),
            "§3.2 promises ~one order of magnitude; got {boost}"
        );
        assert!(wide.goodput > narrow.goodput * 5.0);
    }

    #[test]
    fn very_wide_packets_become_bandwidth_bound() {
        // At some width the packet is large enough that bandwidth, not
        // pps, binds — the curve bends (visible in the fig6 regenerator).
        let pts = width_sweep(RMT_PPS, RMT_GBPS, 32, &[1, 2, 4, 8, 16, 32, 64, 128]);
        let pps_bound = pts.iter().filter(|p| p.pps >= RMT_PPS * 0.999).count();
        assert!(pps_bound >= 3, "narrow widths are pps-bound");
        let last = pts.last().unwrap();
        assert!(last.pps < RMT_PPS * 0.9, "widest is bandwidth-bound");
        // keys/s still monotone non-decreasing.
        for w in pts.windows(2) {
            assert!(w[1].keys_per_sec >= w[0].keys_per_sec * 0.999);
        }
    }

    #[test]
    fn goodput_improves_with_packing() {
        let pts = width_sweep(RMT_PPS, RMT_GBPS, 8, &[1, 4, 16]);
        assert!(pts[0].goodput < pts[1].goodput);
        assert!(pts[1].goodput < pts[2].goodput);
    }
}
