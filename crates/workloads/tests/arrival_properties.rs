//! Property tests for the open-loop serving arrival processes (`adcpd`'s
//! traffic substrate): the diurnal rate must follow the configured
//! profile, burst episodes must be a pure function of the seed, and the
//! offered load must be independent of how (or how fast) a consumer
//! drains the source — open-loop by construction.

use adcp_sim::rng::SimRng;
use adcp_sim::time::{Duration, SimTime};
use adcp_workloads::arrival::{DiurnalCfg, MmppCfg, OpenLoopSource};

fn diurnal(base_pps: f64, amplitude: f64) -> DiurnalCfg {
    DiurnalCfg {
        base_pps,
        amplitude,
        period: Duration::from_us(200),
        phase: 0.0,
    }
}

fn bursty() -> MmppCfg {
    MmppCfg {
        burst_factor: 5.0,
        mean_quiet: Duration::from_us(40),
        mean_burst: Duration::from_us(8),
    }
}

/// Expected arrival count in `[a, b)` under the diurnal profile, by
/// numerically integrating the instantaneous rate.
fn expected_count(cfg: &DiurnalCfg, a: SimTime, b: SimTime) -> f64 {
    let steps = 1_000u64;
    let span = b.as_ps() - a.as_ps();
    let dt = span as f64 / steps as f64;
    (0..steps)
        .map(|i| {
            let t = SimTime(a.as_ps() + (i as f64 * dt) as u64);
            cfg.rate_at(t) * dt / 1e12
        })
        .sum()
}

#[test]
fn diurnal_rate_follows_configured_profile() {
    // Split 6 periods into 8 phase bins each; every bin's arrival count
    // must track the integrated profile within tolerance. Peak and trough
    // bins differ by ~3x at amplitude 0.7, so this catches a flat (or
    // phase-shifted) generator, not just a wrong mean.
    for seed in [3u64, 17, 91] {
        let cfg = diurnal(2e8, 0.7);
        let mut src = OpenLoopSource::new(cfg, None, seed);
        let periods = 6u64;
        let bins_per_period = 8u64;
        let bin = Duration(cfg.period.as_ps() / bins_per_period);
        let horizon = SimTime(cfg.period.as_ps() * periods);
        let mut times = Vec::new();
        src.arrivals_until(horizon, &mut times);

        let nbins = (periods * bins_per_period) as usize;
        let mut counts = vec![0u64; nbins];
        for t in &times {
            counts[(t.as_ps() / bin.as_ps()) as usize] += 1;
        }
        for (i, &got) in counts.iter().enumerate() {
            let a = SimTime(i as u64 * bin.as_ps());
            let b = SimTime((i as u64 + 1) * bin.as_ps());
            let want = expected_count(&cfg, a, b);
            // ~5000 arrivals per bin at the trough: 10% tolerance is
            // ~7 standard deviations, tight enough to pin the shape.
            assert!(
                (got as f64 - want).abs() / want < 0.10,
                "seed {seed} bin {i}: got {got}, expected ~{want:.0}"
            );
        }
    }
}

#[test]
fn burst_episodes_are_seed_deterministic() {
    let horizon = SimTime::from_ms(20);
    let sched_a = bursty().schedule(1234, horizon);
    let sched_b = bursty().schedule(1234, horizon);
    assert_eq!(sched_a, sched_b, "same seed must give the same episodes");
    let sched_c = bursty().schedule(1235, horizon);
    assert_ne!(sched_a, sched_c, "different seeds must diverge");

    // The full arrival sequence is equally a pure function of the seed.
    let mut src_a = OpenLoopSource::new(diurnal(5e8, 0.3), Some(bursty()), 77);
    let mut src_b = OpenLoopSource::new(diurnal(5e8, 0.3), Some(bursty()), 77);
    assert_eq!(src_a.take(10_000), src_b.take(10_000));

    // Episode lengths follow the configured means (law of large numbers
    // over ~hundreds of episodes).
    let long = SimTime::from_ms(50);
    let sched = bursty().schedule(9, long);
    let mut burst_total = 0u64;
    let mut burst_n = 0u64;
    for w in sched.windows(2) {
        let ((start, entered_burst), (end, _)) = (w[0], w[1]);
        if entered_burst {
            burst_total += end.as_ps() - start.as_ps();
            burst_n += 1;
        }
    }
    assert!(burst_n > 200, "expected many episodes, got {burst_n}");
    let mean = burst_total as f64 / burst_n as f64;
    let want = bursty().mean_burst.as_ps() as f64;
    assert!(
        (mean - want).abs() / want < 0.15,
        "mean burst {mean:.0} ps vs configured {want:.0} ps"
    );
}

#[test]
fn offered_load_is_independent_of_service_time() {
    // Three consumers with radically different "service" behaviour: one
    // drains in bulk, one pulls a packet at a time with busywork (a slow
    // server), one drains in erratically sized windows (a server whose
    // batch size depends on load). All must observe the identical arrival
    // sequence: the source has no feedback channel.
    let cfg = diurnal(3e8, 0.5);
    let n = 20_000;

    let mut bulk = OpenLoopSource::new(cfg, Some(bursty()), 55);
    let reference = bulk.take(n);

    let mut slow = OpenLoopSource::new(cfg, Some(bursty()), 55);
    let mut service_rng = SimRng::seed_from(999);
    let mut observed = Vec::with_capacity(n);
    for _ in 0..n {
        observed.push(slow.next());
        // Simulated per-packet service work of random length; consumes a
        // *different* RNG and must not perturb the arrival stream.
        for _ in 0..service_rng.range(0..4u32) {
            std::hint::black_box(service_rng.u64());
        }
    }
    assert_eq!(observed, reference, "slow server perturbed arrivals");

    let mut windowed = OpenLoopSource::new(cfg, Some(bursty()), 55);
    let mut got = Vec::new();
    let mut window_rng = SimRng::seed_from(4242);
    let mut t = SimTime::ZERO;
    while got.len() < n {
        t += Duration::from_us(window_rng.range(1..40u64));
        windowed.arrivals_until(t, &mut got);
    }
    assert_eq!(
        &got[..n],
        &reference[..],
        "windowed drain perturbed arrivals"
    );
}

#[test]
fn bursts_raise_dispersion_above_poisson() {
    // An MMPP is over-dispersed relative to a plain (diurnal) Poisson
    // process: the variance-to-mean ratio of per-window counts must be
    // materially above 1 with the burst overlay and near 1 without it.
    let flat = DiurnalCfg {
        base_pps: 5e8,
        amplitude: 0.0,
        period: Duration::from_us(200),
        phase: 0.0,
    };
    let window = Duration::from_us(10);
    let horizon = SimTime::from_ms(20);
    let dispersion = |mmpp: Option<MmppCfg>| {
        let mut src = OpenLoopSource::new(flat, mmpp, 31);
        let mut times = Vec::new();
        src.arrivals_until(horizon, &mut times);
        let nwin = (horizon.as_ps() / window.as_ps()) as usize;
        let mut counts = vec![0f64; nwin];
        for t in &times {
            counts[(t.as_ps() / window.as_ps()) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / nwin as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / nwin as f64;
        var / mean
    };
    let plain = dispersion(None);
    let burst = dispersion(Some(bursty()));
    assert!(plain < 2.0, "plain Poisson dispersion {plain:.2}");
    assert!(
        burst > 3.0 * plain,
        "burst overlay dispersion {burst:.2} vs plain {plain:.2}"
    );
}
