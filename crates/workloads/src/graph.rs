//! Graph pattern mining workloads (BSP supersteps).
//!
//! Table 1's graph row: "large graphs are partitioned across several
//! servers who then engage in a BSP-style communication exploring
//! increasingly large patterns in the graph at each iteration". We model
//! the *communication* of such a job: a synthetic power-law graph is
//! partitioned across servers; each superstep every partition sends
//! candidate-pattern messages along cut edges; the pattern count grows and
//! then collapses as the mining frontier saturates — the bursty, barrier-
//! synchronized traffic the switch has to absorb.

use adcp_sim::rng::SimRng;

/// One inter-partition message batch in a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepMessage {
    /// Sending partition (server index).
    pub src_part: u32,
    /// Receiving partition.
    pub dst_part: u32,
    /// Candidate patterns carried.
    pub candidates: u32,
}

/// A synthetic BSP pattern-mining job.
#[derive(Debug, Clone)]
pub struct BspWorkload {
    /// Number of partitions (servers).
    pub partitions: u32,
    /// Vertices in the synthetic graph.
    pub vertices: u32,
    /// Edges in the synthetic graph.
    pub edges: u32,
    /// Supersteps before the frontier collapses.
    pub supersteps: u32,
}

/// A generated job: per-partition-pair cut-edge counts plus the superstep
/// expansion schedule.
#[derive(Debug, Clone)]
pub struct BspJob {
    /// `cut[src][dst]` = edges from partition src to dst (src ≠ dst).
    pub cut: Vec<Vec<u32>>,
    /// Growth factor per superstep (candidates multiply then collapse).
    pub expansion: Vec<f64>,
}

impl BspWorkload {
    /// Synthesize the job: preferential-attachment-ish edges (power law),
    /// vertices assigned to partitions round-robin.
    pub fn generate(&self, rng: &mut SimRng) -> BspJob {
        let p = self.partitions as usize;
        let mut cut = vec![vec![0u32; p]; p];
        for _ in 0..self.edges {
            // Power-law-ish endpoints: square the uniform draw so low ids
            // (hubs) are favored.
            let u = (rng.f64().powi(2) * self.vertices as f64) as u32 % self.vertices;
            let v = rng.range(0..self.vertices);
            let (pu, pv) = (
                (u % self.partitions) as usize,
                (v % self.partitions) as usize,
            );
            if pu != pv {
                cut[pu][pv] += 1;
            }
        }
        // Frontier: grows ~1.6x per step, collapses in the final third.
        let expansion = (0..self.supersteps)
            .map(|s| {
                let grow_until = self.supersteps * 2 / 3;
                if s < grow_until {
                    1.6f64.powi(s as i32)
                } else {
                    1.6f64.powi(grow_until as i32) * 0.4f64.powi((s - grow_until) as i32 + 1)
                }
            })
            .collect();
        BspJob { cut, expansion }
    }
}

impl BspJob {
    /// The messages of superstep `s` (barrier-to-barrier burst).
    pub fn superstep_messages(&self, s: usize, base_candidates: u32) -> Vec<StepMessage> {
        let scale = self.expansion.get(s).copied().unwrap_or(0.0);
        let mut out = Vec::new();
        for (i, row) in self.cut.iter().enumerate() {
            for (j, &edges) in row.iter().enumerate() {
                if edges == 0 {
                    continue;
                }
                let candidates = ((edges as f64 * scale) as u32).max(1) * base_candidates;
                out.push(StepMessage {
                    src_part: i as u32,
                    dst_part: j as u32,
                    candidates,
                });
            }
        }
        out
    }

    /// Total candidates exchanged in superstep `s`.
    pub fn superstep_volume(&self, s: usize, base: u32) -> u64 {
        self.superstep_messages(s, base)
            .iter()
            .map(|m| m.candidates as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> (BspWorkload, BspJob) {
        let w = BspWorkload {
            partitions: 4,
            vertices: 1000,
            edges: 5000,
            supersteps: 9,
        };
        let mut r = SimRng::seed_from(11);
        let j = w.generate(&mut r);
        (w, j)
    }

    #[test]
    fn cut_has_no_self_edges() {
        let (_, j) = job();
        for (i, row) in j.cut.iter().enumerate() {
            assert_eq!(row[i], 0, "partition {i} must not cut to itself");
        }
    }

    #[test]
    fn every_partition_pair_communicates_eventually() {
        let (_, j) = job();
        // With 5000 edges over 4 partitions, every off-diagonal cell should
        // be populated.
        for (i, row) in j.cut.iter().enumerate() {
            for (k, &c) in row.iter().enumerate() {
                if i != k {
                    assert!(c > 0, "cut[{i}][{k}] empty");
                }
            }
        }
    }

    #[test]
    fn frontier_grows_then_collapses() {
        let (w, j) = job();
        let volumes: Vec<u64> = (0..w.supersteps as usize)
            .map(|s| j.superstep_volume(s, 1))
            .collect();
        // Strictly growing in the growth phase...
        for s in 1..(w.supersteps * 2 / 3) as usize {
            assert!(volumes[s] > volumes[s - 1], "volumes = {volumes:?}");
        }
        // ...and the last step is far below the peak.
        let peak = *volumes.iter().max().unwrap();
        assert!(
            *volumes.last().unwrap() < peak / 4,
            "no collapse: {volumes:?}"
        );
    }

    #[test]
    fn messages_follow_cut_structure() {
        let (_, j) = job();
        let msgs = j.superstep_messages(0, 2);
        for m in &msgs {
            assert_ne!(m.src_part, m.dst_part);
            assert!(m.candidates >= 2, "base multiplier applies");
        }
        assert_eq!(msgs.len(), 12, "4 partitions fully connected off-diagonal");
    }
}
