//! Database analytics workloads: filter–aggregate–reshuffle.
//!
//! Table 1's database row: "servers with local storage engage in a pattern
//! of filter-aggregate-reshuffle of data to solve queries over large
//! amounts of data in parallel". A [`ShuffleWorkload`] synthesizes the
//! mapper-side row streams: each mapper emits `(key, value)` rows; a
//! filter keeps a configurable fraction; rows are destined to the reducer
//! that owns the key's hash partition. Group-by sums per key are known in
//! closed form for verification.

use adcp_sim::rng::SimRng;

use crate::keys::ZipfKeys;

/// One row a mapper emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Mapper that produced it.
    pub mapper: u32,
    /// Group-by key.
    pub key: u64,
    /// Value (the aggregand).
    pub value: u64,
    /// Whether the filter keeps this row.
    pub keep: bool,
}

/// A synthetic distributed group-by query.
#[derive(Debug, Clone)]
pub struct ShuffleWorkload {
    /// Number of mapper servers.
    pub mappers: u32,
    /// Number of reducer servers.
    pub reducers: u32,
    /// Rows each mapper scans.
    pub rows_per_mapper: u32,
    /// Filter selectivity in `[0, 1]` (fraction kept).
    pub selectivity: f64,
    /// Distinct group-by keys.
    pub distinct_keys: usize,
    /// Key skew (Zipf exponent).
    pub skew: f64,
}

impl ShuffleWorkload {
    /// The reducer owning a key (hash partitioning — the criterion the
    /// paper gives for the first TM).
    pub fn reducer_of(&self, key: u64) -> u32 {
        (adcp_lang_hash(key) % self.reducers as u64) as u32
    }

    /// Generate every mapper's row stream. Deterministic for a given rng.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<Row> {
        let keys = ZipfKeys::new(self.distinct_keys, self.skew);
        let mut rows = Vec::with_capacity((self.mappers * self.rows_per_mapper) as usize);
        for m in 0..self.mappers {
            for _ in 0..self.rows_per_mapper {
                let key = keys.sample(rng);
                let value = rng.range(1..1000u64);
                let keep = rng.chance(self.selectivity);
                rows.push(Row {
                    mapper: m,
                    key,
                    value,
                    keep,
                });
            }
        }
        rows
    }

    /// The correct group-by sums over the kept rows (reference answer).
    pub fn reference_sums(rows: &[Row]) -> std::collections::HashMap<u64, u64> {
        let mut out = std::collections::HashMap::new();
        for r in rows.iter().filter(|r| r.keep) {
            *out.entry(r.key).or_insert(0) += r.value;
        }
        out
    }
}

/// The same stable hash the switch programs use, so partitioning decisions
/// agree between the workload and the data plane.
fn adcp_lang_hash(v: u64) -> u64 {
    adcp_lang::fold_hash([v])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> ShuffleWorkload {
        ShuffleWorkload {
            mappers: 4,
            reducers: 3,
            rows_per_mapper: 1000,
            selectivity: 0.5,
            distinct_keys: 64,
            skew: 0.9,
        }
    }

    #[test]
    fn generates_expected_row_count() {
        let mut r = SimRng::seed_from(1);
        let rows = wl().generate(&mut r);
        assert_eq!(rows.len(), 4000);
        let kept = rows.iter().filter(|r| r.keep).count() as f64 / 4000.0;
        assert!((0.45..0.55).contains(&kept), "selectivity = {kept}");
    }

    #[test]
    fn partitioning_is_stable_and_total() {
        let w = wl();
        for key in 0..64u64 {
            let r1 = w.reducer_of(key);
            let r2 = w.reducer_of(key);
            assert_eq!(r1, r2);
            assert!(r1 < 3);
        }
    }

    #[test]
    fn reference_sums_only_count_kept_rows() {
        let rows = vec![
            Row {
                mapper: 0,
                key: 1,
                value: 10,
                keep: true,
            },
            Row {
                mapper: 1,
                key: 1,
                value: 5,
                keep: false,
            },
            Row {
                mapper: 2,
                key: 1,
                value: 7,
                keep: true,
            },
            Row {
                mapper: 0,
                key: 2,
                value: 3,
                keep: true,
            },
        ];
        let sums = ShuffleWorkload::reference_sums(&rows);
        assert_eq!(sums[&1], 17);
        assert_eq!(sums[&2], 3);
        assert_eq!(sums.len(), 2);
    }

    #[test]
    fn skewed_keys_concentrate() {
        let mut r = SimRng::seed_from(2);
        let rows = wl().generate(&mut r);
        let mut counts = vec![0u32; 64];
        for row in &rows {
            counts[row.key as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max > 10 * min.max(1),
            "skew not visible: max={max} min={min}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut r = SimRng::seed_from(seed);
            wl().generate(&mut r)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
