//! Key popularity distributions.
//!
//! Key/value workloads (the NetCache-style cache that motivates array
//! matching in §3.2) are skewed: a few keys dominate. The standard model
//! is a Zipf distribution; we precompute the CDF for O(log n) sampling.

use adcp_sim::rng::SimRng;

/// Zipf-distributed key sampler over keys `0..n`.
///
/// ```
/// use adcp_workloads::keys::ZipfKeys;
/// use adcp_sim::rng::SimRng;
///
/// let zipf = ZipfKeys::new(1000, 0.99);
/// let mut rng = SimRng::seed_from(1);
/// let hot = (0..10_000).filter(|_| zipf.sample(&mut rng) < 10).count();
/// assert!(hot > 2_000, "the 1% hottest keys draw >20% of requests");
/// ```
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// Keys `0..n` with skew `s` (s = 0 is uniform; s ≈ 0.99 is the classic
    /// YCSB skew; larger is more skewed). Key 0 is the most popular.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfKeys { cdf }
    }

    /// Number of distinct keys.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        // First index whose CDF >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i as u64,
            Err(i) => i.min(self.cdf.len() - 1) as u64,
        }
    }

    /// Probability mass of key `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Uniform key sampler over `0..n`.
#[derive(Debug, Clone, Copy)]
pub struct UniformKeys {
    n: u64,
}

impl UniformKeys {
    /// Keys `0..n`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0);
        UniformKeys { n }
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        rng.range(0..self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_dominates() {
        let z = ZipfKeys::new(1000, 0.99);
        let mut r = SimRng::seed_from(1);
        let n = 100_000;
        let hits0 = (0..n).filter(|_| z.sample(&mut r) == 0).count() as f64 / n as f64;
        // Key 0 mass for n=1000, s=0.99 is ~13%.
        assert!((0.10..0.17).contains(&hits0), "p(key0) = {hits0}");
        assert!((z.pmf(0) - hits0).abs() < 0.02);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = ZipfKeys::new(100, 0.0);
        let mut r = SimRng::seed_from(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 700 && max < 1300, "min={min} max={max}");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let z = ZipfKeys::new(64, 1.2);
        let mut prev = 0.0;
        for k in 0..z.n() {
            let p = z.pmf(k);
            assert!(p >= 0.0);
            if k > 0 {
                assert!(p <= prev * 1.0001, "pmf must decay");
            }
            prev = p;
        }
        let total: f64 = (0..z.n()).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_covers_range() {
        let u = UniformKeys::new(16);
        let mut r = SimRng::seed_from(3);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn samples_always_in_range() {
        let z = ZipfKeys::new(10, 2.0);
        let mut r = SimRng::seed_from(4);
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 10);
        }
    }
}
