//! Key popularity distributions.
//!
//! Key/value workloads (the NetCache-style cache that motivates array
//! matching in §3.2) are skewed: a few keys dominate. The standard model
//! is a Zipf distribution. [`ZipfKeys`] samples it by Hörmann–Derflinger
//! rejection-inversion: O(1) memory and O(1) expected time per draw, so
//! 10⁷-key workloads don't pay an 80 MB CDF per sampler. The explicit-CDF
//! sampler survives as [`ZipfCdf`], the test oracle the rejection sampler
//! is validated against.

use adcp_sim::rng::SimRng;

/// Zipf-distributed key sampler over keys `0..n` (key 0 most popular),
/// using rejection-inversion (Hörmann & Derflinger, "Rejection-inversion
/// to generate variates from monotone discrete distributions"). The
/// struct is `Copy` and holds five scalars — constant memory at any `n`.
///
/// ```
/// use adcp_workloads::keys::ZipfKeys;
/// use adcp_sim::rng::SimRng;
///
/// let zipf = ZipfKeys::new(1000, 0.99);
/// let mut rng = SimRng::seed_from(1);
/// let hot = (0..10_000).filter(|_| zipf.sample(&mut rng) < 10).count();
/// assert!(hot > 2_000, "the 1% hottest keys draw >20% of requests");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ZipfKeys {
    n: u64,
    exponent: f64,
    /// `h_integral(1.5) - 1`: the upper end of the inversion domain.
    h_integral_x1: f64,
    /// `h_integral(n + 0.5)`: the lower end of the inversion domain.
    h_integral_n: f64,
    /// Acceptance shortcut threshold `s`.
    s: f64,
}

/// `log1p(x) / x`, stable near 0 (→ 1).
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * 0.5 + x * x / 3.0
    }
}

/// `expm1(x) / x`, stable near 0 (→ 1).
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

impl ZipfKeys {
    /// Keys `0..n` with skew `s` (s = 0 is uniform; s ≈ 0.99 is the classic
    /// YCSB skew; larger is more skewed). Key 0 is the most popular.
    /// Construction is O(1) in `n`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        assert!(s >= 0.0 && s.is_finite());
        let exponent = s;
        let h_integral = |x: f64| -> f64 {
            let log_x = x.ln();
            helper2((1.0 - exponent) * log_x) * log_x
        };
        let h = |x: f64| -> f64 { (-exponent * x.ln()).exp() };
        let h_integral_inverse = |x: f64| -> f64 {
            let t = (x * (1.0 - exponent)).max(-1.0);
            (helper1(t) * x).exp()
        };
        ZipfKeys {
            n: n as u64,
            exponent,
            h_integral_x1: h_integral(1.5) - 1.0,
            h_integral_n: h_integral(n as f64 + 0.5),
            s: 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0)),
        }
    }

    /// Number of distinct keys.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.exponent) * log_x) * log_x
    }

    fn h(&self, x: f64) -> f64 {
        (-self.exponent * x.ln()).exp()
    }

    fn h_integral_inverse(&self, x: f64) -> f64 {
        let t = (x * (1.0 - self.exponent)).max(-1.0);
        (helper1(t) * x).exp()
    }

    /// Draw one key. O(1) expected time: the rejection loop accepts with
    /// probability bounded away from zero for every `n` and skew.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            // u is uniform in (h_integral(n + 0.5), h_integral(1.5) - 1].
            let u = self.h_integral_n + rng.f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5) as u64;
            let k = k.clamp(1, self.n);
            if k as f64 - x <= self.s || u >= self.h_integral(k as f64 + 0.5) - self.h(k as f64) {
                return k - 1;
            }
        }
    }
}

/// The explicit-CDF Zipf sampler: O(n) construction and memory, retained
/// as the oracle [`ZipfKeys`] is validated against, and as the source of
/// exact per-key probability mass ([`ZipfCdf::pmf`]).
#[derive(Debug, Clone)]
pub struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    /// Keys `0..n` with skew `s`, same parameterization as [`ZipfKeys`].
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfCdf { cdf }
    }

    /// Number of distinct keys.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one key: the *first* index whose CDF reaches the uniform draw.
    /// `partition_point` makes the choice deterministic when extreme skew
    /// collapses adjacent CDF entries to equal floats (`binary_search_by`
    /// returned an arbitrary index among the duplicates).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u64
    }

    /// Probability mass of key `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Uniform key sampler over `0..n`.
#[derive(Debug, Clone, Copy)]
pub struct UniformKeys {
    n: u64,
}

impl UniformKeys {
    /// Keys `0..n`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0);
        UniformKeys { n }
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        rng.range(0..self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_dominates() {
        let z = ZipfKeys::new(1000, 0.99);
        let mut r = SimRng::seed_from(1);
        let n = 100_000;
        let hits0 = (0..n).filter(|_| z.sample(&mut r) == 0).count() as f64 / n as f64;
        // Key 0 mass for n=1000, s=0.99 is ~13%.
        assert!((0.10..0.17).contains(&hits0), "p(key0) = {hits0}");
        assert!((ZipfCdf::new(1000, 0.99).pmf(0) - hits0).abs() < 0.02);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = ZipfKeys::new(100, 0.0);
        let mut r = SimRng::seed_from(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 700 && max < 1300, "min={min} max={max}");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let z = ZipfCdf::new(64, 1.2);
        let mut prev = 0.0;
        for k in 0..z.n() {
            let p = z.pmf(k);
            assert!(p >= 0.0);
            if k > 0 {
                assert!(p <= prev * 1.0001, "pmf must decay");
            }
            prev = p;
        }
        let total: f64 = (0..z.n()).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejection_sampler_matches_cdf_oracle() {
        // Empirical frequency of the rejection-inversion sampler must match
        // the CDF oracle's exact pmf key by key across the head, and in
        // aggregate over the tail, for every skew regime we use.
        for (n, s) in [(1000usize, 0.99f64), (64, 1.2), (100, 0.0), (10, 2.0)] {
            let z = ZipfKeys::new(n, s);
            let oracle = ZipfCdf::new(n, s);
            let mut r = SimRng::seed_from(0x51F);
            let draws = 200_000;
            let mut counts = vec![0u64; n];
            for _ in 0..draws {
                let k = z.sample(&mut r);
                assert!((k as usize) < n);
                counts[k as usize] += 1;
            }
            for (k, &c) in counts.iter().enumerate().take(n.min(10)) {
                let emp = c as f64 / draws as f64;
                let want = oracle.pmf(k);
                assert!(
                    (emp - want).abs() < 0.01 + want * 0.1,
                    "n={n} s={s} key {k}: empirical {emp} vs pmf {want}"
                );
            }
            let tail_emp: f64 = counts[n.min(10)..].iter().sum::<u64>() as f64 / draws as f64;
            let tail_want: f64 = (n.min(10)..n).map(|k| oracle.pmf(k)).sum();
            assert!(
                (tail_emp - tail_want).abs() < 0.01,
                "n={n} s={s} tail: empirical {tail_emp} vs pmf {tail_want}"
            );
        }
    }

    #[test]
    fn ten_million_keys_allocate_o1_memory() {
        // The sampler is Copy over five scalars: its entire footprint is
        // its size, independent of n — no heap, no CDF vector.
        assert!(std::mem::size_of::<ZipfKeys>() <= 64);
        let z = ZipfKeys::new(10_000_000, 1.1);
        let mut r = SimRng::seed_from(7);
        let mut max_seen = 0;
        for _ in 0..10_000 {
            let k = z.sample(&mut r);
            assert!(k < 10_000_000);
            max_seen = max_seen.max(k);
        }
        assert!(max_seen > 1_000, "tail keys are reachable: max {max_seen}");
    }

    #[test]
    fn extreme_skew_resolves_duplicate_cdf_entries_to_first() {
        // s = 40 underflows every pmf past key 0, so the CDF is a run of
        // equal 1.0 entries; the first-index rule must pick key 0 every
        // time (binary_search_by could return any index in the run).
        let z = ZipfCdf::new(50, 40.0);
        let mut r = SimRng::seed_from(9);
        for _ in 0..10_000 {
            assert_eq!(z.sample(&mut r), 0);
        }
        let zr = ZipfKeys::new(50, 40.0);
        for _ in 0..10_000 {
            assert_eq!(zr.sample(&mut r), 0);
        }
    }

    #[test]
    fn uniform_covers_range() {
        let u = UniformKeys::new(16);
        let mut r = SimRng::seed_from(3);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn samples_always_in_range() {
        let z = ZipfKeys::new(10, 2.0);
        let mut r = SimRng::seed_from(4);
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 10);
        }
    }
}
