//! Coflow generation and completion tracking.
//!
//! A coflow (Chowdhury & Stoica, the paper's [6]) is a set of flows with a
//! shared completion semantics: the application advances only when *all*
//! of them finish. The generators here produce the structures in Table 1:
//! all-to-all shuffles (DB analytics, BSP supersteps), many-to-one
//! aggregations (ML parameter aggregation), and one-to-many group
//! transfers. [`CoflowTracker`] computes coflow completion times (CCT) —
//! the metric that matters to coflow applications, as opposed to per-flow
//! throughput.

use adcp_sim::packet::{CoflowId, FlowId, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use std::collections::HashMap;

/// One flow inside a coflow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Flow identity.
    pub flow: FlowId,
    /// Source (sender's switch port).
    pub src: PortId,
    /// Destination (receiver's switch port).
    pub dst: PortId,
    /// Packets this flow will send.
    pub packets: u32,
}

/// A coflow: a set of flows that complete together.
#[derive(Debug, Clone)]
pub struct CoflowSpec {
    /// Coflow identity.
    pub id: CoflowId,
    /// Component flows.
    pub flows: Vec<FlowSpec>,
}

impl CoflowSpec {
    /// Total packets across all flows.
    pub fn total_packets(&self) -> u64 {
        self.flows.iter().map(|f| f.packets as u64).sum()
    }

    /// An `m × r` shuffle: every mapper port sends one flow to every
    /// reducer port (the filter–aggregate–reshuffle pattern of Table 1).
    pub fn shuffle(
        id: CoflowId,
        mappers: &[PortId],
        reducers: &[PortId],
        pkts_per_flow: u32,
    ) -> Self {
        let mut flows = Vec::new();
        for (i, &src) in mappers.iter().enumerate() {
            for (j, &dst) in reducers.iter().enumerate() {
                flows.push(FlowSpec {
                    flow: FlowId((id.0 as u64) << 32 | (i as u64) << 16 | j as u64),
                    src,
                    dst,
                    packets: pkts_per_flow,
                });
            }
        }
        CoflowSpec { id, flows }
    }

    /// Many-to-one aggregation: every worker sends to one sink (the ML
    /// parameter-aggregation input pattern).
    pub fn aggregation(id: CoflowId, workers: &[PortId], sink: PortId, pkts: u32) -> Self {
        let flows = workers
            .iter()
            .enumerate()
            .map(|(i, &src)| FlowSpec {
                flow: FlowId((id.0 as u64) << 32 | i as u64),
                src,
                dst: sink,
                packets: pkts,
            })
            .collect();
        CoflowSpec { id, flows }
    }

    /// One-to-many group transfer (the zero-sided-RDMA style pattern).
    pub fn broadcast(id: CoflowId, src: PortId, receivers: &[PortId], pkts: u32) -> Self {
        let flows = receivers
            .iter()
            .enumerate()
            .map(|(i, &dst)| FlowSpec {
                flow: FlowId((id.0 as u64) << 32 | i as u64),
                src,
                dst,
                packets: pkts,
            })
            .collect();
        CoflowSpec { id, flows }
    }

    /// A random sparse coflow: `k` flows between random distinct ports.
    pub fn random(id: CoflowId, ports: u16, k: usize, max_pkts: u32, rng: &mut SimRng) -> Self {
        let flows = (0..k)
            .map(|i| {
                let src = PortId(rng.range(0..ports));
                let mut dst = PortId(rng.range(0..ports));
                while dst == src && ports > 1 {
                    dst = PortId(rng.range(0..ports));
                }
                FlowSpec {
                    flow: FlowId((id.0 as u64) << 32 | i as u64),
                    src,
                    dst,
                    packets: rng.range(1..=max_pkts),
                }
            })
            .collect();
        CoflowSpec { id, flows }
    }
}

/// Tracks coflow completion: feed it every expected packet, then record
/// deliveries; a coflow completes when its last packet lands.
#[derive(Debug, Default)]
pub struct CoflowTracker {
    expected: HashMap<CoflowId, u64>,
    seen: HashMap<CoflowId, u64>,
    started: HashMap<CoflowId, SimTime>,
    completed: HashMap<CoflowId, SimTime>,
}

impl CoflowTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a coflow that will inject `packets` total packets starting
    /// at `start`.
    pub fn expect(&mut self, id: CoflowId, packets: u64, start: SimTime) {
        *self.expected.entry(id).or_insert(0) += packets;
        self.started
            .entry(id)
            .and_modify(|s| *s = (*s).min(start))
            .or_insert(start);
    }

    /// Record a delivered packet of coflow `id` at `t`. Returns `true` when
    /// this delivery completed the coflow.
    pub fn deliver(&mut self, id: CoflowId, t: SimTime) -> bool {
        let seen = self.seen.entry(id).or_insert(0);
        *seen += 1;
        let done = Some(*seen) == self.expected.get(&id).copied();
        if done {
            self.completed.insert(id, t);
        }
        done
    }

    /// Completion time of a coflow, if it finished.
    pub fn cct(&self, id: CoflowId) -> Option<adcp_sim::time::Duration> {
        let end = *self.completed.get(&id)?;
        let start = *self.started.get(&id)?;
        Some(end.saturating_since(start))
    }

    /// Number of completed coflows.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// True when every expected coflow has completed.
    pub fn all_done(&self) -> bool {
        self.expected.len() == self.completed.len()
    }

    /// Mean CCT over completed coflows, in nanoseconds.
    pub fn mean_cct_ns(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .completed
            .keys()
            .filter_map(|id| self.cct(*id))
            .map(|d| d.as_ns_f64())
            .sum();
        sum / self.completed.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ports(v: &[u16]) -> Vec<PortId> {
        v.iter().map(|&p| PortId(p)).collect()
    }

    #[test]
    fn shuffle_builds_m_by_r_flows() {
        let c = CoflowSpec::shuffle(CoflowId(1), &ports(&[0, 1, 2]), &ports(&[4, 5]), 10);
        assert_eq!(c.flows.len(), 6);
        assert_eq!(c.total_packets(), 60);
        // Every (mapper, reducer) pair appears exactly once.
        let mut pairs: Vec<(u16, u16)> = c.flows.iter().map(|f| (f.src.0, f.dst.0)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn aggregation_targets_one_sink() {
        let c = CoflowSpec::aggregation(CoflowId(2), &ports(&[0, 1, 2, 3]), PortId(9), 5);
        assert_eq!(c.flows.len(), 4);
        assert!(c.flows.iter().all(|f| f.dst == PortId(9)));
        assert_eq!(c.total_packets(), 20);
    }

    #[test]
    fn broadcast_fans_out() {
        let c = CoflowSpec::broadcast(CoflowId(3), PortId(0), &ports(&[1, 2, 3]), 7);
        assert_eq!(c.flows.len(), 3);
        assert!(c.flows.iter().all(|f| f.src == PortId(0)));
    }

    #[test]
    fn random_coflow_avoids_self_loops() {
        let mut r = SimRng::seed_from(9);
        let c = CoflowSpec::random(CoflowId(4), 8, 32, 20, &mut r);
        assert_eq!(c.flows.len(), 32);
        assert!(c.flows.iter().all(|f| f.src != f.dst));
        assert!(c.flows.iter().all(|f| (1..=20).contains(&f.packets)));
    }

    #[test]
    fn tracker_computes_cct() {
        let mut t = CoflowTracker::new();
        t.expect(CoflowId(1), 3, SimTime::from_ns(100));
        assert!(!t.deliver(CoflowId(1), SimTime::from_ns(200)));
        assert!(!t.deliver(CoflowId(1), SimTime::from_ns(250)));
        assert!(!t.all_done());
        assert!(t.deliver(CoflowId(1), SimTime::from_ns(400)));
        assert!(t.all_done());
        assert_eq!(t.cct(CoflowId(1)).unwrap().as_ns_f64(), 300.0);
        assert_eq!(t.completed_count(), 1);
        assert_eq!(t.mean_cct_ns(), 300.0);
    }

    #[test]
    fn tracker_handles_multiple_coflows() {
        let mut t = CoflowTracker::new();
        t.expect(CoflowId(1), 1, SimTime::ZERO);
        t.expect(CoflowId(2), 2, SimTime::from_ns(50));
        t.deliver(CoflowId(2), SimTime::from_ns(100));
        assert!(t.deliver(CoflowId(1), SimTime::from_ns(150)));
        assert!(!t.all_done());
        assert!(t.deliver(CoflowId(2), SimTime::from_ns(250)));
        assert!(t.all_done());
        assert_eq!(t.cct(CoflowId(2)).unwrap().as_ns_f64(), 200.0);
    }
}
