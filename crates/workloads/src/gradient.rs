//! ML gradient workloads for the parameter-server application.
//!
//! The paper's running example: every worker sends the switch "a different
//! flow containing a vector of machine learning model weights"; the switch
//! aggregates and redistributes. A [`GradientWorkload`] carves a model of
//! `model_size` weights into chunks of `width` weights (the array width of
//! §3.2) and emits, per worker, the chunk sequence with synthetic values
//! whose aggregate is known in closed form — so tests can verify switch
//! results exactly.

use adcp_sim::rng::SimRng;

/// One chunk of one worker's gradient.
#[derive(Debug, Clone)]
pub struct GradientChunk {
    /// Worker index.
    pub worker: u32,
    /// First weight slot this chunk covers.
    pub base_slot: u32,
    /// Quantized weight values (one per array lane).
    pub values: Vec<u32>,
}

/// A synthetic data-parallel training step.
#[derive(Debug, Clone)]
pub struct GradientWorkload {
    /// Number of workers.
    pub workers: u32,
    /// Total model weights.
    pub model_size: u32,
    /// Weights per packet (the array width).
    pub width: u32,
}

impl GradientWorkload {
    /// New workload; `model_size` must be a multiple of `width`.
    pub fn new(workers: u32, model_size: u32, width: u32) -> Self {
        assert!(width > 0 && workers > 0);
        assert_eq!(model_size % width, 0, "model must divide into whole chunks");
        GradientWorkload {
            workers,
            model_size,
            width,
        }
    }

    /// Chunks per worker.
    pub fn chunks_per_worker(&self) -> u32 {
        self.model_size / self.width
    }

    /// Total packets one training step needs (all workers).
    pub fn total_chunks(&self) -> u64 {
        self.workers as u64 * self.chunks_per_worker() as u64
    }

    /// Deterministic synthetic value of weight `slot` from `worker`:
    /// `worker + slot + 1`. Small enough that sums never overflow u32 for
    /// realistic sizes, and closed-form verifiable.
    pub fn value(&self, worker: u32, slot: u32) -> u32 {
        worker + slot + 1
    }

    /// The expected aggregate of weight `slot` over all workers:
    /// `Σ_w (w + slot + 1) = W·(slot+1) + W(W−1)/2`.
    pub fn expected_sum(&self, slot: u32) -> u64 {
        let w = self.workers as u64;
        w * (slot as u64 + 1) + w * (w - 1) / 2
    }

    /// All chunks of one worker, in slot order.
    pub fn worker_chunks(&self, worker: u32) -> Vec<GradientChunk> {
        (0..self.chunks_per_worker())
            .map(|c| {
                let base = c * self.width;
                GradientChunk {
                    worker,
                    base_slot: base,
                    values: (0..self.width)
                        .map(|i| self.value(worker, base + i))
                        .collect(),
                }
            })
            .collect()
    }

    /// All chunks of all workers, interleaved in a shuffled order (workers
    /// do not transmit in lockstep in practice).
    pub fn all_chunks_shuffled(&self, rng: &mut SimRng) -> Vec<GradientChunk> {
        let mut all: Vec<GradientChunk> = (0..self.workers)
            .flat_map(|w| self.worker_chunks(w))
            .collect();
        rng.shuffle(&mut all);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_geometry() {
        let g = GradientWorkload::new(4, 64, 16);
        assert_eq!(g.chunks_per_worker(), 4);
        assert_eq!(g.total_chunks(), 16);
        let chunks = g.worker_chunks(2);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[1].base_slot, 16);
        assert_eq!(chunks[1].values.len(), 16);
        assert_eq!(chunks[1].values[0], g.value(2, 16));
    }

    #[test]
    fn expected_sum_matches_manual_aggregate() {
        let g = GradientWorkload::new(5, 32, 8);
        for slot in [0u32, 7, 31] {
            let manual: u64 = (0..5).map(|w| g.value(w, slot) as u64).sum();
            assert_eq!(manual, g.expected_sum(slot), "slot {slot}");
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let g = GradientWorkload::new(3, 24, 8);
        let mut r = SimRng::seed_from(5);
        let shuffled = g.all_chunks_shuffled(&mut r);
        assert_eq!(shuffled.len(), g.total_chunks() as usize);
        // Aggregating the shuffled stream gives the expected sums.
        let mut acc = [0u64; 24];
        for ch in &shuffled {
            for (i, v) in ch.values.iter().enumerate() {
                acc[ch.base_slot as usize + i] += *v as u64;
            }
        }
        for slot in 0..24u32 {
            assert_eq!(acc[slot as usize], g.expected_sum(slot));
        }
    }

    #[test]
    #[should_panic(expected = "whole chunks")]
    fn indivisible_model_rejected() {
        GradientWorkload::new(2, 30, 8);
    }
}
