//! # adcp-workloads — synthetic workload generators
//!
//! The paper's Table 1 applications run on proprietary clusters and
//! datasets; these generators synthesize the *communication structure*
//! that matters to the switch (see DESIGN.md's substitution table):
//!
//! * [`size`] — packet-size distributions (fixed / uniform / IMIX / DC).
//! * [`keys`] — Zipf and uniform key popularity.
//! * [`coflow`] — coflow structures (shuffle, aggregation, broadcast) and
//!   coflow-completion-time tracking.
//! * [`gradient`] — ML parameter-aggregation steps with closed-form
//!   expected aggregates.
//! * [`shuffle`] — database filter–aggregate–reshuffle row streams.
//! * [`graph`] — BSP graph-pattern-mining supersteps (grow-then-collapse).
//! * [`arrival`] — CBR and Poisson arrival processes.
//! * [`traffic`] — million-flow TE/security mixes: heavy-tailed benign
//!   traffic, bursty arrivals, and an adversarial attack ramp.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod coflow;
pub mod gradient;
pub mod graph;
pub mod keys;
pub mod shuffle;
pub mod size;
pub mod traffic;

pub use arrival::Arrivals;
pub use coflow::{CoflowSpec, CoflowTracker, FlowSpec};
pub use gradient::{GradientChunk, GradientWorkload};
pub use graph::{BspJob, BspWorkload, StepMessage};
pub use keys::{UniformKeys, ZipfCdf, ZipfKeys};
pub use shuffle::{Row, ShuffleWorkload};
pub use size::SizeDist;
pub use traffic::{AttackRamp, FlowEvent, TrafficCfg, TrafficGen};
