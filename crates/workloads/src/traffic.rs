//! Million-flow traffic mixes: heavy-tailed benign traffic, bursty
//! arrivals, and an adversarial attack ramp.
//!
//! The TE/security workloads (load-driven flowlet forwarding, DDoS
//! detection) need traffic that looks like a production edge: a Zipf
//! head over 10⁶–10⁷ live flows, on/off burstiness in the arrival
//! process, and — for the security scenario — a small set of attack
//! sources whose share of the traffic ramps from zero to a configured
//! peak mid-run. Generation is streaming and O(1) in the flow count
//! (the per-flow key comes from the rejection-inversion [`ZipfKeys`]
//! sampler), and deterministic per seed.

use crate::keys::ZipfKeys;
use adcp_sim::rng::SimRng;

/// One generated packet arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEvent {
    /// Arrival time, picoseconds.
    pub time_ps: u64,
    /// Source / flow key. Benign keys are `0..flows`; attack sources are
    /// `flows..flows + attackers` so they form a compact hot range the
    /// control plane can rebalance.
    pub src: u64,
    /// True when the attack mix generated this packet.
    pub attack: bool,
}

/// The adversarial component: a linear ramp of attack traffic.
#[derive(Debug, Clone, Copy)]
pub struct AttackRamp {
    /// Number of distinct attack sources.
    pub attackers: u64,
    /// Run fraction (0..1) at which the ramp starts.
    pub start_frac: f64,
    /// Run fraction at which the ramp reaches its peak share.
    pub full_frac: f64,
    /// Attack share of the traffic at peak (0..1).
    pub peak_share: f64,
}

impl AttackRamp {
    /// Attack share of the mix at run progress `frac`.
    pub fn share_at(&self, frac: f64) -> f64 {
        if frac <= self.start_frac {
            0.0
        } else if frac >= self.full_frac {
            self.peak_share
        } else {
            self.peak_share * (frac - self.start_frac) / (self.full_frac - self.start_frac)
        }
    }
}

/// Traffic mix configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrafficCfg {
    /// Benign live-flow keyspace (keys `0..flows`).
    pub flows: u64,
    /// Total packets to generate.
    pub pkts: u64,
    /// Zipf skew of the benign key popularity.
    pub skew: f64,
    /// Mean inter-arrival gap, picoseconds.
    pub mean_gap_ps: u64,
    /// Burstiness: 0 = constant-rate; higher values compress a burst's
    /// inter-arrivals by `1 + burstiness` and stretch the off periods to
    /// keep the mean rate.
    pub burstiness: f64,
    /// Optional adversarial ramp.
    pub attack: Option<AttackRamp>,
    /// RNG seed; the full event stream is a pure function of the config.
    pub seed: u64,
}

impl Default for TrafficCfg {
    fn default() -> Self {
        TrafficCfg {
            flows: 1 << 20,
            pkts: 100_000,
            skew: 0.99,
            mean_gap_ps: 1_000,
            burstiness: 0.0,
            attack: None,
            seed: 1,
        }
    }
}

/// Streaming generator over [`TrafficCfg`]. O(1) memory: two `Copy`
/// samplers and a handful of counters.
#[derive(Debug, Clone)]
pub struct TrafficGen {
    cfg: TrafficCfg,
    zipf: ZipfKeys,
    rng: SimRng,
    now_ps: u64,
    emitted: u64,
    /// Remaining packets in the current burst (0 = between bursts).
    burst_left: u32,
}

impl TrafficGen {
    /// Generator over `cfg`, deterministic per `cfg.seed`.
    pub fn new(cfg: TrafficCfg) -> Self {
        assert!(cfg.flows > 0 && cfg.pkts > 0 && cfg.mean_gap_ps > 0);
        if let Some(a) = &cfg.attack {
            assert!(a.attackers > 0);
            assert!((0.0..=1.0).contains(&a.peak_share));
            assert!(a.start_frac < a.full_frac);
        }
        TrafficGen {
            zipf: ZipfKeys::new(cfg.flows as usize, cfg.skew),
            rng: SimRng::seed_from(cfg.seed),
            cfg,
            now_ps: 0,
            emitted: 0,
            burst_left: 0,
        }
    }

    /// Total packets this generator will emit.
    pub fn len_total(&self) -> u64 {
        self.cfg.pkts
    }

    fn next_gap(&mut self) -> u64 {
        let mean = self.cfg.mean_gap_ps as f64;
        if self.cfg.burstiness <= 0.0 {
            return self.cfg.mean_gap_ps.max(1);
        }
        if self.burst_left == 0 && self.rng.chance(0.1) {
            self.burst_left = self.rng.range(4u32..32);
        }
        let gap = if self.burst_left > 0 {
            self.burst_left -= 1;
            // Inside a burst: arrivals compressed by (1 + burstiness)...
            mean / (1.0 + self.cfg.burstiness)
        } else {
            // ...paid back by stretched off-period gaps, so the long-run
            // rate stays near 1/mean_gap_ps.
            mean * (1.0 + self.cfg.burstiness * 0.3)
        };
        (gap as u64).max(1)
    }
}

impl Iterator for TrafficGen {
    type Item = FlowEvent;

    fn next(&mut self) -> Option<FlowEvent> {
        if self.emitted >= self.cfg.pkts {
            return None;
        }
        self.now_ps += self.next_gap();
        let frac = self.emitted as f64 / self.cfg.pkts as f64;
        self.emitted += 1;
        let (src, attack) = match &self.cfg.attack {
            Some(a) if self.rng.chance(a.share_at(frac)) => {
                (self.cfg.flows + self.rng.range(0..a.attackers), true)
            }
            _ => (self.zipf.sample(&mut self.rng), false),
        };
        Some(FlowEvent {
            time_ps: self.now_ps,
            src,
            attack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ZipfCdf;

    #[test]
    fn heavy_tail_matches_pmf_oracle() {
        // The benign mix's empirical key frequencies must match the exact
        // CDF-oracle pmf: head keys individually, tail in aggregate.
        let cfg = TrafficCfg {
            flows: 1000,
            pkts: 200_000,
            skew: 0.99,
            ..TrafficCfg::default()
        };
        let oracle = ZipfCdf::new(1000, 0.99);
        let mut counts = vec![0u64; 1000];
        for ev in TrafficGen::new(cfg) {
            assert!(!ev.attack);
            counts[ev.src as usize] += 1;
        }
        let total = cfg.pkts as f64;
        for (k, &c) in counts.iter().enumerate().take(10) {
            let emp = c as f64 / total;
            let want = oracle.pmf(k);
            assert!(
                (emp - want).abs() < 0.01 + want * 0.1,
                "key {k}: empirical {emp} vs pmf {want}"
            );
        }
        let tail_emp: f64 = counts[10..].iter().sum::<u64>() as f64 / total;
        let tail_want: f64 = (10..1000).map(|k| oracle.pmf(k)).sum();
        assert!((tail_emp - tail_want).abs() < 0.01);
    }

    #[test]
    fn attack_ramp_is_deterministic_per_seed() {
        let cfg = TrafficCfg {
            flows: 10_000,
            pkts: 20_000,
            burstiness: 2.0,
            attack: Some(AttackRamp {
                attackers: 32,
                start_frac: 0.3,
                full_frac: 0.6,
                peak_share: 0.5,
            }),
            seed: 42,
            ..TrafficCfg::default()
        };
        let a: Vec<FlowEvent> = TrafficGen::new(cfg).collect();
        let b: Vec<FlowEvent> = TrafficGen::new(cfg).collect();
        assert_eq!(a, b, "same seed, same stream");
        let c: Vec<FlowEvent> = TrafficGen::new(TrafficCfg { seed: 43, ..cfg }).collect();
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn attack_share_follows_the_ramp() {
        let ramp = AttackRamp {
            attackers: 16,
            start_frac: 0.5,
            full_frac: 0.75,
            peak_share: 0.6,
        };
        let cfg = TrafficCfg {
            flows: 1 << 20,
            pkts: 100_000,
            attack: Some(ramp),
            ..TrafficCfg::default()
        };
        let events: Vec<FlowEvent> = TrafficGen::new(cfg).collect();
        let share = |lo: usize, hi: usize| -> f64 {
            events[lo..hi].iter().filter(|e| e.attack).count() as f64 / (hi - lo) as f64
        };
        assert_eq!(share(0, 50_000), 0.0, "no attack before the ramp");
        let peak = share(80_000, 100_000);
        assert!(
            (peak - 0.6).abs() < 0.05,
            "peak share {peak}, configured 0.6"
        );
        // Attack sources sit in the compact range past the benign keys.
        for e in events.iter().filter(|e| e.attack) {
            assert!((cfg.flows..cfg.flows + 16).contains(&e.src));
        }
        for e in events.iter().filter(|e| !e.attack) {
            assert!(e.src < cfg.flows);
        }
    }

    #[test]
    fn bursty_arrivals_keep_monotone_time_and_mean_rate() {
        let cfg = TrafficCfg {
            flows: 1 << 16,
            pkts: 50_000,
            burstiness: 4.0,
            mean_gap_ps: 1_000,
            ..TrafficCfg::default()
        };
        let events: Vec<FlowEvent> = TrafficGen::new(cfg).collect();
        assert_eq!(events.len(), 50_000);
        let mut gaps = Vec::with_capacity(events.len());
        let mut prev = 0;
        for e in &events {
            assert!(e.time_ps > prev, "time strictly increases");
            gaps.push(e.time_ps - prev);
            prev = e.time_ps;
        }
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(
            (400.0..1600.0).contains(&mean),
            "long-run mean gap {mean} ps should stay near 1000 ps"
        );
        let (min, max) = (gaps.iter().min().unwrap(), gaps.iter().max().unwrap());
        assert!(min < max, "bursts compress some gaps: {min} vs {max}");
    }
}
