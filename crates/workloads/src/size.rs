//! Packet-size distributions.
//!
//! Table 2's whole argument turns on packet sizes: switches are sized for a
//! *minimum* packet, and applications that send small (often single-key)
//! packets are the ones that stress it. These distributions drive the
//! traffic generators.

use adcp_sim::rng::SimRng;

/// A packet-size distribution (frame bytes, excluding wire overhead).
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// Every packet the same size.
    Fixed(u32),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest frame.
        lo: u32,
        /// Largest frame.
        hi: u32,
    },
    /// The classic IMIX blend: 7×64 B : 4×594 B : 1×1518 B.
    Imix,
    /// A coarse datacenter mix: heavy small-packet mode (ACKs, RPCs) plus
    /// an MTU mode — roughly the bimodal shape reported for DC traffic.
    Datacenter,
}

impl SizeDist {
    /// Draw one frame size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match self {
            SizeDist::Fixed(n) => *n,
            SizeDist::Uniform { lo, hi } => rng.range(*lo..=*hi),
            SizeDist::Imix => match rng.range(0..12u32) {
                0..=6 => 64,
                7..=10 => 594,
                _ => 1518,
            },
            SizeDist::Datacenter => {
                let r = rng.f64();
                if r < 0.50 {
                    rng.range(64..=128)
                } else if r < 0.65 {
                    rng.range(128..=576)
                } else if r < 0.80 {
                    rng.range(576..=1200)
                } else {
                    1500
                }
            }
        }
    }

    /// Expected frame size (exact for Fixed/Uniform/Imix, estimated by
    /// sampling for Datacenter).
    pub fn mean(&self, rng: &mut SimRng) -> f64 {
        match self {
            SizeDist::Fixed(n) => *n as f64,
            SizeDist::Uniform { lo, hi } => (*lo as f64 + *hi as f64) / 2.0,
            SizeDist::Imix => (7.0 * 64.0 + 4.0 * 594.0 + 1518.0) / 12.0,
            SizeDist::Datacenter => {
                let n = 10_000;
                (0..n).map(|_| self.sample(rng) as f64).sum::<f64>() / n as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let mut r = SimRng::seed_from(1);
        let d = SizeDist::Fixed(200);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 200);
        }
        assert_eq!(d.mean(&mut r), 200.0);
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = SimRng::seed_from(2);
        let d = SizeDist::Uniform { lo: 100, hi: 300 };
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((100..=300).contains(&s));
        }
        assert_eq!(d.mean(&mut r), 200.0);
    }

    #[test]
    fn imix_ratio_roughly_7_4_1() {
        let mut r = SimRng::seed_from(3);
        let d = SizeDist::Imix;
        let mut counts = [0u32; 3];
        for _ in 0..12_000 {
            match d.sample(&mut r) {
                64 => counts[0] += 1,
                594 => counts[1] += 1,
                1518 => counts[2] += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        assert!((6_500..7_500).contains(&counts[0]), "{counts:?}");
        assert!((3_500..4_500).contains(&counts[1]), "{counts:?}");
        assert!((700..1_300).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn datacenter_bimodal() {
        let mut r = SimRng::seed_from(4);
        let d = SizeDist::Datacenter;
        let small = (0..10_000).filter(|_| d.sample(&mut r) <= 128).count() as f64 / 10_000.0;
        assert!((0.4..0.6).contains(&small), "small fraction = {small}");
        let mean = d.mean(&mut r);
        assert!((300.0..700.0).contains(&mean), "mean = {mean}");
    }
}
