//! Arrival processes: when packets hit the switch.
//!
//! The regenerators drive the switch models either at a constant offered
//! load (rate sweeps) or with Poisson arrivals (queueing behaviour). The
//! serving daemon (`adcpd`) additionally needs *open-loop* sources that
//! model a large user population over long horizons: a diurnal rate
//! profile (day/night swing of an aggregate of millions of users) with a
//! Markov-modulated burst overlay (MMPP) on top. [`OpenLoopSource`]
//! composes both via Lewis–Shedler thinning, so arrival times are a pure
//! function of the seed — offered load can never depend on how fast the
//! switch serves (no feedback channel exists by construction).

use adcp_sim::rng::SimRng;
use adcp_sim::time::{Duration, SimTime};

/// An arrival process generating a monotone sequence of times.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Constant bit-rate style: one arrival every `gap`.
    Cbr {
        /// Inter-arrival gap.
        gap: Duration,
    },
    /// Poisson process with the given mean inter-arrival gap.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Duration,
    },
}

impl Arrivals {
    /// CBR at `pps` packets per second.
    pub fn cbr_pps(pps: f64) -> Self {
        assert!(pps > 0.0);
        Arrivals::Cbr {
            gap: Duration((1e12 / pps) as u64),
        }
    }

    /// Poisson at an average of `pps` packets per second.
    pub fn poisson_pps(pps: f64) -> Self {
        assert!(pps > 0.0);
        Arrivals::Poisson {
            mean_gap: Duration((1e12 / pps) as u64),
        }
    }

    /// Next arrival after `t`.
    pub fn next(&self, t: SimTime, rng: &mut SimRng) -> SimTime {
        match self {
            Arrivals::Cbr { gap } => t + *gap,
            Arrivals::Poisson { mean_gap } => {
                // Inverse-CDF exponential; clamp u away from 0.
                let u = rng.f64().max(1e-12);
                let gap = (-(u.ln()) * mean_gap.as_ps() as f64) as u64;
                t + Duration(gap.max(1))
            }
        }
    }

    /// The first `n` arrival times starting from `start`.
    pub fn take(&self, start: SimTime, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut t = start;
        (0..n)
            .map(|_| {
                t = self.next(t, rng);
                t
            })
            .collect()
    }
}

/// Sinusoidal diurnal rate profile for an aggregate user population: the
/// instantaneous offered load swings around `base_pps` once per `period`.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalCfg {
    /// Mean offered load in packets per second (the daily midpoint).
    pub base_pps: f64,
    /// Relative swing in `[0, 1)`: the rate peaks at `base_pps * (1 +
    /// amplitude)` and troughs at `base_pps * (1 - amplitude)`.
    pub amplitude: f64,
    /// Length of one (possibly compressed) "day".
    pub period: Duration,
    /// Phase offset as a fraction of the period in `[0, 1)`. Phase 0
    /// starts at the midpoint heading towards the peak.
    pub phase: f64,
}

impl DiurnalCfg {
    /// Instantaneous rate at simulated time `t`, in packets per second.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let frac = (t.as_ps() % self.period.as_ps()) as f64 / self.period.as_ps() as f64;
        let theta = std::f64::consts::TAU * (frac + self.phase);
        self.base_pps * (1.0 + self.amplitude * theta.sin())
    }

    /// The profile's peak rate (used as the thinning majorant).
    pub fn peak_pps(&self) -> f64 {
        self.base_pps * (1.0 + self.amplitude)
    }
}

/// Two-state Markov-modulated burst overlay: the chain alternates between
/// a quiet regime and burst episodes during which the diurnal rate is
/// multiplied by `burst_factor`. Holding times are exponential, so the
/// composition with a Poisson arrival draw is an MMPP.
#[derive(Debug, Clone, Copy)]
pub struct MmppCfg {
    /// Rate multiplier while a burst episode is on (`>= 1`).
    pub burst_factor: f64,
    /// Mean quiet-regime holding time.
    pub mean_quiet: Duration,
    /// Mean burst-episode length.
    pub mean_burst: Duration,
}

/// The regime timeline of an [`MmppCfg`]: a pure function of the seed, so
/// burst episodes can be recomputed (and asserted on) independently of how
/// many arrivals each episode produced.
#[derive(Debug, Clone)]
struct RegimeClock {
    cfg: Option<MmppCfg>,
    rng: SimRng,
    in_burst: bool,
    /// Time at which the current regime ends.
    until: SimTime,
}

/// Salt mixed into the seed for the regime RNG stream, so the burst
/// schedule is independent of the arrival-candidate draw count.
const REGIME_SALT: u64 = 0x4d4d_5050; // "MMPP"

impl RegimeClock {
    fn new(cfg: Option<MmppCfg>, seed: u64) -> Self {
        let mut clock = RegimeClock {
            cfg,
            rng: SimRng::seed_from(seed ^ REGIME_SALT),
            in_burst: false,
            until: SimTime(u64::MAX),
        };
        if cfg.is_some() {
            // Start in the quiet regime: pretend we are in a burst and
            // flip, which toggles to quiet and draws a quiet holding time.
            clock.until = SimTime::ZERO;
            clock.in_burst = true;
            clock.flip();
        }
        clock
    }

    /// Draw the next holding time and toggle the regime.
    fn flip(&mut self) {
        let cfg = self.cfg.expect("flip without mmpp");
        self.in_burst = !self.in_burst;
        let mean = if self.in_burst {
            cfg.mean_burst
        } else {
            cfg.mean_quiet
        };
        let u = self.rng.f64().max(1e-12);
        let hold = ((-(u.ln())) * mean.as_ps() as f64) as u64;
        self.until += Duration(hold.max(1));
    }

    /// Advance the chain so that `t < self.until`, returning the regime
    /// in force at `t`.
    fn regime_at(&mut self, t: SimTime) -> bool {
        while t >= self.until {
            self.flip();
        }
        self.in_burst
    }
}

impl MmppCfg {
    /// The deterministic regime schedule for `seed` up to `horizon`:
    /// `(switch_time, enters_burst)` pairs in increasing time order. This
    /// is exactly the timeline an [`OpenLoopSource`] built with the same
    /// seed follows, so tests can cross-check burst episodes without
    /// observing arrivals.
    pub fn schedule(&self, seed: u64, horizon: SimTime) -> Vec<(SimTime, bool)> {
        let mut clock = RegimeClock::new(Some(*self), seed);
        let mut out = Vec::new();
        while clock.until < horizon {
            let at = clock.until;
            clock.flip();
            out.push((at, clock.in_burst));
        }
        out
    }
}

/// An open-loop arrival source: diurnal profile plus optional MMPP burst
/// overlay, realised by Lewis–Shedler thinning of a homogeneous Poisson
/// majorant at the peak achievable rate. The sequence of arrival times is
/// a pure function of `(cfg, seed)` — there is no feedback channel from
/// the server, so offered load is independent of service time by
/// construction (the property the serving daemon's SLO accounting relies
/// on).
#[derive(Debug, Clone)]
pub struct OpenLoopSource {
    diurnal: DiurnalCfg,
    mmpp: Option<MmppCfg>,
    regimes: RegimeClock,
    rng: SimRng,
    rate_max: f64,
    t: SimTime,
    /// An arrival generated past a window boundary by `arrivals_until`,
    /// handed out first by the next `next()` call.
    pending: Option<SimTime>,
}

impl OpenLoopSource {
    /// Build a source from a diurnal profile, an optional burst overlay
    /// and a seed. Panics on non-finite or out-of-range parameters.
    pub fn new(diurnal: DiurnalCfg, mmpp: Option<MmppCfg>, seed: u64) -> Self {
        assert!(diurnal.base_pps > 0.0 && diurnal.base_pps.is_finite());
        assert!((0.0..1.0).contains(&diurnal.amplitude));
        assert!(diurnal.period.as_ps() > 0);
        if let Some(m) = &mmpp {
            assert!(m.burst_factor >= 1.0 && m.burst_factor.is_finite());
            assert!(m.mean_quiet.as_ps() > 0 && m.mean_burst.as_ps() > 0);
        }
        let rate_max = diurnal.peak_pps() * mmpp.map_or(1.0, |m| m.burst_factor);
        OpenLoopSource {
            diurnal,
            mmpp,
            regimes: RegimeClock::new(mmpp, seed),
            rng: SimRng::seed_from(seed),
            rate_max,
            t: SimTime::ZERO,
            pending: None,
        }
    }

    /// The instantaneous target rate at `t` (diurnal x burst), in pps.
    /// Advances the regime chain, so queries must move forward in time —
    /// which the arrival loop guarantees.
    fn rate_at(&mut self, t: SimTime) -> f64 {
        let mut rate = self.diurnal.rate_at(t);
        if let Some(m) = &self.mmpp {
            if self.regimes.regime_at(t) {
                rate *= m.burst_factor;
            }
        }
        rate
    }

    /// Next arrival time (strictly increasing).
    #[allow(clippy::should_implement_trait)] // infinite source, not an Iterator
    pub fn next(&mut self) -> SimTime {
        if let Some(at) = self.pending.take() {
            return at;
        }
        loop {
            // Candidate from the homogeneous majorant at `rate_max`.
            let u = self.rng.f64().max(1e-12);
            let gap = ((-(u.ln())) * 1e12 / self.rate_max) as u64;
            self.t += Duration(gap.max(1));
            // Accept with probability rate(t)/rate_max.
            let accept = self.rate_at(self.t) / self.rate_max;
            if self.rng.f64() < accept {
                return self.t;
            }
        }
    }

    /// The first `n` arrivals (consuming the source).
    pub fn take(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next()).collect()
    }

    /// All arrivals strictly before `horizon` (consuming the source).
    /// The internal clock ends past `horizon`, so interleaving
    /// `arrivals_until` calls over successive windows loses nothing: the
    /// first arrival of the next window is carried over.
    pub fn arrivals_until(&mut self, horizon: SimTime, out: &mut Vec<SimTime>) {
        if let Some(at) = self.pending {
            if at >= horizon {
                return;
            }
            self.pending = None;
            out.push(at);
        }
        loop {
            let at = self.next();
            if at >= horizon {
                // Rewind bookkeeping is unnecessary: `next` already
                // committed `self.t = at`, and the accept draw consumed
                // for it stays consumed — the sequence is still a pure
                // function of the seed. Remember it for the next window.
                self.pending = Some(at);
                return;
            }
            out.push(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_is_evenly_spaced() {
        let a = Arrivals::cbr_pps(1e9); // 1 per ns
        let mut r = SimRng::seed_from(1);
        let times = a.take(SimTime::ZERO, 5, &mut r);
        let gaps: Vec<u64> = times.windows(2).map(|w| (w[1] - w[0]).as_ps()).collect();
        assert!(gaps.iter().all(|&g| g == 1000), "{gaps:?}");
    }

    #[test]
    fn poisson_mean_close_to_target() {
        let a = Arrivals::poisson_pps(1e9);
        let mut r = SimRng::seed_from(2);
        let n = 50_000;
        let times = a.take(SimTime::ZERO, n, &mut r);
        let mean_gap = times.last().unwrap().as_ps() as f64 / n as f64;
        assert!(
            (900.0..1100.0).contains(&mean_gap),
            "mean gap = {mean_gap} ps"
        );
    }

    fn diurnal() -> DiurnalCfg {
        DiurnalCfg {
            base_pps: 1e9,
            amplitude: 0.5,
            period: Duration::from_us(100),
            phase: 0.0,
        }
    }

    fn mmpp() -> MmppCfg {
        MmppCfg {
            burst_factor: 4.0,
            mean_quiet: Duration::from_us(20),
            mean_burst: Duration::from_us(5),
        }
    }

    #[test]
    fn open_loop_strictly_increases() {
        let mut src = OpenLoopSource::new(diurnal(), Some(mmpp()), 7);
        let times = src.take(5_000);
        for w in times.windows(2) {
            assert!(w[1] > w[0], "{:?}", &w);
        }
    }

    #[test]
    fn open_loop_mean_rate_close_to_base() {
        // Over whole periods the sinusoid integrates out; without bursts
        // the long-run mean must track base_pps.
        let mut src = OpenLoopSource::new(diurnal(), None, 11);
        let horizon = SimTime(diurnal().period.as_ps() * 10);
        let mut times = Vec::new();
        src.arrivals_until(horizon, &mut times);
        let expect = diurnal().base_pps * horizon.as_ps() as f64 / 1e12;
        let got = times.len() as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn windowed_consumption_equals_bulk() {
        // arrivals_until over many small windows must yield exactly the
        // take() sequence: the boundary carry-over loses nothing.
        let mut bulk = OpenLoopSource::new(diurnal(), Some(mmpp()), 13);
        let reference = bulk.take(2_000);
        let mut windowed = OpenLoopSource::new(diurnal(), Some(mmpp()), 13);
        let mut got = Vec::new();
        let step = Duration::from_us(3);
        let mut t = SimTime::ZERO;
        while got.len() < reference.len() {
            t += step;
            windowed.arrivals_until(t, &mut got);
        }
        assert_eq!(&got[..reference.len()], &reference[..]);
    }

    #[test]
    fn regime_schedule_alternates_and_is_deterministic() {
        let horizon = SimTime::from_ms(10);
        let a = mmpp().schedule(42, horizon);
        let b = mmpp().schedule(42, horizon);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // The chain starts quiet, so the first switch enters a burst and
        // regimes alternate from there.
        for (i, &(_, burst)) in a.iter().enumerate() {
            assert_eq!(burst, i % 2 == 0);
        }
    }

    #[test]
    fn arrivals_strictly_increase() {
        for proc_ in [Arrivals::cbr_pps(5e8), Arrivals::poisson_pps(5e8)] {
            let mut r = SimRng::seed_from(3);
            let times = proc_.take(SimTime::from_ns(10), 1000, &mut r);
            for w in times.windows(2) {
                assert!(w[1] > w[0]);
            }
            assert!(times[0] > SimTime::from_ns(10));
        }
    }
}
