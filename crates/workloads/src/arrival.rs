//! Arrival processes: when packets hit the switch.
//!
//! The regenerators drive the switch models either at a constant offered
//! load (rate sweeps) or with Poisson arrivals (queueing behaviour).

use adcp_sim::rng::SimRng;
use adcp_sim::time::{Duration, SimTime};

/// An arrival process generating a monotone sequence of times.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Constant bit-rate style: one arrival every `gap`.
    Cbr {
        /// Inter-arrival gap.
        gap: Duration,
    },
    /// Poisson process with the given mean inter-arrival gap.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Duration,
    },
}

impl Arrivals {
    /// CBR at `pps` packets per second.
    pub fn cbr_pps(pps: f64) -> Self {
        assert!(pps > 0.0);
        Arrivals::Cbr {
            gap: Duration((1e12 / pps) as u64),
        }
    }

    /// Poisson at an average of `pps` packets per second.
    pub fn poisson_pps(pps: f64) -> Self {
        assert!(pps > 0.0);
        Arrivals::Poisson {
            mean_gap: Duration((1e12 / pps) as u64),
        }
    }

    /// Next arrival after `t`.
    pub fn next(&self, t: SimTime, rng: &mut SimRng) -> SimTime {
        match self {
            Arrivals::Cbr { gap } => t + *gap,
            Arrivals::Poisson { mean_gap } => {
                // Inverse-CDF exponential; clamp u away from 0.
                let u = rng.f64().max(1e-12);
                let gap = (-(u.ln()) * mean_gap.as_ps() as f64) as u64;
                t + Duration(gap.max(1))
            }
        }
    }

    /// The first `n` arrival times starting from `start`.
    pub fn take(&self, start: SimTime, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut t = start;
        (0..n)
            .map(|_| {
                t = self.next(t, rng);
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_is_evenly_spaced() {
        let a = Arrivals::cbr_pps(1e9); // 1 per ns
        let mut r = SimRng::seed_from(1);
        let times = a.take(SimTime::ZERO, 5, &mut r);
        let gaps: Vec<u64> = times.windows(2).map(|w| (w[1] - w[0]).as_ps()).collect();
        assert!(gaps.iter().all(|&g| g == 1000), "{gaps:?}");
    }

    #[test]
    fn poisson_mean_close_to_target() {
        let a = Arrivals::poisson_pps(1e9);
        let mut r = SimRng::seed_from(2);
        let n = 50_000;
        let times = a.take(SimTime::ZERO, n, &mut r);
        let mean_gap = times.last().unwrap().as_ps() as f64 / n as f64;
        assert!(
            (900.0..1100.0).contains(&mean_gap),
            "mean gap = {mean_gap} ps"
        );
    }

    #[test]
    fn arrivals_strictly_increase() {
        for proc_ in [Arrivals::cbr_pps(5e8), Arrivals::poisson_pps(5e8)] {
            let mut r = SimRng::seed_from(3);
            let times = proc_.take(SimTime::from_ns(10), 1000, &mut r);
            for w in times.windows(2) {
                assert!(w[1] > w[0]);
            }
            assert!(times[0] > SimTime::from_ns(10));
        }
    }
}
