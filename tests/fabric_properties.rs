//! Property tests for the leaf–spine fabric (DESIGN.md §11), under
//! randomized drop/corrupt/delay fault schedules on the host links:
//!
//! 1. **Conservation across links**: every frame injected at a host port
//!    is either delivered at a host port or sits in exactly one typed drop
//!    class on exactly one switch — inter-switch link crossings cancel out
//!    of the identity because links never drop.
//! 2. **Cross-switch journeys**: a packet's per-switch journey segments
//!    are each time-monotonic chains ending in one terminal hop, and the
//!    segments chain monotonically across switches (a frame cannot enter
//!    the next device before it left the previous one).
//! 3. **Forensics ≡ registry**: on every device, the journey tracer's
//!    forensic drop aggregation agrees with the metrics registry, through
//!    the same exporter path the `adcp-trace --forensics` CLI uses.
//!
//! Inputs are generated with the simulator's own deterministic [`SimRng`]
//! (the offline build cannot fetch proptest), so failures reproduce
//! exactly from the printed seed.

use std::collections::BTreeSet;

use adcp::core::{AdcpConfig, AdcpSwitch};
use adcp::fabric::{demo_fabric, Fabric, FabricConfig, DEMO_CELLS};
use adcp::lang::deposit_bits;
use adcp::sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp::sim::packet::{FlowId, Packet};
use adcp::sim::rng::SimRng;
use adcp::sim::time::{Duration, SimTime};
use adcp::sim::trace::{Hop, Site};
use adcp_bench::journey::forensics;

const PKTS: u64 = 300;
/// Injection gap, comfortably above the fault injector's max delay so the
/// workload arrives in id order at every device.
const GAP_NS: u64 = 3_000;

/// The demo partitioned-counter wire format: op:8 key:32 idx:16 val:32
/// fphase:8 fgk:16 (scratch fields left zero).
fn frame(key: u64, idx: u64, val: u64) -> Vec<u8> {
    let mut buf = vec![0u8; 14];
    assert!(deposit_bits(&mut buf, 0, 8, 1));
    assert!(deposit_bits(&mut buf, 8, 32, key));
    assert!(deposit_bits(&mut buf, 40, 16, idx));
    assert!(deposit_bits(&mut buf, 56, 32, val));
    buf
}

/// What one faulty run observed, fabric plus host-side bookkeeping.
struct Run {
    fabric: Fabric,
    /// Ids that reached a host RX port (survived the wire).
    injected: BTreeSet<u64>,
    /// Ids delivered back out of a host TX port.
    delivered: BTreeSet<u64>,
    /// Frames that were bit-flipped on the wire but still injected.
    corrupted: u64,
}

/// Drive the 2-spine × 4-leaf demo fabric (journey tracing on) through a
/// seeded workload with host-link faults applied before injection.
fn run_faulty(seed: u64) -> Run {
    let cfg = FabricConfig {
        switch: AdcpConfig {
            trace: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let (mut fabric, _program) = demo_fabric(seed, cfg);
    let mut rng = SimRng::seed_from(seed);
    let mut inj = FaultInjector::new(
        FaultConfig {
            drop_chance: 0.06,
            corrupt_chance: 0.08,
            delay_chance: 0.15,
            max_delay: Duration::from_ns(2_000),
        },
        SimRng::seed_from(seed ^ 0xFA17),
    );
    let ports = fabric.spec().logical_ports() as u64;
    let mut injected = BTreeSet::new();
    let mut corrupted = 0u64;
    for i in 0..PKTS {
        let key = rng.range(0u64..1 << 32);
        let idx = rng.range(0u64..DEMO_CELLS as u64);
        let val = rng.range(1u64..1000);
        let mut p = Packet::new(i, FlowId(1000 + i), frame(key, idx, val)).seal();
        let base = SimTime::from_ns(1 + i * GAP_NS);
        let at = match inj.apply(&mut p) {
            FaultOutcome::Dropped => continue, // lost on the wire
            FaultOutcome::Corrupted => {
                corrupted += 1;
                base
            }
            FaultOutcome::Delayed(d) => base + d,
            FaultOutcome::Pass => base,
        };
        injected.insert(i);
        fabric.inject((i % ports) as u32, p, at);
    }
    fabric.run_until_idle();
    fabric.check_conservation();
    let delivered: BTreeSet<u64> = fabric.take_delivered().iter().map(|d| d.meta.id).collect();
    Run {
        fabric,
        injected,
        delivered,
        corrupted,
    }
}

/// Every switch in the fabric, named.
fn devices(fabric: &Fabric) -> Vec<(String, &AdcpSwitch)> {
    let mut out = Vec::new();
    for l in 0..fabric.n_leaves() {
        out.push((format!("leaf{l}"), fabric.leaf(l)));
    }
    for s in 0..fabric.n_spines() {
        out.push((format!("spine{s}"), fabric.spine(s)));
    }
    out
}

fn is_terminal(site: Site) -> bool {
    matches!(site, Site::Tx(_) | Site::Dropped)
}

/// The per-segment chain invariants (same as the single-switch journey
/// properties): time-sorted spans, internally ordered, at most one
/// terminal hop and nothing after it.
fn check_chain(hops: &[Hop], what: &str) {
    for w in hops.windows(2) {
        assert!(
            w[0].enter <= w[1].enter && w[0].exit <= w[1].exit,
            "{what}: journey not time-sorted: {:?} then {:?}",
            w[0],
            w[1]
        );
        assert!(
            !is_terminal(w[0].site),
            "{what}: hop after terminal: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    for h in hops {
        assert!(h.enter <= h.exit, "{what}: reversed span {h:?}");
    }
    assert!(
        hops.iter().filter(|h| is_terminal(h.site)).count() <= 1,
        "{what}: multiple terminal hops: {hops:?}"
    );
}

/// Injected == delivered + Σ typed drops, summed over every switch in the
/// fabric; the only populated drop class is the MAC's FCS rejection of the
/// wire-corrupted frames, and it matches the host-side corruption count
/// exactly.
#[test]
fn conservation_holds_fabric_wide_under_faults() {
    for seed in [0xFAB1u64, 0xFAB2, 0xFAB3] {
        let run = run_faulty(seed);
        let f = &run.fabric;
        assert_eq!(f.host_injected(), run.injected.len() as u64);
        assert_eq!(f.host_delivered(), run.delivered.len() as u64);
        assert!(f.forwarded() > 0, "seed {seed:#x}: nothing crossed a link");
        assert!(
            run.corrupted > 0,
            "seed {seed:#x}: schedule exercised no corruption"
        );
        let (mut total_drops, mut fcs_drops) = (0u64, 0u64);
        for (name, sw) in devices(f) {
            let c = &sw.counters;
            assert_eq!(c.parse_errors, 0, "seed {seed:#x} {name}: parse errors");
            assert_eq!(c.no_decision, 0, "seed {seed:#x} {name}: no_decision");
            assert_eq!(c.bad_port, 0, "seed {seed:#x} {name}: bad_port");
            assert_eq!(c.filtered, 0, "seed {seed:#x} {name}: filtered");
            assert_eq!(
                c.tm1_drops + c.tm1_queue_drops + c.tm2_drops + c.tm2_queue_drops,
                0,
                "seed {seed:#x} {name}: TM/queue drops"
            );
            total_drops += c.total_drops();
            fcs_drops += c.fcs_drops;
        }
        assert_eq!(
            f.host_injected(),
            f.host_delivered() + total_drops,
            "seed {seed:#x}: fabric-wide conservation violated"
        );
        assert_eq!(
            fcs_drops, run.corrupted,
            "seed {seed:#x}: every wire-corrupted frame must die at an FCS check"
        );
    }
}

/// Split one device's journey into visits: a packet can transit the same
/// switch more than once (a spine carries it toward the owner leaf in
/// phase 2 and back toward the delivery leaf in phase 3), and each
/// traversal is its own Rx→…→Tx chain. A new visit starts after every
/// terminal hop.
fn visits(hops: Vec<Hop>) -> Vec<Vec<Hop>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for h in hops {
        let terminal = is_terminal(h.site);
        cur.push(h);
        if terminal {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Each sampled packet's journey splits into visits — one per switch
/// traversal — each a monotonic chain with one terminal hop; the visits
/// order by entry time and never overlap backwards (the link latency
/// separates them); every non-final visit ends in a `Tx` (the frame left
/// over a link), and the final one ends in `Tx` iff the packet reached a
/// host port, `Dropped` otherwise.
#[test]
fn journeys_chain_across_switches() {
    let run = run_faulty(0x10AD_FAB5);
    let devs = devices(&run.fabric);
    if !devs[0].1.tracer.is_enabled() {
        eprintln!("journey tracer disabled via env; skipping");
        return;
    }
    for (name, sw) in &devs {
        assert_eq!(sw.tracer.evicted(), 0, "{name}: ring must hold the run");
    }
    let mut multi_hop = 0u64;
    for &id in &run.injected {
        if !devs[0].1.tracer.samples(id) {
            continue;
        }
        let mut segs: Vec<(String, Vec<Hop>)> = devs
            .iter()
            .flat_map(|(name, sw)| {
                visits(sw.tracer.journey_of(id))
                    .into_iter()
                    .map(|v| (name.clone(), v))
            })
            .collect();
        assert!(!segs.is_empty(), "pkt {id}: injected but traced nowhere");
        segs.sort_by_key(|(_, hops)| hops[0].enter);
        if segs.len() > 1 {
            multi_hop += 1;
        }
        for (name, hops) in &segs {
            check_chain(hops, &format!("pkt {id} on {name}"));
        }
        for w in segs.windows(2) {
            let (prev_name, prev) = &w[0];
            let (next_name, next) = &w[1];
            assert!(
                prev.last().unwrap().exit <= next[0].enter,
                "pkt {id}: entered {next_name} before leaving {prev_name}"
            );
            assert!(
                matches!(prev.last().unwrap().site, Site::Tx(_)),
                "pkt {id}: left {prev_name} without a Tx terminal"
            );
        }
        let (last_name, last_hops) = segs.last().unwrap();
        let last = last_hops.last().unwrap();
        if run.delivered.contains(&id) {
            assert!(
                matches!(last.site, Site::Tx(_)),
                "pkt {id}: delivered but its journey ends at {:?} on {last_name}",
                last.site
            );
        } else {
            assert_eq!(
                last.site,
                Site::Dropped,
                "pkt {id}: never delivered but its journey ends at {:?} on {last_name}",
                last.site
            );
        }
    }
    assert!(
        multi_hop > 0,
        "no sampled packet crossed a switch boundary; the property was not exercised"
    );
}

/// On every device, forensic drop totals reconstructed from the journey
/// trace agree with the metrics registry (skipped per device only when the
/// tracer/registry is env-disabled, in which case there is nothing to
/// check — same contract as the conformance harness).
#[test]
fn forensics_agree_with_metrics_on_every_switch() {
    let run = run_faulty(0xF0E5_FAB5);
    for (name, sw) in devices(&run.fabric) {
        match forensics(&sw.trace_json(), &sw.metrics().to_json()) {
            None => {}
            Some(f) => assert!(
                f.ok(),
                "{name}: forensics disagree with the registry: {}",
                f.mismatches.join("; ")
            ),
        }
    }
}
