//! The §3.1 first-TM semantics end to end: range partitioning composed
//! with the order-preserving merge yields a switch-side merge sort.
//! (The `switch_sort` example is the narrated version of this test.)

use adcp::core::{AdcpConfig, AdcpSwitch, DemuxPolicy};
use adcp::lang::{
    fold_hash, ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef,
    HeaderId, KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder, Region,
    TableDef, TargetModel, TmSpec,
};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::rng::SimRng;
use adcp::sim::sched::Policy;
use adcp::sim::time::{Duration, SimTime};

const KEY_SPACE: u64 = 1 << 16;
const PARTITIONS: u64 = 4;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

fn sort_program() -> Program {
    let mut b = ProgramBuilder::new("sort");
    let h = b.header(HeaderDef::new(
        "rec",
        vec![
            FieldDef::scalar("key", 32),
            FieldDef::scalar("mapper", 16),
            FieldDef::scalar("pad", 16),
        ],
    ));
    b.parser(ParserSpec::single(h));
    b.tm1(TmSpec {
        policy: Policy::MergeOrder,
    });
    b.table(TableDef {
        name: "range_partition".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(0),
            kind: MatchKind::Range,
            bits: 32,
        }),
        actions: vec![
            ActionDef::new(
                "to_partition",
                vec![
                    ActionOp::SetCentralPipe(Operand::Param(0)),
                    ActionOp::SetSortKey(Operand::Field(fr(0))),
                ],
            ),
            ActionDef::new("oob", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 16,
    });
    b.table(TableDef {
        name: "to_reducer".into(),
        region: Region::Central,
        key: Some(KeySpec {
            field: fr(0),
            kind: MatchKind::Range,
            bits: 32,
        }),
        actions: vec![
            ActionDef::new("out", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("oob", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 16,
    });
    b.build()
}

fn record(id: u64, m: u16, k: u64) -> Packet {
    let mut data = vec![0u8; 8];
    data[..4].copy_from_slice(&(k as u32).to_be_bytes());
    data[4..6].copy_from_slice(&m.to_be_bytes());
    Packet::new(id, FlowId(m as u64), data)
}

#[test]
fn range_partition_plus_merge_is_a_switch_side_sort() {
    let mappers: u16 = 4;
    let rows_each: u32 = 300;
    let reducer_base = mappers;
    let stride = KEY_SPACE / PARTITIONS;

    let mut sw = AdcpSwitch::new(
        sort_program(),
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig {
            demux: DemuxPolicy::FlowHash,
            ..Default::default()
        },
    )
    .unwrap();
    for r in 0..PARTITIONS {
        let (lo, hi) = (r * stride, (r + 1) * stride - 1);
        sw.install_all(
            "range_partition",
            Entry {
                value: MatchValue::Range { lo, hi },
                action: 0,
                params: vec![r],
            },
        )
        .unwrap();
        sw.install_all(
            "to_reducer",
            Entry {
                value: MatchValue::Range { lo, hi },
                action: 0,
                params: vec![(reducer_base as u64) + r],
            },
        )
        .unwrap();
    }
    // Exact merge preconditions: mark never-used input queues ended, and
    // terminate each mapper's stream with per-partition EOS records.
    let used: Vec<usize> = (0..mappers)
        .map(|m| m as usize * 2 + (fold_hash([m as u64]) % 2) as usize)
        .collect();
    for c in 0..PARTITIONS as usize {
        for p in 0..sw.target().num_pipes() as usize {
            if !used.contains(&p) {
                sw.tm1_mark_ended(c, p);
            }
        }
    }
    let mut rng = SimRng::seed_from(7);
    let mut id = 0;
    let mut total = 0u64;
    for m in 0..mappers {
        let mut keys: Vec<u64> = (0..rows_each)
            .map(|_| rng.range(0..KEY_SPACE - 1))
            .collect();
        keys.sort_unstable();
        let mut t = SimTime::ZERO;
        for k in keys {
            sw.inject(PortId(m), record(id, m, k), t);
            id += 1;
            total += 1;
            t += Duration::from_ns(2);
        }
        for r in 0..PARTITIONS {
            sw.inject(PortId(m), record(id, 0xFFFF, (r + 1) * stride - 1), t);
            id += 1;
        }
    }
    sw.run_until_idle();
    sw.check_conservation();

    let delivered = sw.take_delivered();
    let mut per_reducer: Vec<Vec<u64>> = vec![Vec::new(); PARTITIONS as usize];
    let mut data_records = 0u64;
    for d in &delivered {
        let mapper = u16::from_be_bytes(d.data[4..6].try_into().unwrap());
        if mapper == 0xFFFF {
            continue;
        }
        data_records += 1;
        let key = u32::from_be_bytes(d.data[..4].try_into().unwrap()) as u64;
        per_reducer[(d.port.0 - reducer_base) as usize].push(key);
    }
    assert_eq!(data_records, total, "every record delivered exactly once");
    for (r, keys) in per_reducer.iter().enumerate() {
        assert!(!keys.is_empty(), "partition {r} starved");
        assert!(
            keys.iter().all(|k| *k / stride == r as u64),
            "partition {r} received out-of-range keys"
        );
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "partition {r} not globally sorted"
        );
    }
}

/// Without the end-of-stream discipline the merge is only approximate —
/// the switch still delivers everything (bounded patience, no deadlock).
#[test]
fn merge_without_eos_still_delivers_everything() {
    let mut sw = AdcpSwitch::new(
        sort_program(),
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig {
            demux: DemuxPolicy::FlowHash,
            merge_patience: Duration::from_ns(200),
            ..Default::default()
        },
    )
    .unwrap();
    let stride = KEY_SPACE / PARTITIONS;
    for r in 0..PARTITIONS {
        let (lo, hi) = (r * stride, (r + 1) * stride - 1);
        sw.install_all(
            "range_partition",
            Entry {
                value: MatchValue::Range { lo, hi },
                action: 0,
                params: vec![r],
            },
        )
        .unwrap();
        sw.install_all(
            "to_reducer",
            Entry {
                value: MatchValue::Range { lo, hi },
                action: 0,
                params: vec![4 + r],
            },
        )
        .unwrap();
    }
    let mut rng = SimRng::seed_from(8);
    for i in 0..400u64 {
        let m = (i % 4) as u16;
        sw.inject(
            PortId(m),
            record(i, m, rng.range(0..KEY_SPACE - 1)),
            SimTime(i * 500),
        );
    }
    sw.run_until_idle();
    sw.check_conservation();
    assert_eq!(sw.counters.delivered, 400);
}
