//! Randomized compiler fuzzing: randomly generated (valid) programs must
//! compile on every target without panicking, and successful placements
//! must respect every resource budget.
//!
//! Program descriptions are drawn from the simulator's deterministic
//! [`SimRng`] (proptest is unavailable offline), so every case reproduces
//! from the fixed seed.

use adcp::lang::{
    compile, ActionDef, ActionOp, BinOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef,
    HeaderId, KeySpec, MatchKind, Operand, ParserSpec, Program, ProgramBuilder, RegAluOp, Region,
    RegisterDef, RmtCentralStrategy, TableDef, TargetModel,
};
use adcp::sim::rng::SimRng;

/// A compact, always-valid program description the generator draws.
#[derive(Debug, Clone)]
struct ProgDesc {
    /// (bits, count) per field; at least one field.
    fields: Vec<(u8, u16)>,
    /// Per table: (region, keyed-on-field, log2(size), action op selector).
    tables: Vec<(u8, usize, u8, u8)>,
    /// Register size exponent.
    reg_log2: u8,
}

fn arb_desc(rng: &mut SimRng) -> ProgDesc {
    let nfields = rng.range(1usize..5);
    let fields = (0..nfields)
        .map(|_| {
            let bits = rng.range(1u8..=32);
            let count = [1u16, 4, 8][rng.index(3)];
            (bits, count)
        })
        .collect();
    let ntables = rng.range(1usize..7);
    let tables = (0..ntables)
        .map(|_| {
            (
                rng.range(0u8..3),
                rng.range(0usize..4),
                rng.range(4u8..=12),
                rng.range(0u8..5),
            )
        })
        .collect();
    ProgDesc {
        fields,
        tables,
        reg_log2: rng.range(4u8..=10),
    }
}

fn build(desc: &ProgDesc) -> Program {
    let mut b = ProgramBuilder::new("fuzz");
    let mut fields: Vec<FieldDef> = desc
        .fields
        .iter()
        .enumerate()
        .map(|(i, (bits, count))| {
            if *count > 1 {
                FieldDef::array(format!("f{i}"), *bits, *count)
            } else {
                FieldDef::scalar(format!("f{i}"), *bits)
            }
        })
        .collect();
    let total: u32 = fields.iter().map(|f| f.total_bits()).sum();
    let pad = (8 - (total % 8)) % 8;
    if pad > 0 {
        fields.push(FieldDef::scalar("pad", pad as u8));
    }
    let nfields = fields.len();
    let h = b.header(HeaderDef::new("h", fields));
    b.parser(ParserSpec::single(h));
    let reg = b.register(RegisterDef::new("r", 1u32 << desc.reg_log2, 32));

    let fr = |i: usize| FieldRef::new(HeaderId(0), FieldId((i % nfields) as u16));
    for (ti, (region, key_field, size_log2, op_sel)) in desc.tables.iter().enumerate() {
        let region = match region {
            0 => Region::Ingress,
            1 => Region::Central,
            _ => Region::Egress,
        };
        let f = fr(*key_field);
        let bits = {
            // key bits must match the field's element width
            let d = &b_fields_bits(desc, *key_field % nfields);
            *d
        };
        let ops = match op_sel {
            0 => vec![ActionOp::SetEgress(Operand::Const(0))],
            1 => vec![ActionOp::Bin {
                dst: f,
                op: BinOp::Add,
                a: Operand::Field(f),
                b: Operand::Const(1),
            }],
            2 if ti == 0 => vec![ActionOp::RegRmw {
                // registers are single-owner: only table 0 may use it
                reg,
                index: Operand::Const(0),
                op: RegAluOp::Add,
                value: Operand::Const(1),
                fetch: None,
            }],
            3 => vec![ActionOp::Hash {
                dst: f,
                fields: vec![f],
                modulo: 16,
            }],
            _ => vec![],
        };
        b.table(TableDef {
            name: format!("t{ti}"),
            region,
            key: Some(KeySpec {
                field: f,
                kind: MatchKind::Exact,
                bits,
            }),
            actions: vec![ActionDef::new("a", ops), ActionDef::nop()],
            default_action: 1,
            default_params: vec![],
            size: 1u32 << size_log2,
        });
    }
    b.build()
}

/// Element width of field `i` after padding normalization.
fn b_fields_bits(desc: &ProgDesc, i: usize) -> u8 {
    if i < desc.fields.len() {
        desc.fields[i].0
    } else {
        // the pad field
        let total: u32 = desc.fields.iter().map(|(b, c)| *b as u32 * *c as u32).sum();
        ((8 - (total % 8)) % 8) as u8
    }
}

#[test]
fn random_programs_never_panic_the_compiler() {
    let mut rng = SimRng::seed_from(0xF022);
    let mut cases = 0;
    while cases < 64 {
        let desc = arb_desc(&mut rng);
        let program = build(&desc);
        if !program.validate().is_empty() {
            continue; // invalid draw; redraw (mirrors prop_assume)
        }
        cases += 1;
        for target in [
            TargetModel::rmt_640g(),
            TargetModel::rmt_12t(),
            TargetModel::drmt_12t(),
            TargetModel::adcp_reference(),
        ] {
            for strategy in [
                RmtCentralStrategy::EgressPin,
                RmtCentralStrategy::Recirculate,
            ] {
                let result = compile(
                    &program,
                    &target,
                    CompileOptions {
                        rmt_central: strategy,
                    },
                );
                if let Ok(pl) = result {
                    // Budgets hold on every successful placement.
                    for plan in [&pl.ingress, &pl.central, &pl.egress] {
                        for st in &plan.stages {
                            assert!(st.mau_slots_used <= target.maus_per_stage);
                            if !target.pooled_table_memory {
                                assert!(st.mem_bits_used <= target.stage_mem_bits());
                            }
                            assert!(st.reg_bits_used <= target.stage_reg_bits);
                        }
                    }
                    if target.pooled_table_memory {
                        assert!(pl.total_mem_bits <= target.pool_bits());
                    }
                    assert!(pl.phv_bits_used <= target.phv_bits);
                }
                // Errors are fine — they must just be structured, which
                // reaching this line (no panic) demonstrates.
            }
        }
    }
}
