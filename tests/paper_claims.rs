//! The paper's headline claims, as executable assertions across the whole
//! stack. Each test names the section/figure it reproduces.

use adcp::analytic::scaling;
use adcp::apps::driver::TargetKind;
use adcp::apps::{kvcache, paramserv};

/// §2 ②: a 12.8 Tbps RMT processes 5–6 Gpps, so scalar applications are
/// capped near 6 G key-ops/s.
#[test]
fn scalar_rmt_key_rate_capped() {
    let t = adcp::lang::TargetModel::rmt_12t();
    let bpps = t.max_pps() / 1e9;
    assert!((5.0..7.0).contains(&bpps), "bpps = {bpps}");
    let p = adcp::analytic::keyrate::key_rate(t.max_pps(), 12_800.0, 8, 1);
    assert!(p.keys_per_sec <= 6.5e9);
}

/// §3.2: "By supporting 8- or 16-wide array processing, the ADCP
/// architecture can push that limit by one order of magnitude."
#[test]
fn array_processing_order_of_magnitude() {
    let narrow = kvcache::run(
        TargetKind::Adcp,
        &kvcache::KvCacheCfg {
            width: 1,
            requests: 400,
            ..Default::default()
        },
    );
    let wide = kvcache::run(
        TargetKind::Adcp,
        &kvcache::KvCacheCfg {
            width: 16,
            requests: 400,
            ..Default::default()
        },
    );
    let boost = wide.report.elements_per_sec / narrow.report.elements_per_sec;
    assert!(
        boost >= 10.0,
        "16-wide should be ~an order of magnitude: {boost:.1}x"
    );
}

/// §1/§2 ①: recirculation converges coflows "at a great bandwidth cost" —
/// every packet consumes a second ingress slot.
#[test]
fn recirculation_bandwidth_tax() {
    let cfg = paramserv::ParamServerCfg {
        workers: 8,
        model_size: 128,
        width: 1,
        seed: 11,
        central_workers: 1,
    };
    let adcp = paramserv::run(TargetKind::Adcp, &cfg);
    let recirc = paramserv::run(TargetKind::RmtRecirc, &cfg);
    assert!(adcp.correct && recirc.correct);
    assert_eq!(recirc.recirc_passes, recirc.injected, "1 extra pass/packet");
    assert_eq!(adcp.recirc_passes, 0);
    // The tax shows up as a longer makespan at equal work.
    assert!(
        recirc.makespan_ns > adcp.makespan_ns,
        "recirc {:.0}ns vs adcp {:.0}ns",
        recirc.makespan_ns,
        adcp.makespan_ns
    );
}

/// Fig. 2: egress-pinned coflow results can only leave via the pinned
/// pipeline's ports.
#[test]
fn egress_pinning_restricts_output() {
    let cfg = paramserv::ParamServerCfg {
        workers: 8,
        model_size: 64,
        width: 1,
        seed: 12,
        central_workers: 1,
    };
    let pinned = paramserv::run(TargetKind::RmtPinned, &cfg);
    assert!(pinned.correct);
    // 8 workers contributed, but only one port (the PS port) saw results:
    // 64 chunks delivered once each rather than once per worker.
    assert_eq!(pinned.delivered, 64);
    let adcp = paramserv::run(TargetKind::Adcp, &cfg);
    assert_eq!(adcp.delivered, 64 * 8, "ADCP multicasts to every worker");
}

/// Tables 2 and 3 are arithmetic; they must match the paper exactly
/// (modulo the documented row-4 throughput label and ±1 B rounding).
#[test]
fn tables_2_and_3_reproduce() {
    let t2 = scaling::table2();
    for (row, paper) in t2.iter().zip(scaling::PAPER_TABLE2) {
        assert_eq!(row.num_pipelines, paper.2);
        assert!((row.ports_per_pipeline - paper.3).abs() < 1e-9);
        assert!((row.min_packet_bytes as i64 - paper.4 as i64).abs() <= 1);
        assert!((row.pipeline_freq_ghz - paper.5).abs() < 0.011);
    }
    let t3 = scaling::table3();
    assert!((t3[1].pipeline_freq_ghz - 0.60).abs() < 0.011);
    assert!((t3[3].pipeline_freq_ghz - 1.19).abs() < 0.011);
}

/// Fig. 3: an 8-wide table costs RMT ~8× the capacity at equal memory.
#[test]
fn replication_costs_capacity() {
    let rmt = kvcache::max_cache_entries(&adcp::lang::TargetModel::rmt_12t(), 8);
    let adcp_e = kvcache::max_cache_entries(&adcp::lang::TargetModel::adcp_reference(), 8);
    let ratio = adcp_e as f64 / rmt as f64;
    assert!((6.0..10.0).contains(&ratio), "ratio = {ratio:.1}");
}

/// §4: the TM floorplan must be interleaved once demultiplexing drives
/// pipeline counts to 64+.
#[test]
fn tm_floorplan_claim() {
    use adcp::analytic::feasibility::{estimate_congestion, CongestionInput, TmFloorplan};
    let input = CongestionInput {
        pipelines: 64,
        phv_bits: 4096,
        tracks_per_gcell: 200,
        gcells_per_block_edge: 40,
    };
    let mono = estimate_congestion(&input, TmFloorplan::Monolithic);
    let inter = estimate_congestion(&input, TmFloorplan::Interleaved { banks: 16 });
    assert!(mono.peak_utilization > 1.0);
    assert!(inter.peak_utilization < 0.8);
}
