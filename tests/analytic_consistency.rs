//! The analytic models and the simulator must agree where they overlap:
//! a pipeline's packet rate is its clock frequency (the line-rate identity
//! behind Tables 2 and 3), and the simulator enforces exactly that.

use adcp::core::{AdcpConfig, AdcpSwitch, DemuxPolicy};
use adcp::lang::{
    ActionDef, ActionOp, CompileOptions, FieldDef, HeaderDef, Operand, ParserSpec, ProgramBuilder,
    Region, TableDef, TargetModel,
};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::time::SimTime;

fn forward_all() -> adcp::lang::Program {
    forward_to(Operand::Const(9))
}

/// Forward every packet to the port named by `dst`.
fn forward_to(dst: Operand) -> adcp::lang::Program {
    let mut b = ProgramBuilder::new("fwd");
    let h = b.header(HeaderDef::new(
        "m",
        vec![FieldDef::scalar("a", 32), FieldDef::scalar("b", 32)],
    ));
    b.parser(ParserSpec::single(h));
    b.table(TableDef {
        name: "fwd".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new("fwd", vec![ActionOp::SetEgress(dst)])],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

/// A saturated ingress pipeline retires packets at exactly its clock
/// frequency — the `freq = bandwidth / (8 × min_pkt)` identity, observed
/// from the simulation side.
#[test]
fn saturated_pipeline_rate_equals_clock_frequency() {
    let target = TargetModel::adcp_reference(); // 0.60 GHz pipes
    let freq_hz = target.pipe_freq().as_hz() as f64;
    let mut sw = AdcpSwitch::new(
        forward_all(),
        target,
        CompileOptions::default(),
        AdcpConfig {
            // One flow pinned to one ingress pipeline; the RX link (800G,
            // 84 B wire → 1.19 Gpps) over-drives the 0.6 GHz pipe.
            demux: DemuxPolicy::FlowHash,
            queue_depth: 1 << 14,
            tm_cells: 1 << 20,
            ..Default::default()
        },
    )
    .unwrap();
    let n = 4_000u64;
    for i in 0..n {
        sw.inject(
            PortId(0),
            Packet::new(i, FlowId(1), vec![0u8; 64]),
            SimTime::ZERO,
        );
    }
    let end = sw.run_until_idle();
    sw.check_conservation();
    assert_eq!(sw.counters.delivered, n);

    // The saturated pipe's busy cycles ≈ elapsed cycles, and the packet
    // rate through it ≈ the clock frequency.
    let pipes: Vec<usize> = sw.pipes_of_port(PortId(0)).collect();
    let busy: u64 = pipes.iter().map(|p| sw.ingress_busy_cycles(*p)).sum();
    assert_eq!(busy, n, "each packet takes exactly one ingress slot");
    let rate = n as f64 / end.as_secs_f64();
    assert!(
        (rate / freq_hz - 1.0).abs() < 0.05,
        "saturated rate {:.3e} pps vs clock {:.3e} Hz",
        rate,
        freq_hz
    );
}

/// Demultiplexing a port 1:2 ~doubles its saturated packet rate at the
/// same clock — §3.3's point, observed in simulation: m=1 is clock-bound
/// at 0.6 Gpps; m=2 is line-bound at 1.19 Gpps (84 B at 800 G).
#[test]
fn demux_doubles_saturated_packet_rate() {
    let run = |m: u16| -> f64 {
        let mut target = TargetModel::adcp_reference();
        target.demux_factor = m; // same 0.60 GHz clock either way
        let mut sw = AdcpSwitch::new(
            // Spread destinations over 4 ports so egress never binds.
            forward_to(Operand::Field(adcp::lang::FieldRef::new(
                adcp::lang::HeaderId(0),
                adcp::lang::FieldId(0),
            ))),
            target,
            CompileOptions::default(),
            AdcpConfig {
                demux: DemuxPolicy::RoundRobin,
                queue_depth: 1 << 14,
                tm_cells: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap();
        let n = 4_000u64;
        for i in 0..n {
            let mut data = vec![0u8; 64];
            data[..4].copy_from_slice(&(8 + (i as u32) % 4).to_be_bytes());
            sw.inject(PortId(0), Packet::new(i, FlowId(i), data), SimTime::ZERO);
        }
        let end = sw.run_until_idle();
        assert_eq!(sw.counters.delivered, n);
        n as f64 / end.as_secs_f64()
    };
    let m1 = run(1);
    let m2 = run(2);
    let gain = m2 / m1;
    assert!(
        (1.7..=2.1).contains(&gain),
        "1:2 demux should ~double the rate: {m1:.3e} -> {m2:.3e} ({gain:.2}x)"
    );
    // And the absolute numbers match the analytic bounds.
    assert!((m1 / 0.6e9 - 1.0).abs() < 0.05, "m=1 clock-bound: {m1:.3e}");
    assert!((m2 / 1.19e9 - 1.0).abs() < 0.07, "m=2 line-bound: {m2:.3e}");
}
