//! Interpreter-vs-oracle randomized test: a random sequence of register
//! operations executed through the match-action interpreter produces
//! exactly the state a plain-Rust model computes.
//!
//! Cases are drawn from the simulator's deterministic [`SimRng`] (proptest
//! is unavailable offline).

use adcp::lang::{
    ActionDef, ActionOp, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId, Operand, ParserSpec,
    ProgramBuilder, RegAluOp, RegId, Region, RegionState, TableDef,
};
use adcp::sim::rng::SimRng;

const CELLS: u64 = 32;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

/// One packet's worth of work: (cell index, op selector, value).
type Step = (u8, u8, u32);

fn run_interpreter(steps: &[Step]) -> Vec<u64> {
    // Program: header {op:8, idx:8, val:32}; one central table keyed on the
    // op selector, with one action per register ALU op. Each step becomes a
    // PHV run against the shared RegionState / register file.
    let mut b = ProgramBuilder::new("oracle");
    let h = b.header(HeaderDef::new(
        "m",
        vec![
            FieldDef::scalar("op", 8),
            FieldDef::scalar("idx", 8),
            FieldDef::scalar("val", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let reg = b.register(adcp::lang::RegisterDef::new("r", CELLS as u32, 32));
    let mk = |name: &str, op: RegAluOp| {
        ActionDef::new(
            name,
            vec![ActionOp::RegRmw {
                reg,
                index: Operand::Field(fr(1)),
                op,
                value: Operand::Field(fr(2)),
                fetch: None,
            }],
        )
    };
    b.table(TableDef {
        name: "apply".into(),
        region: Region::Central,
        key: Some(adcp::lang::KeySpec {
            field: fr(0),
            kind: adcp::lang::MatchKind::Exact,
            bits: 8,
        }),
        actions: vec![
            mk("write", RegAluOp::Write),
            mk("add", RegAluOp::Add),
            mk("max", RegAluOp::Max),
            mk("min", RegAluOp::Min),
            ActionDef::nop(),
        ],
        default_action: 4,
        default_params: vec![],
        size: 8,
    });
    let program = b.build();
    let layout = program.layout();
    let mut st = RegionState::new(&program, Region::Central);
    for op in 0..4u64 {
        st.install_by_name(
            &program,
            "apply",
            adcp::lang::Entry {
                value: adcp::lang::MatchValue::Exact(op),
                action: op as usize,
                params: vec![],
            },
        )
        .unwrap();
    }
    for (idx, op, val) in steps {
        let mut phv = layout.instantiate();
        phv.set(&layout, fr(0), (*op % 4) as u64);
        phv.set(&layout, fr(1), (*idx as u64) % CELLS);
        phv.set(&layout, fr(2), *val as u64);
        st.run(&program, &layout, &mut phv);
    }
    st.register(RegId(0)).snapshot()
}

fn run_oracle(steps: &[Step]) -> Vec<u64> {
    let mut cells = vec![0u64; CELLS as usize];
    for (idx, op, val) in steps {
        let i = (*idx as usize) % CELLS as usize;
        let v = *val as u64;
        cells[i] = match op % 4 {
            0 => v,
            1 => (cells[i] + v) & 0xFFFF_FFFF,
            2 => cells[i].max(v),
            _ => cells[i].min(v),
        };
    }
    cells
}

#[test]
fn interpreter_matches_oracle() {
    let mut rng = SimRng::seed_from(0x02AC);
    for _ in 0..64 {
        let n = rng.range(0usize..200);
        let steps: Vec<Step> = (0..n)
            .map(|_| {
                (
                    rng.range(0u8..=255),
                    rng.range(0u8..=255),
                    rng.range(0u32..=u32::MAX),
                )
            })
            .collect();
        assert_eq!(run_interpreter(&steps), run_oracle(&steps));
    }
}

// ---------------------------------------------------------------------------
// Ge through the interpreter: a threshold counter built from `Bin Ge` +
// `IfEq` must agree with the plain-Rust comparison on random and boundary
// values (equal, off-by-one, u32::MAX).
// ---------------------------------------------------------------------------

fn run_ge_interpreter(thr: u32, vals: &[u32]) -> (Vec<u64>, u64) {
    // Program: header {val:32, flag:8}; a keyless central table computing
    // flag = (val >= thr) and bumping reg[0] only when the flag is set.
    let mut b = ProgramBuilder::new("ge-oracle");
    let h = b.header(HeaderDef::new(
        "m",
        vec![FieldDef::scalar("val", 32), FieldDef::scalar("flag", 8)],
    ));
    b.parser(ParserSpec::single(h));
    let reg = b.register(adcp::lang::RegisterDef::new("hits", 1, 32));
    b.table(TableDef {
        name: "thresh".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "thresh",
            vec![
                ActionOp::Bin {
                    dst: fr(1),
                    op: adcp::lang::BinOp::Ge,
                    a: Operand::Field(fr(0)),
                    b: Operand::Const(thr as u64),
                },
                ActionOp::IfEq {
                    a: Operand::Field(fr(1)),
                    b: Operand::Const(1),
                    then: vec![ActionOp::RegRmw {
                        reg,
                        index: Operand::Const(0),
                        op: RegAluOp::Add,
                        value: Operand::Const(1),
                        fetch: None,
                    }],
                },
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    let program = b.build();
    let layout = program.layout();
    let mut st = RegionState::new(&program, Region::Central);
    let mut flags = Vec::with_capacity(vals.len());
    for v in vals {
        let mut phv = layout.instantiate();
        phv.set(&layout, fr(0), *v as u64);
        st.run(&program, &layout, &mut phv);
        flags.push(phv.get(&layout, fr(1)));
    }
    (flags, st.register(RegId(0)).peek(0))
}

#[test]
fn ge_interpreter_matches_oracle() {
    let mut rng = SimRng::seed_from(0x6E01);
    for _ in 0..32 {
        let thr = rng.range(0u32..=u32::MAX);
        let mut vals: Vec<u32> = (0..rng.range(0usize..100))
            .map(|_| rng.range(0u32..=u32::MAX))
            .collect();
        // Boundary cases: exactly at, just under, just over, extremes.
        vals.extend([thr, thr.wrapping_sub(1), thr.wrapping_add(1), 0, u32::MAX]);
        let (flags, hits) = run_ge_interpreter(thr, &vals);
        let want_flags: Vec<u64> = vals.iter().map(|v| (*v >= thr) as u64).collect();
        let want_hits: u64 = want_flags.iter().sum();
        assert_eq!(flags, want_flags, "Ge flags diverge at thr={thr}");
        assert_eq!(hits, want_hits, "predicated counter diverges at thr={thr}");
    }
}

// ---------------------------------------------------------------------------
// Array-wide register ops (§3.2): the same Step model, but each step now
// carries a width-`w` slab applied by one `RegArray` op with readback.
// ---------------------------------------------------------------------------

/// One array step: (base cell, op selector, w slab values).
type ArrayStep = (u8, u8, Vec<u32>);

/// Run the steps through the interpreter; returns the final register cells
/// plus, per step, the post-op values read back into the PHV array.
fn run_array_interpreter(w: u16, steps: &[ArrayStep]) -> (Vec<u64>, Vec<Vec<u64>>) {
    let mut b = ProgramBuilder::new("array-oracle");
    let h = b.header(HeaderDef::new(
        "m",
        vec![
            FieldDef::scalar("op", 8),
            FieldDef::scalar("base", 8),
            FieldDef::array("vals", 32, w),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let reg = b.register(adcp::lang::RegisterDef::new("r", CELLS as u32, 32));
    let mk = |name: &str, op: RegAluOp| {
        ActionDef::new(
            name,
            vec![ActionOp::RegArray {
                reg,
                base: Operand::Field(fr(1)),
                op,
                values: fr(2),
                readback: true,
            }],
        )
    };
    b.table(TableDef {
        name: "apply".into(),
        region: Region::Central,
        key: Some(adcp::lang::KeySpec {
            field: fr(0),
            kind: adcp::lang::MatchKind::Exact,
            bits: 8,
        }),
        actions: vec![
            mk("write", RegAluOp::Write),
            mk("add", RegAluOp::Add),
            mk("max", RegAluOp::Max),
            mk("min", RegAluOp::Min),
            ActionDef::nop(),
        ],
        default_action: 4,
        default_params: vec![],
        size: 8,
    });
    let program = b.build();
    assert!(program.validate().is_empty());
    let layout = program.layout();
    let mut st = RegionState::new(&program, Region::Central);
    for op in 0..4u64 {
        st.install_by_name(
            &program,
            "apply",
            adcp::lang::Entry {
                value: adcp::lang::MatchValue::Exact(op),
                action: op as usize,
                params: vec![],
            },
        )
        .unwrap();
    }
    let mut readbacks = Vec::with_capacity(steps.len());
    for (base, op, vals) in steps {
        let mut phv = layout.instantiate();
        phv.set(&layout, fr(0), (*op % 4) as u64);
        phv.set(&layout, fr(1), *base as u64);
        for (i, v) in vals.iter().enumerate() {
            phv.set_elem(&layout, fr(2), i, *v as u64);
        }
        st.run(&program, &layout, &mut phv);
        readbacks.push(
            (0..w as usize)
                .map(|i| phv.get_elem(&layout, fr(2), i))
                .collect(),
        );
    }
    (st.register(RegId(0)).snapshot(), readbacks)
}

/// Plain-Rust model of `RegArray` + readback: element `i` targets cell
/// `base + i`; out-of-range lanes are benign no-ops whose readback peeks 0;
/// results mask at the 32-bit cell width.
fn run_array_oracle(w: u16, steps: &[ArrayStep]) -> (Vec<u64>, Vec<Vec<u64>>) {
    let mut cells = vec![0u64; CELLS as usize];
    let mut readbacks = Vec::with_capacity(steps.len());
    for (base, op, vals) in steps {
        let mut step_rb = Vec::with_capacity(w as usize);
        for (i, v) in vals.iter().enumerate() {
            let cell = *base as u64 + i as u64;
            let v = *v as u64;
            if cell < CELLS {
                let c = &mut cells[cell as usize];
                *c = match op % 4 {
                    0 => v,
                    1 => (*c + v) & 0xFFFF_FFFF,
                    2 => (*c).max(v),
                    _ => (*c).min(v),
                };
                step_rb.push(*c);
            } else {
                step_rb.push(0);
            }
        }
        readbacks.push(step_rb);
    }
    (cells, readbacks)
}

#[test]
fn array_interpreter_matches_oracle() {
    let mut rng = SimRng::seed_from(0x4A2A);
    for w in [8u16, 16] {
        for _ in 0..24 {
            let n = rng.range(0usize..60);
            let steps: Vec<ArrayStep> = (0..n)
                .map(|_| {
                    // Bases past CELLS exercise the benign out-of-range path.
                    let base = rng.range(0u8..(CELLS as u8 + 8));
                    let op = rng.range(0u8..=255);
                    let vals = (0..w).map(|_| rng.range(0u32..=u32::MAX)).collect();
                    (base, op, vals)
                })
                .collect();
            let (got_cells, got_rb) = run_array_interpreter(w, &steps);
            let (want_cells, want_rb) = run_array_oracle(w, &steps);
            assert_eq!(got_cells, want_cells, "final cells diverge at width {w}");
            assert_eq!(got_rb, want_rb, "readbacks diverge at width {w}");
        }
    }
}
