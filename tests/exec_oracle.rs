//! Interpreter-vs-oracle randomized test: a random sequence of register
//! operations executed through the match-action interpreter produces
//! exactly the state a plain-Rust model computes.
//!
//! Cases are drawn from the simulator's deterministic [`SimRng`] (proptest
//! is unavailable offline).

use adcp::lang::{
    ActionDef, ActionOp, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId, Operand, ParserSpec,
    ProgramBuilder, RegAluOp, RegId, Region, RegionState, TableDef,
};
use adcp::sim::rng::SimRng;

const CELLS: u64 = 32;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

/// One packet's worth of work: (cell index, op selector, value).
type Step = (u8, u8, u32);

fn run_interpreter(steps: &[Step]) -> Vec<u64> {
    // Program: header {op:8, idx:8, val:32}; one central table keyed on the
    // op selector, with one action per register ALU op. Each step becomes a
    // PHV run against the shared RegionState / register file.
    let mut b = ProgramBuilder::new("oracle");
    let h = b.header(HeaderDef::new(
        "m",
        vec![
            FieldDef::scalar("op", 8),
            FieldDef::scalar("idx", 8),
            FieldDef::scalar("val", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let reg = b.register(adcp::lang::RegisterDef::new("r", CELLS as u32, 32));
    let mk = |name: &str, op: RegAluOp| {
        ActionDef::new(
            name,
            vec![ActionOp::RegRmw {
                reg,
                index: Operand::Field(fr(1)),
                op,
                value: Operand::Field(fr(2)),
                fetch: None,
            }],
        )
    };
    b.table(TableDef {
        name: "apply".into(),
        region: Region::Central,
        key: Some(adcp::lang::KeySpec {
            field: fr(0),
            kind: adcp::lang::MatchKind::Exact,
            bits: 8,
        }),
        actions: vec![
            mk("write", RegAluOp::Write),
            mk("add", RegAluOp::Add),
            mk("max", RegAluOp::Max),
            mk("min", RegAluOp::Min),
            ActionDef::nop(),
        ],
        default_action: 4,
        default_params: vec![],
        size: 8,
    });
    let program = b.build();
    let layout = program.layout();
    let mut st = RegionState::new(&program, Region::Central);
    for op in 0..4u64 {
        st.install_by_name(
            &program,
            "apply",
            adcp::lang::Entry {
                value: adcp::lang::MatchValue::Exact(op),
                action: op as usize,
                params: vec![],
            },
        )
        .unwrap();
    }
    for (idx, op, val) in steps {
        let mut phv = layout.instantiate();
        phv.set(&layout, fr(0), (*op % 4) as u64);
        phv.set(&layout, fr(1), (*idx as u64) % CELLS);
        phv.set(&layout, fr(2), *val as u64);
        st.run(&program, &layout, &mut phv);
    }
    st.register(RegId(0)).snapshot().to_vec()
}

fn run_oracle(steps: &[Step]) -> Vec<u64> {
    let mut cells = vec![0u64; CELLS as usize];
    for (idx, op, val) in steps {
        let i = (*idx as usize) % CELLS as usize;
        let v = *val as u64;
        cells[i] = match op % 4 {
            0 => v,
            1 => (cells[i] + v) & 0xFFFF_FFFF,
            2 => cells[i].max(v),
            _ => cells[i].min(v),
        };
    }
    cells
}

#[test]
fn interpreter_matches_oracle() {
    let mut rng = SimRng::seed_from(0x02AC);
    for _ in 0..64 {
        let n = rng.range(0usize..200);
        let steps: Vec<Step> = (0..n)
            .map(|_| {
                (
                    rng.range(0u8..=255),
                    rng.range(0u8..=255),
                    rng.range(0u32..=u32::MAX),
                )
            })
            .collect();
        assert_eq!(run_interpreter(&steps), run_oracle(&steps));
    }
}
