//! Property test for live state migration under link faults (§3.1).
//!
//! A counting program partitions on `key & 63` and counts one register
//! update per surviving packet, fetching the pre-increment value into the
//! frame. Mid-workload the bucket→pipe map is rotated under live traffic —
//! with drop/corrupt/delay faults running — and the invariant checked is
//! the strongest one the fetch sequence allows: for every cell, the
//! multiset of fetched values across delivered packets is exactly
//! `{0, 1, …, n-1}`. A lost update leaves a gap, a double-applied update
//! skips a value, and a misrouted packet double-counts on the wrong pipe —
//! any of which breaks the multiset. Faulted packets (link-dropped or
//! corrupted) must contribute nothing.

use adcp::core::{AdcpConfig, AdcpSwitch, MigrationStrategy, PartitionMap};
use adcp::lang::{
    ActionDef, ActionOp, BinOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    Operand, ParserSpec, Program, ProgramBuilder, RegAluOp, RegId, Region, RegisterDef, TableDef,
    TargetModel,
};
use adcp::sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::rng::SimRng;
use adcp::sim::time::SimTime;

const CELLS: u64 = 64;
const PACKETS: u64 = 250;
const GAP_NS: u64 = 5_000;

/// header: dst:16, key:16, idx:16, cnt:32. Ingress folds `key & 63` into
/// `idx` and partitions on it; central counts into cell `idx`, fetching
/// the pre-increment count into `cnt`.
fn counting_program() -> (Program, RegId) {
    let mut b = ProgramBuilder::new("migrate_props");
    let h = b.header(HeaderDef::new(
        "mp",
        vec![
            FieldDef::scalar("dst", 16),
            FieldDef::scalar("key", 16),
            FieldDef::scalar("idx", 16),
            FieldDef::scalar("cnt", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let reg = b.register(RegisterDef::new("cnt", CELLS as u32, 32));
    let fr = |i: u16| FieldRef::new(HeaderId(0), FieldId(i));
    b.table(TableDef {
        name: "shard".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "steer",
            vec![
                ActionOp::Bin {
                    dst: fr(2),
                    op: BinOp::And,
                    a: Operand::Field(fr(1)),
                    b: Operand::Const(CELLS - 1),
                },
                ActionOp::SetCentralPipe(Operand::Field(fr(2))),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.table(TableDef {
        name: "count".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "bump",
            vec![
                ActionOp::RegRmw {
                    reg,
                    index: Operand::Field(fr(2)),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: Some(fr(3)),
                },
                ActionOp::SetEgress(Operand::Field(fr(0))),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    (b.build(), reg)
}

fn mk_pkt(id: u64, key: u16) -> Packet {
    let mut data = Vec::new();
    data.extend_from_slice(&0u16.to_be_bytes()); // dst port 0
    data.extend_from_slice(&key.to_be_bytes());
    data.extend_from_slice(&[0u8; 6]); // idx + cnt, filled in-switch
    data.extend_from_slice(&[0u8; 8]);
    Packet::new(id, FlowId(key as u64), data).seal()
}

/// Rotate every bucket's owner by one pipe: all 64 buckets move, so the
/// migration machinery is exercised on every cell, hot or cold.
fn rotated(map: &PartitionMap, n_pipes: u32) -> PartitionMap {
    PartitionMap::from_buckets(
        (0..map.num_buckets())
            .map(|b| (map.owner_of_bucket(b) + 1) % n_pipes)
            .collect(),
    )
}

fn soak(seed: u64, strategy: MigrationStrategy) {
    let (prog, reg) = counting_program();
    let mut sw = AdcpSwitch::new(
        prog,
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .unwrap();
    let uniform = PartitionMap::uniform(CELLS as u32, 4);
    let next = rotated(&uniform, 4);
    sw.install_partition_map(uniform).unwrap();

    let mut rng = SimRng::seed_from(seed);
    let mut injector = FaultInjector::new(
        FaultConfig {
            drop_chance: 0.05,
            corrupt_chance: 0.05,
            delay_chance: 0.10,
            ..Default::default()
        },
        SimRng::seed_from(seed ^ 0xFA17_50A4),
    );
    let mut expected = vec![0u64; CELLS as usize];
    let mut injected = 0u64;
    let mut corrupted = 0u64;
    for i in 0..PACKETS {
        let key = rng.range(0u64..256) as u16;
        let mut pkt = mk_pkt(i, key);
        let mut at = SimTime::from_ns((i + 1) * GAP_NS);
        match injector.apply(&mut pkt) {
            FaultOutcome::Dropped => continue, // lost on the link
            FaultOutcome::Corrupted => corrupted += 1,
            FaultOutcome::Delayed(d) => {
                at += d;
                expected[(key as u64 % CELLS) as usize] += 1;
            }
            FaultOutcome::Pass => expected[(key as u64 % CELLS) as usize] += 1,
        }
        injected += 1;
        sw.inject(PortId((i % 8) as u16), pkt, at);
    }

    // Reconfigure mid-workload, under whatever faults are in flight.
    sw.run_until(SimTime::from_ns(PACKETS * GAP_NS / 2));
    sw.begin_migration(next.clone(), strategy).unwrap();
    sw.run_until_idle();
    if sw.migration_active() {
        sw.finalize_migration().unwrap();
    }
    sw.check_conservation();

    let stats = sw.migration_stats();
    assert_eq!(stats.migrations, 1, "seed {seed} {strategy:?}");
    assert_eq!(stats.misroutes, 0, "seed {seed} {strategy:?}");
    assert_eq!(sw.counters.fcs_drops, corrupted, "seed {seed} {strategy:?}");
    assert_eq!(
        sw.counters.delivered,
        injected - corrupted,
        "seed {seed} {strategy:?}"
    );

    // Conservation per cell: exactly one update per surviving packet, all
    // resident on the pipe the final map owns the cell to.
    for cell in 0..CELLS {
        let mut sum = 0u64;
        for pipe in 0..4usize {
            let v = sw.central_register(pipe, reg).unwrap().peek(cell);
            if v != 0 {
                assert_eq!(
                    pipe as u32,
                    next.owner(cell),
                    "seed {seed} {strategy:?}: cell {cell} left on pipe {pipe}"
                );
            }
            sum += v;
        }
        assert_eq!(
            sum, expected[cell as usize],
            "seed {seed} {strategy:?}: cell {cell} lost or double-applied updates"
        );
    }

    // The strong oracle: per cell, the fetched pre-increment counts across
    // delivered packets are exactly {0, 1, …, n-1}.
    let mut fetched: Vec<Vec<u64>> = vec![Vec::new(); CELLS as usize];
    for d in sw.take_delivered() {
        let key = u16::from_be_bytes([d.data[2], d.data[3]]) as u64;
        let cnt = u32::from_be_bytes([d.data[6], d.data[7], d.data[8], d.data[9]]) as u64;
        fetched[(key % CELLS) as usize].push(cnt);
    }
    for (cell, mut seq) in fetched.into_iter().enumerate() {
        seq.sort_unstable();
        let want: Vec<u64> = (0..expected[cell] as u64).collect();
        assert_eq!(
            seq, want,
            "seed {seed} {strategy:?}: cell {cell} fetch multiset broken"
        );
    }
}

#[test]
fn no_update_lost_or_doubled_under_faulted_drain_migration() {
    for seed in 0..6u64 {
        soak(0xD12A_1000 + seed, MigrationStrategy::Drain);
    }
}

#[test]
fn no_update_lost_or_doubled_under_faulted_incremental_migration() {
    for seed in 0..6u64 {
        soak(0x14C2_2000 + seed, MigrationStrategy::Incremental);
    }
}
