//! Frame-integrity regression tests: a corrupted (sealed) frame must be
//! rejected at injection by both switch models — counted as `fcs_drops`,
//! never parsed, and **never** allowed to mutate register state — while a
//! clean sealed frame flows through normally and leaves re-sealed.

use adcp::core::{AdcpConfig, AdcpSwitch};
use adcp::lang::{
    ActionDef, ActionOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId, Operand,
    ParserSpec, Program, ProgramBuilder, RegAluOp, RegId, Region, TableDef, TargetModel,
};
use adcp::rmt::{RmtConfig, RmtSwitch};
use adcp::sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::rng::SimRng;
use adcp::sim::time::SimTime;

const CELLS: u64 = 64;

/// A program whose central region accumulates `v` into register cell `k`.
/// Any packet that reaches the tables leaves a visible register footprint,
/// which is exactly what a corrupted frame must never do.
fn counting_program() -> (Program, RegId) {
    let mut b = ProgramBuilder::new("fcs_probe");
    let h = b.header(HeaderDef::new(
        "m",
        vec![FieldDef::scalar("k", 32), FieldDef::scalar("v", 32)],
    ));
    b.parser(ParserSpec::single(h));
    let reg = b.register(adcp::lang::RegisterDef::new("acc", CELLS as u32, 32));
    let k = FieldRef::new(HeaderId(0), FieldId(0));
    let v = FieldRef::new(HeaderId(0), FieldId(1));
    b.table(TableDef {
        name: "route".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "fwd",
            vec![
                ActionOp::SetCentralPipe(Operand::Const(0)),
                ActionOp::SetEgress(Operand::Const(0)),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.table(TableDef {
        name: "acc".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "bump",
            vec![ActionOp::RegRmw {
                reg,
                index: Operand::Field(k),
                op: RegAluOp::Add,
                value: Operand::Field(v),
                fetch: None,
            }],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    (b.build(), reg)
}

/// A sealed probe packet (k=3, v=0x55) and its bit-flipped twin.
fn probe_packets() -> (Packet, Packet) {
    let mut data = Vec::new();
    data.extend_from_slice(&3u32.to_be_bytes());
    data.extend_from_slice(&0x55u32.to_be_bytes());
    data.extend_from_slice(&[0u8; 56]);
    let clean = Packet::new(1, FlowId(1), data).seal();
    let mut corrupted = clean.clone();
    corrupted.meta.id = 2;
    let mut buf = corrupted.data.to_vec();
    buf[5] ^= 0x10; // flip one bit inside the `v` field
    corrupted.data = buf.into();
    (clean, corrupted)
}

fn register_sum(cells: &[u64]) -> u64 {
    cells.iter().sum()
}

#[test]
fn adcp_rejects_corrupted_frames_before_state() {
    let (prog, reg) = counting_program();
    let mut sw = AdcpSwitch::new(
        prog,
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .unwrap();
    let (clean, corrupted) = probe_packets();

    sw.inject(PortId(0), corrupted, SimTime::ZERO);
    sw.run_until_idle();
    sw.check_conservation();
    assert_eq!(sw.counters.fcs_drops, 1);
    assert_eq!(sw.counters.delivered, 0);
    assert_eq!(sw.counters.parse_errors, 0, "never reached the parser");
    for pipe in 0..4 {
        assert_eq!(
            register_sum(&sw.central_register(pipe, reg).unwrap().snapshot()),
            0,
            "corrupted frame mutated central pipe {pipe}"
        );
    }

    // The clean twin works — and leaves the switch re-sealed.
    sw.inject(PortId(0), clean, SimTime::from_ns(10_000));
    sw.run_until_idle();
    sw.check_conservation();
    assert_eq!(sw.counters.fcs_drops, 1, "no new fcs drops");
    assert_eq!(sw.counters.delivered, 1);
    let total: u64 = (0..4)
        .map(|p| register_sum(&sw.central_register(p, reg).unwrap().snapshot()))
        .sum();
    assert_eq!(total, 0x55);
    let out = sw.take_delivered();
    assert_eq!(out.len(), 1);
    let redelivered = Packet {
        data: out[0].data.clone(),
        meta: out[0].meta.clone(),
    };
    assert!(
        redelivered.fcs_ok(),
        "delivery must re-seal rewritten bytes"
    );
}

#[test]
fn rmt_rejects_corrupted_frames_before_state() {
    let (prog, reg) = counting_program();
    let mut sw = RmtSwitch::new(
        prog,
        TargetModel::rmt_12t(),
        CompileOptions::default(),
        RmtConfig::default(),
    )
    .unwrap();
    let (clean, corrupted) = probe_packets();

    sw.inject(PortId(0), corrupted, SimTime::ZERO);
    sw.run_until_idle();
    sw.check_conservation();
    assert_eq!(sw.counters.fcs_drops, 1);
    assert_eq!(sw.counters.delivered, 0);
    assert_eq!(sw.counters.parse_errors, 0, "never reached the parser");
    for pipe in 0..4 {
        assert_eq!(
            register_sum(&sw.central_register(pipe, reg).snapshot()),
            0,
            "corrupted frame mutated central state on pipe {pipe}"
        );
    }

    sw.inject(PortId(0), clean, SimTime::from_ns(10_000));
    sw.run_until_idle();
    sw.check_conservation();
    assert_eq!(sw.counters.fcs_drops, 1, "no new fcs drops");
    assert_eq!(sw.counters.delivered, 1);
    let total: u64 = (0..4)
        .map(|p| register_sum(&sw.central_register(p, reg).snapshot()))
        .sum();
    assert_eq!(total, 0x55);
    let out = sw.take_delivered();
    assert_eq!(out.len(), 1);
    let redelivered = Packet {
        data: out[0].data.clone(),
        meta: out[0].meta.clone(),
    };
    assert!(
        redelivered.fcs_ok(),
        "delivery must re-seal rewritten bytes"
    );
}

/// The fault injector's corruption and the frame check compose: every
/// `Corrupted` outcome on a sealed packet is caught by the switch, and
/// unsealed (legacy) packets are untouched by the check.
#[test]
fn injector_corruption_is_always_caught_when_sealed() {
    let (prog, _reg) = counting_program();
    let mut sw = AdcpSwitch::new(
        prog,
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .unwrap();
    let cfg = FaultConfig {
        corrupt_chance: 0.5,
        ..Default::default()
    };
    let mut inj = FaultInjector::new(cfg, SimRng::seed_from(99));
    let mut corrupted = 0u64;
    for i in 0..200u64 {
        let mut data = Vec::new();
        data.extend_from_slice(&(i % CELLS).to_be_bytes()[4..]);
        data.extend_from_slice(&1u32.to_be_bytes());
        data.extend_from_slice(&[0u8; 56]);
        let mut pkt = Packet::new(i, FlowId(i), data).seal();
        if inj.apply(&mut pkt) == FaultOutcome::Corrupted {
            corrupted += 1;
        }
        sw.inject(PortId((i % 8) as u16), pkt, SimTime::from_ns(i * 5_000));
    }
    sw.run_until_idle();
    sw.check_conservation();
    assert!(corrupted > 0, "the injector must actually corrupt");
    assert_eq!(sw.counters.fcs_drops, corrupted);
    assert_eq!(sw.counters.delivered, 200 - corrupted);
}
