//! The standard-framing parse graph (Ethernet / IPv4+UDP around an app
//! header) running in the actual data plane: both encapsulations reach
//! the app tables, foreign traffic is rejected by the parser, and the
//! deparser reproduces the full stack on the way out.

use adcp::core::{AdcpConfig, AdcpSwitch};
use adcp::lang::protocols::{raw_app_frame, standard_framing, udp_app_frame};
use adcp::lang::{
    ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef, KeySpec,
    MatchKind, MatchValue, Operand, Program, ProgramBuilder, Region, TableDef, TargetModel,
};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::time::SimTime;

const APP_PORT: u16 = 9_999;

/// App header: op:8, key:32, out_port:16 — routed on an exact key match.
fn framed_program() -> (Program, adcp::lang::HeaderId) {
    let mut b = ProgramBuilder::new("framed-kv");
    let app = HeaderDef::new(
        "app",
        vec![
            FieldDef::scalar("op", 8),
            FieldDef::scalar("key", 32),
            FieldDef::scalar("out_port", 16),
            FieldDef::scalar("pad", 8),
        ],
    );
    let framing = standard_framing(&mut b, app, APP_PORT);
    b.table(TableDef {
        name: "route_on_key".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: FieldRef::new(framing.app, FieldId(1)),
            kind: MatchKind::Exact,
            bits: 32,
        }),
        actions: vec![
            ActionDef::new("fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("drop", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 64,
    });
    (b.build(), framing.app)
}

fn app_bytes(key: u32) -> Vec<u8> {
    let mut v = vec![1u8];
    v.extend_from_slice(&key.to_be_bytes());
    v.extend_from_slice(&0u16.to_be_bytes());
    v.push(0);
    v
}

#[test]
fn both_encapsulations_reach_the_app_tables() {
    let (prog, _) = framed_program();
    let mut sw = AdcpSwitch::new(
        prog,
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .unwrap();
    sw.install_all(
        "route_on_key",
        Entry {
            value: MatchValue::Exact(0xABCD),
            action: 0,
            params: vec![5],
        },
    )
    .unwrap();

    // Raw Ethernet encapsulation.
    let raw = raw_app_frame(&app_bytes(0xABCD));
    sw.inject(
        PortId(0),
        Packet::new(1, FlowId(1), raw.clone()),
        SimTime::ZERO,
    );
    // UDP encapsulation of the same request.
    let udp = udp_app_frame(APP_PORT, &app_bytes(0xABCD));
    sw.inject(
        PortId(1),
        Packet::new(2, FlowId(2), udp.clone()),
        SimTime::ZERO,
    );
    // Foreign traffic: wrong UDP port.
    let dns = udp_app_frame(53, &app_bytes(0xABCD));
    sw.inject(PortId(2), Packet::new(3, FlowId(3), dns), SimTime::ZERO);
    // Unknown key: filtered by the app table, not the parser.
    let miss = raw_app_frame(&app_bytes(0x1111));
    sw.inject(PortId(3), Packet::new(4, FlowId(4), miss), SimTime::ZERO);

    sw.run_until_idle();
    sw.check_conservation();
    assert_eq!(sw.counters.delivered, 2, "both encapsulations routed");
    assert_eq!(
        sw.counters.parse_errors, 1,
        "foreign traffic rejected at parse"
    );
    assert_eq!(sw.counters.filtered, 1, "unknown key dropped by the table");

    let out = sw.take_delivered();
    assert!(out.iter().all(|d| d.port == PortId(5)));
    // The deparser reproduced each packet's own framing (lengths differ
    // by the IPv4+UDP encapsulation, contents match what was sent).
    let mut lens: Vec<usize> = out.iter().map(|d| d.data.len()).collect();
    lens.sort_unstable();
    assert_eq!(lens, vec![raw.len(), udp.len()]);
    for d in &out {
        if d.data.len() == raw.len() {
            assert_eq!(&d.data[..], &raw[..]);
        } else {
            assert_eq!(&d.data[..], &udp[..]);
        }
    }
}

#[test]
fn parse_depth_charges_latency() {
    // §3.3: parse cost scales with header structure. The UDP-encapsulated
    // packet visits 4 parser states vs 2 for raw, and the model charges a
    // cycle per state — visible as extra latency on an otherwise
    // identical path.
    let run_one = |frame: Vec<u8>| -> f64 {
        let (prog, _) = framed_program();
        let mut sw = AdcpSwitch::new(
            prog,
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig::default(),
        )
        .unwrap();
        sw.install_all(
            "route_on_key",
            Entry {
                value: MatchValue::Exact(7),
                action: 0,
                params: vec![9],
            },
        )
        .unwrap();
        sw.inject(PortId(0), Packet::new(1, FlowId(1), frame), SimTime::ZERO);
        sw.run_until_idle();
        let out = sw.take_delivered();
        out[0].time.as_ps() as f64
    };
    let raw_t = run_one(raw_app_frame(&app_bytes(7)));
    let udp_t = run_one(udp_app_frame(APP_PORT, &app_bytes(7)));
    assert!(
        udp_t > raw_t,
        "deeper parse + longer frame must cost more: raw {raw_t} vs udp {udp_t}"
    );
}
