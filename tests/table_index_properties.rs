//! Property tests pinning the indexed match-table lookups to a brute-force
//! linear reference.
//!
//! `TableRuntime` replaced its original scan-all-entries lookup with
//! per-kind indexes (per-length exact maps for LPM, a priority-sorted
//! vector for ternary, a sorted non-overlapping interval list for range).
//! These tests re-state the *semantics* as a direct linear scan — longest
//! prefix wins, ties to the latest install; highest priority wins, ties to
//! the latest install; ranges never overlap — and check the index against
//! it over randomized tables and probes.
//!
//! Inputs come from the simulator's own deterministic [`SimRng`] (the
//! offline build cannot fetch proptest), so any failure reproduces exactly
//! from the printed seed.

use adcp::lang::{
    ActionDef, Entry, FieldId, FieldRef, HeaderId, KeySpec, MatchKind, MatchValue, Region,
    TableDef, TableError, TableRuntime,
};
use adcp::sim::rng::SimRng;

const TABLES: usize = 24;
const ENTRIES: usize = 96;
const PROBES: usize = 256;
const KEY_BITS: u8 = 32;

fn def(kind: MatchKind) -> TableDef {
    TableDef {
        name: "t".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: FieldRef::new(HeaderId(0), FieldId(0)),
            kind,
            bits: KEY_BITS,
        }),
        actions: vec![ActionDef::nop()],
        default_action: 0,
        default_params: vec![],
        size: 8192,
    }
}

/// Tag entries through `params[0]` so a lookup result identifies which
/// installed entry won.
fn entry(value: MatchValue, tag: u64) -> Entry {
    Entry {
        value,
        action: 0,
        params: vec![tag],
    }
}

fn lpm_matches(key: u64, value: u64, len: u8) -> bool {
    if len == 0 {
        return true;
    }
    if len >= KEY_BITS {
        return key == value;
    }
    (key >> (KEY_BITS - len)) == (value >> (KEY_BITS - len))
}

/// Longest prefix wins; among matches of equal length (necessarily the
/// same prefix) the latest install wins — scanned linearly over the full
/// install history, which is exactly what the indexed table's
/// replace-on-reinstall must reproduce.
fn lpm_reference(history: &[(u64, u8, u64)], key: u64) -> Option<u64> {
    let mut best: Option<(u8, u64)> = None;
    for &(value, len, tag) in history {
        if lpm_matches(key, value, len) && best.map(|(l, _)| len >= l).unwrap_or(true) {
            best = Some((len, tag));
        }
    }
    best.map(|(_, tag)| tag)
}

#[test]
fn lpm_index_matches_linear_reference() {
    let mut rng = SimRng::seed_from(0x1B31);
    for case in 0..TABLES {
        let d = def(MatchKind::Lpm);
        let mut rt = TableRuntime::new(&d);
        let mut history: Vec<(u64, u8, u64)> = Vec::new();
        for i in 0..ENTRIES {
            // Cluster prefixes into a small value space so probes hit, and
            // force plenty of equal-(len, prefix) reinstalls and
            // equal-length ties.
            let value = (rng.range(0u64..32) << 27) | (rng.u64() & 0x07FF_FFFF);
            let len = rng.range(0u8..=KEY_BITS);
            rt.insert(&d, entry(MatchValue::Lpm { value, len }, i as u64))
                .unwrap();
            history.push((value & 0xFFFF_FFFF, len, i as u64));
        }
        for _ in 0..PROBES {
            // Half the probes reuse an installed prefix with a random
            // suffix (guaranteed matches); half are uniform.
            let key = if rng.chance(0.5) {
                let (value, len, _) = history[rng.index(history.len())];
                let suffix_bits = KEY_BITS - len.min(KEY_BITS);
                let mask = if suffix_bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << suffix_bits) - 1
                };
                (value & !mask) | (rng.u64() & mask)
            } else {
                rng.u64() & 0xFFFF_FFFF
            };
            let got = rt.lookup(key).map(|e| e.params[0]);
            let want = lpm_reference(&history, key);
            assert_eq!(got, want, "case {case}, key {key:#x}");
        }
    }
}

fn ternary_matches(key: u64, value: u64, mask: u64) -> bool {
    key & mask == value & mask
}

/// Highest priority wins; among equal-priority matches the latest install
/// wins (`>=` keeps the later entry on ties during the forward scan).
fn ternary_reference(history: &[(u64, u64, u16, u64)], key: u64) -> Option<u64> {
    let mut best: Option<(u16, u64)> = None;
    for &(value, mask, priority, tag) in history {
        if ternary_matches(key, value, mask) && best.map(|(p, _)| priority >= p).unwrap_or(true) {
            best = Some((priority, tag));
        }
    }
    best.map(|(_, tag)| tag)
}

#[test]
fn ternary_index_matches_linear_reference() {
    let mut rng = SimRng::seed_from(0x7E43);
    for case in 0..TABLES {
        let d = def(MatchKind::Ternary);
        let mut rt = TableRuntime::new(&d);
        let mut history: Vec<(u64, u64, u16, u64)> = Vec::new();
        for i in 0..ENTRIES {
            let value = rng.u64() & 0xFFFF_FFFF;
            // Coarse masks so distinct entries overlap, and only 4
            // priority levels so ties are the common case.
            let mask = match rng.index(4) {
                0 => 0xFFFF_0000,
                1 => 0xFF00_FF00,
                2 => 0x0000_FFFF,
                _ => 0xFFFF_FFFF,
            };
            let priority = rng.range(0u16..4);
            rt.insert(
                &d,
                entry(
                    MatchValue::Ternary {
                        value,
                        mask,
                        priority,
                    },
                    i as u64,
                ),
            )
            .unwrap();
            history.push((value, mask, priority, i as u64));
        }
        for _ in 0..PROBES {
            let key = if rng.chance(0.5) {
                // Agree with an installed entry on its masked bits.
                let (value, mask, _, _) = history[rng.index(history.len())];
                (value & mask) | (rng.u64() & !mask & 0xFFFF_FFFF)
            } else {
                rng.u64() & 0xFFFF_FFFF
            };
            let got = rt.lookup(key).map(|e| e.params[0]);
            let want = ternary_reference(&history, key);
            assert_eq!(got, want, "case {case}, key {key:#x}");
        }
    }
}

#[test]
fn range_index_matches_linear_reference_and_rejects_overlap() {
    let mut rng = SimRng::seed_from(0x4A6E);
    for case in 0..TABLES {
        let d = def(MatchKind::Range);
        let mut rt = TableRuntime::new(&d);
        let mut accepted: Vec<(u64, u64, u64)> = Vec::new();
        for i in 0..ENTRIES {
            let lo = rng.range(0u64..20_000);
            let hi = lo + rng.range(0u64..200);
            let overlaps = accepted.iter().any(|&(alo, ahi, _)| lo <= ahi && alo <= hi);
            match rt.insert(&d, entry(MatchValue::Range { lo, hi }, i as u64)) {
                Ok(()) => {
                    assert!(
                        !overlaps,
                        "case {case}: [{lo}, {hi}] accepted but overlaps {accepted:?}"
                    );
                    accepted.push((lo, hi, i as u64));
                }
                Err(TableError::Overlap { .. }) => {
                    assert!(overlaps, "case {case}: [{lo}, {hi}] rejected but disjoint");
                }
                Err(e) => panic!("case {case}: unexpected error {e:?}"),
            }
        }
        for _ in 0..PROBES {
            let key = rng.range(0u64..21_000);
            let got = rt.lookup(key).map(|e| e.params[0]);
            let want = accepted
                .iter()
                .find(|&&(lo, hi, _)| lo <= key && key <= hi)
                .map(|&(_, _, tag)| tag);
            assert_eq!(got, want, "case {case}, key {key}");
        }
    }
}

/// The exact-match index is a plain hash map; pin its reject-duplicates
/// install semantics alongside the others for completeness.
#[test]
fn exact_index_matches_linear_reference() {
    let mut rng = SimRng::seed_from(0xE4AC);
    for case in 0..TABLES {
        let d = def(MatchKind::Exact);
        let mut rt = TableRuntime::new(&d);
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        for i in 0..ENTRIES {
            // Small key space: duplicate installs are the common case.
            let value = rng.range(0u64..64);
            let dup = accepted.iter().any(|&(v, _)| v == value);
            match rt.insert(&d, entry(MatchValue::Exact(value), i as u64)) {
                Ok(()) => {
                    assert!(!dup, "case {case}: key {value} accepted twice");
                    accepted.push((value, i as u64));
                }
                Err(TableError::Duplicate) => {
                    assert!(dup, "case {case}: fresh key {value} rejected");
                }
                Err(e) => panic!("case {case}: unexpected error {e:?}"),
            }
        }
        for _ in 0..PROBES {
            let key = rng.range(0u64..96);
            let got = rt.lookup(key).map(|e| e.params[0]);
            let want = accepted
                .iter()
                .find(|&&(v, _)| v == key)
                .map(|&(_, tag)| tag);
            assert_eq!(got, want, "case {case}, key {key}");
        }
    }
}
