//! Cross-target compiler invariants: the same programs placed on every
//! target honor every resource budget, and the per-architecture costs
//! differ exactly the way the paper says.

use adcp::apps::driver::TargetKind;
use adcp::apps::{dbshuffle, graphmine, kvcache, paramserv};
use adcp::lang::{compile, CompileOptions, Placement, Program, RmtCentralStrategy, TargetModel};
use adcp::sim::packet::PortId;

fn targets() -> Vec<TargetModel> {
    vec![
        TargetModel::rmt_640g(),
        TargetModel::rmt_12t(),
        TargetModel::adcp_reference(),
        TargetModel::adcp_like_rmt_12t(),
    ]
}

fn all_programs() -> Vec<Program> {
    let ps = paramserv::ParamServerCfg {
        workers: 8,
        model_size: 256,
        width: 1, // scalar so it compiles everywhere
        seed: 1,
        central_workers: 1,
    };
    let ports: Vec<PortId> = (0..8).map(PortId).collect();
    let db = dbshuffle::DbShuffleCfg::default();
    vec![
        paramserv::program(&ps, TargetKind::RmtRecirc, 4, &ports, PortId(8)),
        dbshuffle::program(&db, TargetKind::RmtPinned, 4),
        graphmine::program(TargetKind::RmtRecirc, 12, 8, PortId(8), &ports),
        kvcache::program(1, 512, PortId(8)),
    ]
}

/// A placement never exceeds the stage, MAU, memory, or register budget
/// of its target.
fn check_budgets(pl: &Placement, t: &TargetModel) {
    for (plan, budget) in [
        (&pl.ingress, t.ingress_stages),
        (&pl.egress, t.egress_stages),
    ] {
        assert!(plan.depth() <= budget, "{}: stage overflow", t.name);
        for st in &plan.stages {
            assert!(st.mau_slots_used <= t.maus_per_stage);
            assert!(st.mem_bits_used <= t.stage_mem_bits());
            assert!(st.reg_bits_used <= t.stage_reg_bits);
        }
    }
    for st in &pl.central.stages {
        assert!(st.mau_slots_used <= t.maus_per_stage);
        assert!(st.mem_bits_used <= t.stage_mem_bits());
        assert!(st.reg_bits_used <= t.stage_reg_bits);
    }
}

#[test]
fn every_program_places_on_every_target() {
    for prog in all_programs() {
        for t in targets() {
            for strategy in [
                RmtCentralStrategy::EgressPin,
                RmtCentralStrategy::Recirculate,
            ] {
                let pl = compile(
                    &prog,
                    &t,
                    CompileOptions {
                        rmt_central: strategy,
                    },
                )
                .unwrap_or_else(|e| panic!("{} on {}: {:?}", prog.name, t.name, e));
                check_budgets(&pl, &t);
            }
        }
    }
}

#[test]
fn central_impl_depends_on_target_not_strategy_when_native() {
    let ps = paramserv::ParamServerCfg {
        workers: 4,
        model_size: 64,
        width: 1,
        seed: 1,
        central_workers: 1,
    };
    let ports: Vec<PortId> = (0..4).map(PortId).collect();
    let prog = paramserv::program(&ps, TargetKind::Adcp, 4, &ports, PortId(4));
    // On an ADCP target both strategies yield Native — the option only
    // matters where there is no central hardware.
    for strategy in [
        RmtCentralStrategy::EgressPin,
        RmtCentralStrategy::Recirculate,
    ] {
        let pl = compile(
            &prog,
            &TargetModel::adcp_reference(),
            CompileOptions {
                rmt_central: strategy,
            },
        )
        .unwrap();
        assert_eq!(pl.central_impl, adcp::lang::CentralImpl::Native);
        assert_eq!(pl.recirc_passes, 0);
    }
}

#[test]
fn array_width_capacity_scales_inversely_on_rmt() {
    // Fig. 3 as a monotone property: RMT max cache entries shrink ~1/w.
    let rmt = TargetModel::rmt_12t();
    let mut last = u32::MAX;
    for w in [1u16, 2, 4, 8, 16] {
        let e = kvcache::max_cache_entries(&rmt, w);
        assert!(e < last, "width {w}: {e} !< {last}");
        last = e;
    }
    // And ADCP capacity is flat until MAU slots bind.
    let adcp = TargetModel::adcp_reference();
    let e1 = kvcache::max_cache_entries(&adcp, 1);
    let e16 = kvcache::max_cache_entries(&adcp, 16);
    assert!(
        e16 as f64 > e1 as f64 * 0.9,
        "ADCP capacity ~flat with width: {e1} -> {e16}"
    );
}

#[test]
fn placement_reports_total_memory() {
    let prog = kvcache::program(8, 1024, PortId(0));
    let rmt = compile(&prog, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
    let adcp = compile(
        &prog,
        &TargetModel::adcp_reference(),
        CompileOptions::default(),
    )
    .unwrap();
    assert!(
        rmt.total_mem_bits > adcp.total_mem_bits * 7,
        "8-wide table: rmt {} vs adcp {}",
        rmt.total_mem_bits,
        adcp.total_mem_bits
    );
    assert_eq!(rmt.phv_bits_used, adcp.phv_bits_used);
}

#[test]
fn compile_is_deterministic() {
    let prog = all_programs().remove(1);
    let a = compile(&prog, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
    let b = compile(&prog, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
