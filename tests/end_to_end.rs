//! Cross-crate integration: whole-stack determinism, conservation under
//! stress and faults, and closed-loop behaviour.

use adcp::apps::driver::TargetKind;
use adcp::apps::{dbshuffle, graphmine, groupcomm, kvcache, paramserv};
use adcp::core::{AdcpConfig, AdcpSwitch};
use adcp::lang::{
    ActionDef, ActionOp, CompileOptions, FieldDef, HeaderDef, Operand, ParserSpec, ProgramBuilder,
    Region, TableDef, TargetModel,
};
use adcp::sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::rng::SimRng;
use adcp::sim::time::SimTime;

/// Every app, every variant, one assertion: it is correct and conserves
/// packets (conservation is asserted inside each `run`).
#[test]
fn all_apps_all_variants_correct() {
    let kinds = [
        TargetKind::Adcp,
        TargetKind::RmtRecirc,
        TargetKind::RmtPinned,
    ];
    let ps = paramserv::ParamServerCfg {
        workers: 4,
        model_size: 64,
        width: 8,
        seed: 1,
        central_workers: 1,
    };
    for k in kinds {
        assert!(paramserv::run(k, &ps).correct, "paramserv {k:?}");
    }
    let mut db = dbshuffle::DbShuffleCfg::default();
    db.workload.rows_per_mapper = 100;
    for k in kinds {
        assert!(dbshuffle::run(k, &db).correct, "dbshuffle {k:?}");
    }
    let mut gm = graphmine::GraphMineCfg::default();
    gm.workload.supersteps = 4;
    for k in kinds {
        assert!(graphmine::run(k, &gm).correct, "graphmine {k:?}");
    }
    let gc = groupcomm::GroupCommCfg {
        packets: 80,
        ..Default::default()
    };
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        assert!(groupcomm::run(k, &gc).correct, "groupcomm {k:?}");
    }
    let kv = kvcache::KvCacheCfg {
        requests: 200,
        ..Default::default()
    };
    for k in [TargetKind::Adcp, TargetKind::RmtPinned] {
        assert!(kvcache::run(k, &kv).report.correct, "kvcache {k:?}");
    }
}

/// Whole-stack determinism: two identical complex runs produce identical
/// reports, across both architectures.
#[test]
fn whole_stack_determinism() {
    let cfg = dbshuffle::DbShuffleCfg::default();
    for kind in [TargetKind::Adcp, TargetKind::RmtRecirc] {
        let a = dbshuffle::run(kind, &cfg);
        let b = dbshuffle::run(kind, &cfg);
        assert_eq!(a.makespan_ns, b.makespan_ns, "{kind:?}");
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.drops, b.drops);
    }
}

/// End-host-side fault injection: lossy links drop contributions; the
/// switch must stay conservative and the app must degrade gracefully
/// (missing chunks, never wrong ones).
#[test]
fn paramserv_tolerates_lossy_links() {
    // Build the ADCP parameter-server manually so we can drop packets
    // before injection (the injector models the worker->switch link).
    let cfg = paramserv::ParamServerCfg {
        workers: 8,
        model_size: 256,
        width: 16,
        seed: 33,
        central_workers: 1,
    };
    let worker_ports: Vec<PortId> = (0..cfg.workers as u16).map(PortId).collect();
    let target = TargetModel::adcp_reference();
    let prog = paramserv::program(
        &cfg,
        TargetKind::Adcp,
        target.central_pipes as u32,
        &worker_ports,
        PortId(cfg.workers as u16),
    );
    let mut sw = AdcpSwitch::new(
        prog,
        target,
        CompileOptions::default(),
        AdcpConfig::default(),
    )
    .unwrap();
    let wl =
        adcp::workloads::gradient::GradientWorkload::new(cfg.workers, cfg.model_size, cfg.width);
    let mut inj = FaultInjector::new(FaultConfig::lossy(0.2), SimRng::seed_from(7));
    let mut rng = SimRng::seed_from(cfg.seed);
    let mut sent = 0u64;
    for (i, ch) in wl.all_chunks_shuffled(&mut rng).iter().enumerate() {
        let mut data = Vec::new();
        data.extend_from_slice(&(ch.worker as u16).to_be_bytes());
        data.extend_from_slice(&ch.base_slot.to_be_bytes());
        data.extend_from_slice(&0u16.to_be_bytes());
        for v in &ch.values {
            data.extend_from_slice(&v.to_be_bytes());
        }
        let mut pkt = Packet::new(i as u64, FlowId(ch.worker as u64), data);
        if inj.apply(&mut pkt) == FaultOutcome::Dropped {
            continue;
        }
        sent += 1;
        sw.inject(PortId(ch.worker as u16), pkt, SimTime::ZERO);
    }
    sw.run_until_idle();
    sw.check_conservation();
    assert!(inj.dropped > 0, "the lossy link must actually drop");
    assert_eq!(sw.counters.injected, sent);
    // Chunks that lost a contribution never complete; completed ones are
    // exactly (workers copies each), and fewer than the lossless total.
    let total_chunks = (cfg.model_size / cfg.width) as u64;
    let delivered = sw.counters.delivered;
    assert!(delivered < total_chunks * cfg.workers as u64);
    assert_eq!(
        delivered % cfg.workers as u64,
        0,
        "complete chunks multicast to all"
    );
}

/// Overload: a many-to-one incast with a tiny TM buffer must drop but
/// never lose accounting, on both switches.
#[test]
fn incast_overload_conserves() {
    let mut b = ProgramBuilder::new("incast");
    let h = b.header(HeaderDef::new(
        "m",
        vec![FieldDef::scalar("x", 32), FieldDef::scalar("y", 32)],
    ));
    b.parser(ParserSpec::single(h));
    b.table(TableDef {
        name: "to_zero".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "fwd",
            vec![ActionOp::SetEgress(Operand::Const(0))],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    let prog = b.build();

    let mut sw = AdcpSwitch::new(
        prog,
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig {
            tm_cells: 16,
            queue_depth: 4,
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..2_000u64 {
        let pkt = Packet::new(i, FlowId(i % 16), vec![0u8; 512]);
        sw.inject(PortId((i % 15 + 1) as u16), pkt, SimTime::ZERO);
    }
    sw.run_until_idle();
    sw.check_conservation();
    assert!(sw.counters.delivered > 0);
    assert!(
        sw.counters.tm1_drops
            + sw.counters.tm1_queue_drops
            + sw.counters.tm2_drops
            + sw.counters.tm2_queue_drops
            > 0,
        "a 16-cell buffer must overflow under a 2000-packet incast"
    );
}

/// The closed-loop graphmine job stretches with switch latency: the RMT
/// recirculating variant takes longer than the ADCP for the same job.
#[test]
fn closed_loop_latency_compounds() {
    let cfg = graphmine::GraphMineCfg::default();
    let a = graphmine::run(TargetKind::Adcp, &cfg);
    let r = graphmine::run(TargetKind::RmtRecirc, &cfg);
    assert!(a.correct && r.correct);
    assert!(
        r.makespan_ns > a.makespan_ns,
        "adcp {:.0}ns vs rmt/recirc {:.0}ns",
        a.makespan_ns,
        r.makespan_ns
    );
}
