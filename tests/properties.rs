//! Property-based tests (proptest) over the substrate and IR invariants
//! DESIGN.md commits to.

use adcp::lang::{deposit_bits, extract_bits, fold_hash, FieldDef, HeaderDef, PhvLayout};
use adcp::sim::event::EventQueue;
use adcp::sim::packet::{synthetic_packet, FlowId, Packet};
use adcp::sim::queue::{BoundedQueue, BufferPool};
use adcp::sim::sched::{Policy, ScheduledQueues};
use adcp::sim::stats::LatencyHist;
use adcp::sim::time::{Duration, Freq, SimTime};
use proptest::prelude::*;

proptest! {
    /// Bit deposit followed by extract returns the (masked) value, for any
    /// alignment that fits.
    #[test]
    fn deposit_extract_roundtrip(
        off in 0u32..96,
        bits in 1u8..=64,
        value: u64,
    ) {
        let mut buf = [0u8; 24]; // 192 bits, always fits off+bits
        prop_assume!(off as u64 + bits as u64 <= 192);
        prop_assert!(deposit_bits(&mut buf, off, bits, value));
        let read = extract_bits(&buf, off, bits).unwrap();
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        prop_assert_eq!(read, value & mask);
    }

    /// Deposits to disjoint bit ranges never interfere.
    #[test]
    fn disjoint_deposits_independent(
        a_bits in 1u8..=32,
        b_bits in 1u8..=32,
        a: u64,
        b: u64,
    ) {
        let mut buf = [0u8; 16];
        deposit_bits(&mut buf, 0, a_bits, a);
        deposit_bits(&mut buf, 64, b_bits, b);
        let a_mask = (1u64 << a_bits) - 1 | u64::from(a_bits == 64) * u64::MAX;
        let b_mask = (1u64 << b_bits) - 1 | u64::from(b_bits == 64) * u64::MAX;
        prop_assert_eq!(extract_bits(&buf, 0, a_bits).unwrap(), a & a_mask);
        prop_assert_eq!(extract_bits(&buf, 64, b_bits).unwrap(), b & b_mask);
    }

    /// PHV writes mask to the declared field width.
    #[test]
    fn phv_masks_to_width(bits in 1u8..=63, v: u64) {
        let headers = vec![HeaderDef::new("h", vec![FieldDef::scalar("f", bits)])];
        let layout = PhvLayout::build(&headers);
        let mut phv = layout.instantiate();
        let f = adcp::lang::FieldRef::new(adcp::lang::HeaderId(0), adcp::lang::FieldId(0));
        phv.set(&layout, f, v);
        prop_assert!(phv.get(&layout, f) <= (1u64 << bits) - 1);
        prop_assert_eq!(phv.get(&layout, f), v & ((1u64 << bits) - 1));
    }

    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// for any schedule.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut last_t = 0u64;
        let mut seen_at_t: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t.as_ps() >= last_t);
            if t.as_ps() != last_t {
                seen_at_t.clear();
                last_t = t.as_ps();
            }
            // FIFO among equal times: indices increase.
            if let Some(&prev) = seen_at_t.last() {
                prop_assert!(idx > prev);
            }
            seen_at_t.push(idx);
        }
    }

    /// MergeOrder emits a sorted stream whenever the per-queue inputs are
    /// sorted and fully backlogged (the exact-merge precondition).
    #[test]
    fn merge_scheduler_sorts(
        streams in proptest::collection::vec(
            proptest::collection::vec(0u64..1000, 0..20), 1..6),
    ) {
        let mut s = ScheduledQueues::new(streams.len(), 64, Policy::MergeOrder);
        let mut id = 0u64;
        for (qi, keys) in streams.iter().enumerate() {
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            for k in sorted {
                let p = synthetic_packet(id, FlowId(qi as u64), 64).with_sort_key(k);
                s.enqueue(qi, p);
                id += 1;
            }
            s.mark_ended(qi);
        }
        prop_assert!(s.merge_ready());
        let mut last = 0u64;
        while let Some((_, p)) = s.dequeue() {
            let k = p.meta.sort_key.unwrap();
            prop_assert!(k >= last, "merge out of order");
            last = k;
        }
    }

    /// Queue byte accounting is exact under any push/pop interleaving.
    #[test]
    fn queue_byte_accounting(ops in proptest::collection::vec((any::<bool>(), 64usize..1500), 1..200)) {
        let mut q = BoundedQueue::new(64).with_byte_limit(20_000);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut id = 0u64;
        for (push, len) in ops {
            if push {
                let p = synthetic_packet(id, FlowId(0), len);
                id += 1;
                let expect_room = model.len() < 64
                    && model.iter().sum::<u64>() + len as u64 <= 20_000;
                let got = q.push(p).is_ok();
                prop_assert_eq!(got, expect_room);
                if got {
                    model.push_back(len as u64);
                }
            } else if let Some(expected) = model.pop_front() {
                let p = q.pop().unwrap();
                prop_assert_eq!(p.frame_bytes() as u64, expected);
            } else {
                prop_assert!(q.pop().is_none());
            }
            prop_assert_eq!(q.bytes(), model.iter().sum::<u64>());
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// Buffer-pool allocation never exceeds capacity and release restores
    /// it exactly.
    #[test]
    fn buffer_pool_accounting(sizes in proptest::collection::vec(1usize..2000, 1..100)) {
        let mut pool = BufferPool::new(100, 80);
        let mut held: Vec<Packet> = Vec::new();
        for (i, len) in sizes.iter().enumerate() {
            let p = synthetic_packet(i as u64, FlowId(0), *len);
            if pool.try_alloc(&p) {
                held.push(p);
            }
            prop_assert!(pool.used() <= pool.capacity());
        }
        for p in held.drain(..) {
            pool.release(&p);
        }
        prop_assert_eq!(pool.used(), 0);
    }

    /// fold_hash spreads any key set across 4 buckets without leaving a
    /// bucket empty (for reasonably sized sets).
    #[test]
    fn hash_partitions_cover(keys in proptest::collection::hash_set(any::<u64>(), 64..256)) {
        let mut buckets = [0u32; 4];
        for k in &keys {
            buckets[(fold_hash([*k]) % 4) as usize] += 1;
        }
        for b in buckets {
            prop_assert!(b > 0, "empty bucket over {} keys", keys.len());
        }
    }

    /// Latency histogram percentiles are monotone and bounded by min/max.
    #[test]
    fn histogram_percentiles_monotone(samples in proptest::collection::vec(1u64..1_000_000, 1..300)) {
        let mut h = LatencyHist::new();
        for s in &samples {
            h.record(Duration(*s));
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = 0;
        for q in qs {
            let p = h.percentile_ps(q);
            prop_assert!(p >= last);
            last = p;
        }
        // Bucket low-edge rounding can undershoot the true min slightly,
        // never overshoot the max.
        prop_assert!(h.percentile_ps(1.0) <= h.max_ps());
    }

    /// Frequency/period conversion round-trips within rounding error.
    #[test]
    fn freq_period_roundtrip(khz in 100_000u64..5_000_000) {
        let f = Freq::from_khz(khz);
        let period = f.period().as_ps();
        let back = 1_000_000_000.0 / period as f64; // kHz
        let err = (back - khz as f64).abs() / khz as f64;
        // The period is quantized to integer picoseconds: the relative
        // error bound is half a picosecond over the period.
        let bound = 0.5 / period as f64 + 1e-9;
        prop_assert!(err <= bound, "err = {err}, bound = {bound}");
    }
}

/// Random header layouts: parse → deparse reproduces the header bytes
/// exactly (the end of each pipeline is a lossless re-serialization).
mod parse_roundtrip {
    use super::*;
    use adcp::lang::{FieldDef, HeaderDef, HeaderId, ParserSpec, PhvLayout};

    fn arb_header() -> impl Strategy<Value = HeaderDef> {
        proptest::collection::vec((1u8..=32, 1u16..=4), 1..5).prop_map(|fields| {
            let mut fs: Vec<FieldDef> = fields
                .into_iter()
                .enumerate()
                .map(|(i, (bits, count))| {
                    if count > 1 {
                        FieldDef::array(format!("f{i}"), bits, count)
                    } else {
                        FieldDef::scalar(format!("f{i}"), bits)
                    }
                })
                .collect();
            // Pad to byte alignment so the header is parseable.
            let total: u32 = fs.iter().map(|f| f.total_bits()).sum();
            let pad = (8 - (total % 8)) % 8;
            if pad > 0 {
                fs.push(FieldDef::scalar("pad", pad as u8));
            }
            HeaderDef::new("h", fs)
        })
    }

    proptest! {
        #[test]
        fn parse_then_deparse_is_identity(
            header in arb_header(),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            header_bytes in proptest::collection::vec(any::<u8>(), 64..96),
        ) {
            let headers = vec![header];
            let layout = PhvLayout::build(&headers);
            let spec = ParserSpec::single(HeaderId(0));
            let need = headers[0].total_bytes() as usize;
            prop_assume!(need <= header_bytes.len());
            let mut data = header_bytes[..need].to_vec();
            data.extend_from_slice(&payload);
            let out = spec.parse(&headers, &layout, &data).unwrap();
            let rebuilt = adcp::lang::deparse(
                &headers,
                &layout,
                &out.phv,
                &out.extracted,
                &data[out.consumed..],
            );
            prop_assert_eq!(rebuilt, data);
        }
    }
}
