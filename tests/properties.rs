//! Property-based tests over the substrate and IR invariants DESIGN.md
//! commits to.
//!
//! Inputs are generated with the simulator's own deterministic [`SimRng`]
//! (the offline build cannot fetch proptest): every test draws a few hundred
//! random cases from a fixed seed, so failures reproduce exactly.

use adcp::lang::{deposit_bits, extract_bits, fold_hash, FieldDef, HeaderDef, PhvLayout};
use adcp::sim::event::EventQueue;
use adcp::sim::packet::{synthetic_packet, FlowId, Packet, MIN_WIRE_BYTES};
use adcp::sim::queue::{BoundedQueue, BufferPool};
use adcp::sim::rng::SimRng;
use adcp::sim::sched::{Policy, ScheduledQueues};
use adcp::sim::stats::LatencyHist;
use adcp::sim::time::{Duration, Freq, SimTime};

const CASES: usize = 128;

/// Bit deposit followed by extract returns the (masked) value, for any
/// alignment that fits.
#[test]
fn deposit_extract_roundtrip() {
    let mut rng = SimRng::seed_from(0xD3B0);
    for _ in 0..CASES {
        let off = rng.range(0u32..96);
        let bits = rng.range(1u8..=64);
        let value = rng.u64();
        let mut buf = [0u8; 24]; // 192 bits, always fits off+bits
        assert!(deposit_bits(&mut buf, off, bits, value));
        let read = extract_bits(&buf, off, bits).unwrap();
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        assert_eq!(read, value & mask, "off={off} bits={bits}");
    }
}

/// Deposits to disjoint bit ranges never interfere.
#[test]
fn disjoint_deposits_independent() {
    let mut rng = SimRng::seed_from(0xD15C);
    for _ in 0..CASES {
        let a_bits = rng.range(1u8..=32);
        let b_bits = rng.range(1u8..=32);
        let a = rng.u64();
        let b = rng.u64();
        let mut buf = [0u8; 16];
        deposit_bits(&mut buf, 0, a_bits, a);
        deposit_bits(&mut buf, 64, b_bits, b);
        let a_mask = (1u64 << a_bits) - 1;
        let b_mask = (1u64 << b_bits) - 1;
        assert_eq!(extract_bits(&buf, 0, a_bits).unwrap(), a & a_mask);
        assert_eq!(extract_bits(&buf, 64, b_bits).unwrap(), b & b_mask);
    }
}

/// PHV writes mask to the declared field width.
#[test]
fn phv_masks_to_width() {
    let mut rng = SimRng::seed_from(0x9437);
    for _ in 0..CASES {
        let bits = rng.range(1u8..=63);
        let v = rng.u64();
        let headers = vec![HeaderDef::new("h", vec![FieldDef::scalar("f", bits)])];
        let layout = PhvLayout::build(&headers);
        let mut phv = layout.instantiate();
        let f = adcp::lang::FieldRef::new(adcp::lang::HeaderId(0), adcp::lang::FieldId(0));
        phv.set(&layout, f, v);
        assert!(phv.get(&layout, f) < (1u64 << bits));
        assert_eq!(phv.get(&layout, f), v & ((1u64 << bits) - 1));
    }
}

/// The event queue pops in non-decreasing time order with FIFO ties, for
/// any schedule.
#[test]
fn event_queue_ordering() {
    let mut rng = SimRng::seed_from(0xE0E0);
    for _ in 0..CASES {
        let n = rng.range(1usize..200);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime(rng.range(0u64..10_000)), i);
        }
        let mut last_t = 0u64;
        let mut seen_at_t: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            assert!(t.as_ps() >= last_t);
            if t.as_ps() != last_t {
                seen_at_t.clear();
                last_t = t.as_ps();
            }
            // FIFO among equal times: indices increase.
            if let Some(&prev) = seen_at_t.last() {
                assert!(idx > prev);
            }
            seen_at_t.push(idx);
        }
    }
}

/// MergeOrder emits a sorted stream whenever the per-queue inputs are
/// sorted and fully backlogged (the exact-merge precondition).
#[test]
fn merge_scheduler_sorts() {
    let mut rng = SimRng::seed_from(0x3E26);
    for _ in 0..CASES {
        let nstreams = rng.range(1usize..6);
        let mut s = ScheduledQueues::new(nstreams, 64, Policy::MergeOrder);
        let mut id = 0u64;
        for qi in 0..nstreams {
            let len = rng.range(0usize..20);
            let mut keys: Vec<u64> = (0..len).map(|_| rng.range(0u64..1000)).collect();
            keys.sort_unstable();
            for k in keys {
                let p = synthetic_packet(id, FlowId(qi as u64), 64).with_sort_key(k);
                s.enqueue(qi, p);
                id += 1;
            }
            s.mark_ended(qi);
        }
        assert!(s.merge_ready());
        let mut last = 0u64;
        while let Some((_, p)) = s.dequeue() {
            let k = p.meta.sort_key.unwrap();
            assert!(k >= last, "merge out of order");
            last = k;
        }
    }
}

/// Queue byte accounting is exact under any push/pop interleaving.
#[test]
fn queue_byte_accounting() {
    let mut rng = SimRng::seed_from(0xACC7);
    for _ in 0..64 {
        let ops = rng.range(1usize..200);
        let mut q = BoundedQueue::new(64).with_byte_limit(20_000);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut id = 0u64;
        for _ in 0..ops {
            let push = rng.chance(0.5);
            let len = rng.range(64usize..1500);
            if push {
                let p = synthetic_packet(id, FlowId(0), len);
                id += 1;
                let expect_room =
                    model.len() < 64 && model.iter().sum::<u64>() + len as u64 <= 20_000;
                let got = q.push(p).is_ok();
                assert_eq!(got, expect_room);
                if got {
                    model.push_back(len as u64);
                }
            } else if let Some(expected) = model.pop_front() {
                let p = q.pop().unwrap();
                assert_eq!(p.frame_bytes() as u64, expected);
            } else {
                assert!(q.pop().is_none());
            }
            assert_eq!(q.bytes(), model.iter().sum::<u64>());
            assert_eq!(q.len(), model.len());
        }
    }
}

/// Buffer-pool allocation never exceeds capacity and release restores it
/// exactly.
#[test]
fn buffer_pool_accounting() {
    let mut rng = SimRng::seed_from(0xB00F);
    for _ in 0..CASES {
        let n = rng.range(1usize..100);
        let mut pool = BufferPool::new(100, 80);
        let mut held: Vec<Packet> = Vec::new();
        for i in 0..n {
            let len = rng.range(1usize..2000);
            let mut p = synthetic_packet(i as u64, FlowId(0), len);
            if pool.try_alloc(&mut p) {
                held.push(p);
            }
            assert!(pool.used() <= pool.capacity());
        }
        for mut p in held.drain(..) {
            pool.release(&mut p);
        }
        assert_eq!(pool.used(), 0);
    }
}

/// Buffer-pool invariant under the conformance fault schedule: with every
/// packet carrying its allocation token, `used == Σ outstanding tokens` at
/// every step — even when frames are rewritten (grown or shrunk) while they
/// sit in the buffer, which is exactly the alloc/release mismatch the token
/// fixes — and the pool never underflows back through zero.
#[test]
fn buffer_pool_tokens_survive_faults_and_rewrites() {
    use adcp::sim::fault::{FaultConfig, FaultInjector, FaultOutcome};

    let mut rng = SimRng::seed_from(0xFA17);
    for case in 0..CASES {
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.15,
                corrupt_chance: 0.15,
                delay_chance: 0.2,
                max_delay: Duration(5_000),
            },
            SimRng::seed_from(0xFA17_0000 + case as u64),
        );
        let mut pool = BufferPool::new(4096, 80);
        let mut held: Vec<Packet> = Vec::new();
        let mut outstanding: u64 = 0;
        for i in 0..rng.range(50usize..300) {
            // Admit or drain with equal probability, faulting each arrival.
            if rng.chance(0.5) || held.is_empty() {
                let len = rng.range(MIN_WIRE_BYTES as usize..2000);
                let mut p = synthetic_packet(i as u64, FlowId(0), len);
                // A link drop never touches the pool; corrupted and
                // delayed frames still occupy buffer.
                if inj.apply(&mut p) == FaultOutcome::Dropped {
                    continue;
                }
                if pool.try_alloc(&mut p) {
                    outstanding += u64::from(p.meta.buf_cells.expect("token"));
                    held.push(p);
                }
            } else {
                let k = rng.range(0..held.len());
                let mut p = held.swap_remove(k);
                // Rewrite some frames in flight: the token, not the current
                // length, must drive the release.
                if rng.chance(0.5) {
                    let newlen = rng.range(MIN_WIRE_BYTES as usize..2500);
                    p.data = vec![0u8; newlen].into();
                }
                let token = u64::from(p.meta.buf_cells.expect("token"));
                pool.release(&mut p);
                assert!(p.meta.buf_cells.is_none(), "release must consume token");
                outstanding -= token;
            }
            assert_eq!(
                pool.used(),
                outstanding,
                "used cells diverged from outstanding tokens (case {case})"
            );
            assert!(pool.used() <= pool.capacity());
        }
        for mut p in held.drain(..) {
            pool.release(&mut p);
        }
        assert_eq!(pool.used(), 0);
    }
}

/// fold_hash spreads any key set across 4 buckets without leaving a bucket
/// empty (for reasonably sized sets).
#[test]
fn hash_partitions_cover() {
    let mut rng = SimRng::seed_from(0x4A54);
    for _ in 0..CASES {
        let target = rng.range(64usize..256);
        let mut keys = std::collections::HashSet::new();
        while keys.len() < target {
            keys.insert(rng.u64());
        }
        let mut buckets = [0u32; 4];
        for k in &keys {
            buckets[(fold_hash([*k]) % 4) as usize] += 1;
        }
        for b in buckets {
            assert!(b > 0, "empty bucket over {} keys", keys.len());
        }
    }
}

/// Latency histogram percentiles are monotone and bounded by min/max.
#[test]
fn histogram_percentiles_monotone() {
    let mut rng = SimRng::seed_from(0x4157);
    for _ in 0..CASES {
        let n = rng.range(1usize..300);
        let mut h = LatencyHist::new();
        for _ in 0..n {
            h.record(Duration(rng.range(1u64..1_000_000)));
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = 0;
        for q in qs {
            let p = h.percentile_ps(q);
            assert!(p >= last);
            last = p;
        }
        // Bucket low-edge rounding can undershoot the true min slightly,
        // never overshoot the max.
        assert!(h.percentile_ps(1.0) <= h.max_ps());
    }
}

/// Histogram percentiles agree with a sorted-sample oracle to within one
/// log-linear bucket (width ≤ value/64), across several sample shapes.
/// This is the regression property for the midpoint fix: the old
/// lower-edge answer sat a whole bucket below the oracle systematically;
/// the midpoint can only miss by half a bucket plus clamping.
#[test]
fn histogram_percentiles_match_sorted_oracle() {
    let mut rng = SimRng::seed_from(0x0AC1);
    for case in 0..CASES {
        let n = rng.range(1usize..500);
        // Draw from one of four shapes per case: uniform, log-uniform
        // (heavy tail), constant, and bimodal.
        let shape = case % 4;
        let samples: Vec<u64> = (0..n)
            .map(|_| match shape {
                0 => rng.range(1u64..1_000_000),
                1 => {
                    let mag = rng.range(0u32..40);
                    rng.range(1u64..2 << mag)
                }
                2 => 777_777,
                _ => {
                    if rng.chance(0.5) {
                        rng.range(1u64..1_000)
                    } else {
                        rng.range(1_000_000u64..2_000_000)
                    }
                }
            })
            .collect();
        let mut h = LatencyHist::new();
        for &s in &samples {
            h.record(Duration(s));
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            // The histogram's rank rule: smallest value with at least
            // ceil(q·n) samples at or below it.
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let oracle = sorted[rank - 1];
            let p = h.percentile_ps(q);
            let hi = h.percentile_upper_ps(q);
            // One sub-bucket of slack: width ≤ value/64 + 1.
            let w = oracle / 64 + 1;
            assert!(
                p >= oracle.saturating_sub(w) && p <= oracle + w,
                "case {case} q={q}: midpoint {p} vs oracle {oracle} (±{w})"
            );
            assert!(
                hi >= oracle && hi <= oracle + w,
                "case {case} q={q}: upper bound {hi} vs oracle {oracle}"
            );
            assert!(p <= hi, "midpoint above upper bound");
        }
        // Constant distributions must come back exact, not bucket-rounded.
        if shape == 2 {
            assert_eq!(h.percentile_ps(0.5), 777_777);
            assert_eq!(h.percentile_ps(0.99), 777_777);
        }
    }
}

/// Frequency/period conversion round-trips within rounding error.
#[test]
fn freq_period_roundtrip() {
    let mut rng = SimRng::seed_from(0xF2E0);
    for _ in 0..CASES {
        let khz = rng.range(100_000u64..5_000_000);
        let f = Freq::from_khz(khz);
        let period = f.period().as_ps();
        let back = 1_000_000_000.0 / period as f64; // kHz
        let err = (back - khz as f64).abs() / khz as f64;
        // The period is quantized to integer picoseconds: the relative
        // error bound is half a picosecond over the period.
        let bound = 0.5 / period as f64 + 1e-9;
        assert!(err <= bound, "err = {err}, bound = {bound}");
    }
}

/// Random header layouts: parse → deparse reproduces the header bytes
/// exactly (the end of each pipeline is a lossless re-serialization).
mod parse_roundtrip {
    use super::*;
    use adcp::lang::{HeaderId, ParserSpec};

    fn arb_header(rng: &mut SimRng) -> HeaderDef {
        let nfields = rng.range(1usize..5);
        let mut fs: Vec<FieldDef> = (0..nfields)
            .map(|i| {
                let bits = rng.range(1u8..=32);
                let count = rng.range(1u16..=4);
                if count > 1 {
                    FieldDef::array(format!("f{i}"), bits, count)
                } else {
                    FieldDef::scalar(format!("f{i}"), bits)
                }
            })
            .collect();
        // Pad to byte alignment so the header is parseable.
        let total: u32 = fs.iter().map(|f| f.total_bits()).sum();
        let pad = (8 - (total % 8)) % 8;
        if pad > 0 {
            fs.push(FieldDef::scalar("pad", pad as u8));
        }
        HeaderDef::new("h", fs)
    }

    #[test]
    fn parse_then_deparse_is_identity() {
        let mut rng = SimRng::seed_from(0x9A25);
        let mut tried = 0;
        while tried < CASES {
            let headers = vec![arb_header(&mut rng)];
            let layout = PhvLayout::build(&headers);
            let spec = ParserSpec::single(HeaderId(0));
            let need = headers[0].total_bytes() as usize;
            let avail = rng.range(64usize..96);
            if need > avail {
                continue; // header doesn't fit the drawn buffer; redraw
            }
            tried += 1;
            let mut data: Vec<u8> = (0..need).map(|_| rng.range(0u8..=255)).collect();
            let payload_len = rng.range(0usize..64);
            data.extend((0..payload_len).map(|_| rng.range(0u8..=255)));
            let out = spec.parse(&headers, &layout, &data).unwrap();
            let rebuilt = adcp::lang::deparse(
                &headers,
                &layout,
                &out.phv,
                &out.extracted,
                &data[out.consumed..],
            );
            assert_eq!(rebuilt, data);
        }
    }
}
