//! Property tests for the journey tracer (DESIGN.md §9): for any sampled
//! packet, on either architecture, under randomized drop/corrupt/delay
//! fault schedules, the reconstructed journey is a time-monotonic chain
//! that ends in exactly one terminal hop (`Tx` or `Dropped`) — and under
//! ring eviction the retained journey is still a well-formed suffix with
//! the terminal, if retained, last.
//!
//! Inputs are generated with the simulator's own deterministic [`SimRng`]
//! (the offline build cannot fetch proptest), so failures reproduce
//! exactly from the printed seed.

use std::collections::BTreeSet;

use adcp::core::{AdcpConfig, AdcpSwitch};
use adcp::lang::{
    ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder, Region, TableDef,
    TargetModel,
};
use adcp::rmt::{RmtConfig, RmtSwitch};
use adcp::sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::rng::SimRng;
use adcp::sim::time::{Duration, SimTime};
use adcp::sim::trace::{Hop, JourneyTracer, Site};

const PKTS: u64 = 300;
const INSTALLED_DSTS: u16 = 6;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

/// Exact-match forwarder: installed dsts forward, everything else hits the
/// default `drop` action — a deliberate `filtered` drop source.
fn program() -> Program {
    let mut b = ProgramBuilder::new("journey_props");
    let h = b.header(HeaderDef::new(
        "fwd",
        vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
    ));
    b.parser(ParserSpec::single(h));
    b.table(TableDef {
        name: "route".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(0),
            kind: MatchKind::Exact,
            bits: 16,
        }),
        actions: vec![
            ActionDef::new("fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("drop", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 64,
    });
    b.build()
}

fn pkt(id: u64, dst: u16) -> Packet {
    let mut data = vec![0u8; 64];
    data[..2].copy_from_slice(&dst.to_be_bytes());
    Packet::new(id, FlowId(dst as u64), data).seal()
}

fn is_terminal(site: Site) -> bool {
    matches!(site, Site::Tx(_) | Site::Dropped)
}

/// The chain invariants every retained journey must satisfy, eviction or
/// not: spans are internally ordered (`enter <= exit`), hops never run
/// backwards in time, and nothing follows a terminal hop.
fn check_chain(hops: &[Hop], what: &str) {
    for w in hops.windows(2) {
        assert!(
            w[0].enter <= w[1].enter,
            "{what}: journey not time-sorted: {:?} then {:?}",
            w[0],
            w[1]
        );
        assert!(
            w[0].exit <= w[1].exit,
            "{what}: span ends run backwards: {:?} then {:?}",
            w[0],
            w[1]
        );
        assert!(
            !is_terminal(w[0].site),
            "{what}: hop after terminal: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    for h in hops {
        assert!(h.enter <= h.exit, "{what}: reversed span {h:?}");
    }
    let terminals = hops.iter().filter(|h| is_terminal(h.site)).count();
    assert!(
        terminals <= 1,
        "{what}: {terminals} terminal hops in one journey: {hops:?}"
    );
}

/// A fault schedule drawn from one seed.
fn fault_cfg(rng: &mut SimRng) -> FaultConfig {
    FaultConfig {
        drop_chance: rng.range(0u32..20) as f64 / 100.0,
        corrupt_chance: rng.range(0u32..20) as f64 / 100.0,
        delay_chance: rng.range(0u32..50) as f64 / 100.0,
        max_delay: Duration::from_ns(rng.range(100u64..5_000)),
    }
}

enum Target {
    Adcp,
    Rmt,
}

/// Drive one switch through a faulty workload and return
/// `(tracer, delivered ids, injected ids)`.
fn run_one(
    target: &Target,
    seed: u64,
    sample: u64,
    ring: usize,
    tight_tm: bool,
) -> (JourneyTracer, BTreeSet<u64>, BTreeSet<u64>) {
    let mut rng = SimRng::seed_from(seed);
    let mut inj = FaultInjector::new(fault_cfg(&mut rng), SimRng::seed_from(seed ^ 0xFA17));

    let entries: Vec<(u16, u16)> = (0..INSTALLED_DSTS).map(|d| (d, d % 8)).collect();
    let install = |name: &str, sw_install: &mut dyn FnMut(&str, Entry)| {
        for &(dst, port) in &entries {
            sw_install(
                name,
                Entry {
                    value: MatchValue::Exact(dst.into()),
                    action: 0,
                    params: vec![port as u64],
                },
            );
        }
    };

    let mut delivered = BTreeSet::new();
    let mut injected = BTreeSet::new();

    let mut drive = |inject: &mut dyn FnMut(PortId, Packet, SimTime)| {
        for i in 0..PKTS {
            // Half the dst space is uninstalled — guaranteed filtered drops.
            let dst = rng.range(0u16..INSTALLED_DSTS * 2);
            let mut p = pkt(i, dst);
            if inj.apply(&mut p) == FaultOutcome::Dropped {
                continue; // lost on the wire, never reached the switch
            }
            injected.insert(i);
            let t = SimTime::from_ns(i * rng.range(5u64..400));
            inject(PortId((i % 8) as u16), p, t);
        }
    };

    match target {
        Target::Adcp => {
            let cfg = if tight_tm {
                AdcpConfig {
                    tm_cells: 24,
                    queue_depth: 3,
                    ..Default::default()
                }
            } else {
                AdcpConfig::default()
            };
            let mut sw = AdcpSwitch::new(
                program(),
                TargetModel::adcp_reference(),
                CompileOptions::default(),
                cfg,
            )
            .unwrap();
            install("route", &mut |n, e| {
                sw.install_all(n, e).unwrap();
            });
            sw.tracer = JourneyTracer::with_sample(ring, sample);
            drive(&mut |p, k, t| sw.inject(p, k, t));
            sw.run_until_idle();
            sw.check_conservation();
            for out in sw.take_delivered() {
                delivered.insert(out.meta.id);
            }
            (sw.tracer, delivered, injected)
        }
        Target::Rmt => {
            let cfg = if tight_tm {
                RmtConfig {
                    tm_cells: 24,
                    queue_depth: 3,
                    ..Default::default()
                }
            } else {
                RmtConfig::default()
            };
            let mut sw = RmtSwitch::new(
                program(),
                TargetModel::rmt_12t(),
                CompileOptions::default(),
                cfg,
            )
            .unwrap();
            install("route", &mut |n, e| {
                sw.install_all(n, e).unwrap();
            });
            sw.tracer = JourneyTracer::with_sample(ring, sample);
            drive(&mut |p, k, t| sw.inject(p, k, t));
            sw.run_until_idle();
            sw.check_conservation();
            for out in sw.take_delivered() {
                delivered.insert(out.meta.id);
            }
            (sw.tracer, delivered, injected)
        }
    }
}

/// With a ring big enough to hold everything and sample=1, every injected
/// packet's journey is a monotonic chain ending in exactly one terminal
/// hop — `Tx` iff delivered, `Dropped` iff the switch recorded a drop —
/// on both architectures, across random fault schedules.
#[test]
fn full_journeys_end_in_exactly_one_terminal() {
    for (ti, target) in [Target::Adcp, Target::Rmt].iter().enumerate() {
        for seed in 0..6u64 {
            let (tracer, delivered, injected) = run_one(target, 0x10AD + seed, 1, 1 << 16, false);
            assert_eq!(tracer.evicted(), 0, "ring must hold the full run");
            let dropped: BTreeSet<u64> = tracer.drops().iter().map(|d| d.pkt).collect();
            let mut saw_drop = false;
            for &id in &injected {
                let what = format!("target {ti} seed {seed} pkt {id}");
                let hops = tracer.journey_of(id);
                assert!(!hops.is_empty(), "{what}: injected but no journey");
                check_chain(&hops, &what);
                let last = hops.last().unwrap();
                if delivered.contains(&id) {
                    assert!(
                        matches!(last.site, Site::Tx(_)),
                        "{what}: delivered but journey ends at {:?}",
                        last.site
                    );
                } else {
                    saw_drop = true;
                    assert!(
                        dropped.contains(&id),
                        "{what}: neither delivered nor in the drop log"
                    );
                    assert_eq!(
                        last.site,
                        Site::Dropped,
                        "{what}: dropped but journey ends at {:?}",
                        last.site
                    );
                }
            }
            assert!(
                saw_drop,
                "target {ti} seed {seed}: schedule produced no in-switch drops; \
                 the property was not exercised"
            );
        }
    }
}

/// Sampling keeps exactly the `fnv(id) % N == 0` packets' hop spans, and
/// every kept journey still satisfies the chain invariants. Drops stay
/// exact for *all* packets regardless of sampling.
#[test]
fn sampled_journeys_are_chains_and_drops_stay_exact() {
    for target in [Target::Adcp, Target::Rmt] {
        let seed = 0x5A3D;
        let (full, _, injected) = run_one(&target, seed, 1, 1 << 16, false);
        let (sampled, _, injected2) = run_one(&target, seed, 7, 1 << 16, false);
        assert_eq!(injected, injected2, "same seed, same wire faults");
        // Forensic aggregation is sampling-independent.
        assert_eq!(
            full.drop_totals_by_reason(),
            sampled.drop_totals_by_reason()
        );
        for &id in &injected {
            let hops = sampled.journey_of(id);
            if sampled.samples(id) {
                assert_eq!(hops, full.journey_of(id), "sampling must not edit hops");
                check_chain(&hops, &format!("sampled pkt {id}"));
            } else {
                assert!(hops.is_empty(), "unsampled pkt {id} has hop spans");
            }
        }
    }
}

/// Under a tiny ring the oldest spans are evicted, but whatever remains of
/// each journey is still a monotonic chain with at most one terminal hop,
/// and that terminal — when retained — is last. Tight TM limits add
/// queue/buffer drop terminals to the mix.
#[test]
fn evicted_journeys_remain_wellformed_suffixes() {
    for (ti, target) in [Target::Adcp, Target::Rmt].iter().enumerate() {
        for seed in 0..4u64 {
            let (tracer, _, injected) = run_one(target, 0xE51C + seed, 1, 96, true);
            assert!(
                tracer.evicted() > 0,
                "target {ti} seed {seed}: a 96-span ring must evict under {PKTS} packets"
            );
            for &id in &injected {
                let hops = tracer.journey_of(id);
                check_chain(
                    &hops,
                    &format!("target {ti} seed {seed} pkt {id} (evicting)"),
                );
            }
        }
    }
}
