//! # adcp — Application-Defined Coflow Processor (facade crate)
//!
//! Umbrella crate re-exporting the workspace that reproduces
//! *"Rethinking the Switch Architecture for Stateful In-network
//! Computing"* (HotNets '24):
//!
//! * [`sim`] — simulation substrate (time, packets, ports, queues,
//!   schedulers, stats, fault injection).
//! * [`lang`] — the match-action program IR, per-target compiler, and
//!   interpreter.
//! * [`rmt`] — the baseline RMT switch model (paper Fig. 1).
//! * [`core`] — the ADCP switch model (paper Fig. 4): dual traffic
//!   managers, global partitioned area, array MAUs, port demultiplexing.
//! * [`ctrl`] — the control plane for the global partitioned area: load
//!   observation, repartition planning, live state migration.
//! * [`fabric`] — leaf–spine fabric of ADCP switches: modeled links, the
//!   one-big-switch placement pass, cross-switch state ownership.
//! * [`workloads`] — coflow/zipf/gradient/shuffle/BSP generators.
//! * [`apps`] — the Table 1 applications on both architectures.
//! * [`analytic`] — the paper's Tables 2/3 arithmetic and §4 feasibility
//!   models.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results. The
//! regenerator binaries live in the `adcp-bench` crate
//! (`cargo run -p adcp-bench --bin table1`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use adcp_analytic as analytic;
pub use adcp_apps as apps;
pub use adcp_core as core;
pub use adcp_ctrl as ctrl;
pub use adcp_fabric as fabric;
pub use adcp_lang as lang;
pub use adcp_rmt as rmt;
pub use adcp_sim as sim;
pub use adcp_workloads as workloads;
