//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the [`serde`] shim's [`Value`]/[`Map`] model and provides the
//! encoding entry points the repo uses: [`to_value`] and [`to_string`]. Both
//! are infallible in practice but keep the `Result` signatures so call sites
//! (`.expect(..)` / `?`) compile unchanged.

pub use serde::{Map, Value};
use std::fmt;

/// Serialization error (never produced; kept for signature compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Lower any serializable value to the JSON [`Value`] model.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Encode any serializable value as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().encode(&mut out);
    Ok(out)
}

/// Encode with trailing newline-free pretty printing (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                Value::String(k.clone()).encode(out);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => other.encode(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trip_shape() {
        let mut m = Map::new();
        m.insert("b".into(), Value::U64(2));
        m.insert("a".into(), Value::String("x\"y".into()));
        let s = to_string(&Value::Object(m)).unwrap();
        assert_eq!(s, r#"{"b":2,"a":"x\"y"}"#);
    }

    #[test]
    fn pretty_indents() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Array(vec![Value::U64(1), Value::U64(2)]));
        let s = to_string_pretty(&Value::Object(m)).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }
}
