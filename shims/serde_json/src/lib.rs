//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the [`serde`] shim's [`Value`]/[`Map`] model and provides the
//! encoding entry points the repo uses: [`to_value`] and [`to_string`]. Both
//! are infallible in practice but keep the `Result` signatures so call sites
//! (`.expect(..)` / `?`) compile unchanged.

pub use serde::{Map, Value};
use std::fmt;

/// Serialization/deserialization error. Encoding never produces one;
/// [`from_str`] reports the byte offset where parsing failed.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Lower any serializable value to the JSON [`Value`] model.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Encode any serializable value as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().encode(&mut out);
    Ok(out)
}

/// Encode with trailing newline-free pretty printing (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into the [`Value`] model.
///
/// Number mapping mirrors `serde_json`'s arithmetic preference: an integer
/// without sign/fraction/exponent becomes [`Value::U64`] (or [`Value::U128`]
/// past `u64`), a negative integer becomes [`Value::I64`], and anything with
/// a fraction or exponent becomes [`Value::F64`].
pub fn from_str(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> Error {
        Error(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid utf-8"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid hex digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        if integral {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::U64(n));
                }
                if let Ok(n) = text.parse::<u128>() {
                    return Ok(Value::U128(n));
                }
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                Value::String(k.clone()).encode(out);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => other.encode(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trip_shape() {
        let mut m = Map::new();
        m.insert("b".into(), Value::U64(2));
        m.insert("a".into(), Value::String("x\"y".into()));
        let s = to_string(&Value::Object(m)).unwrap();
        assert_eq!(s, r#"{"b":2,"a":"x\"y"}"#);
    }

    #[test]
    fn parse_round_trips_encoded_values() {
        let mut m = Map::new();
        m.insert("n".into(), Value::U64(42));
        m.insert("neg".into(), Value::I64(-7));
        m.insert("f".into(), Value::F64(1.25));
        m.insert("s".into(), Value::String("a\"b\nc".into()));
        m.insert(
            "arr".into(),
            Value::Array(vec![Value::Bool(true), Value::Null]),
        );
        let original = Value::Object(m);
        let text = to_string(&original).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, original);
        // And the pretty form parses to the same value.
        let parsed2 = from_str(&to_string_pretty(&original).unwrap()).unwrap();
        assert_eq!(parsed2, original);
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(from_str("7").unwrap(), Value::U64(7));
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("7.5").unwrap(), Value::F64(7.5));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(
            from_str("18446744073709551616").unwrap(),
            Value::U128(18446744073709551616)
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            from_str(r#""A😀""#).unwrap(),
            Value::String("A\u{1F600}".into())
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn pretty_indents() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Array(vec![Value::U64(1), Value::U64(2)]));
        let s = to_string_pretty(&Value::Object(m)).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }
}
