//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` by parsing the item's token stream
//! directly (no `syn`/`quote`, which are unavailable offline) and emitting an
//! impl of the shim `serde::Serialize` trait (`fn to_value(&self) -> Value`).
//!
//! Supported shapes — exactly what this repo derives on:
//! - named-field structs (with `#[serde(flatten)]` on fields)
//! - tuple structs (newtype → inner value, wider → array)
//! - unit structs (→ null)
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde: `Unit` → `"Unit"`, `Nt(x)` → `{"Nt": x}`,
//!   `Sv{a,b}` → `{"Sv": {"a":.., "b":..}}`)
//!
//! Generic items are rejected with a compile error; nothing in the repo
//! derives Serialize on a generic type.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match derive_impl(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn derive_impl(input: TokenStream) -> Result<TokenStream, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = expect_ident(&toks, &mut i)?;
    let name = expect_ident(&toks, &mut i)?;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` not supported by derive(Serialize)"
        ));
    }
    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                named_struct_body(&parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_struct_body(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => "::serde::Value::Null".to_string(),
            other => {
                return Err(format!(
                    "serde shim: unexpected struct body for `{name}`: {other:?}"
                ))
            }
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_body(&name, &parse_variants(g)?)?
            }
            other => {
                return Err(format!(
                    "serde shim: unexpected enum body for `{name}`: {other:?}"
                ))
            }
        },
        other => {
            return Err(format!(
                "serde shim: derive(Serialize) on unsupported item kind `{other}`"
            ))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("serde shim: generated code failed to parse: {e:?}"))
}

/// Advance past outer attributes (`#[...]`, including doc comments) and a
/// leading visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("serde shim: expected identifier, got {other:?}")),
    }
}

struct Field {
    name: String,
    flatten: bool,
}

/// Does this attribute group (the `[...]` after `#`) spell `serde(flatten)`?
fn attr_has_flatten(attr: &Group) -> bool {
    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "flatten"))
        }
        _ => false,
    }
}

fn parse_named_fields(g: &Group) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut flatten = false;
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(attr)) = toks.get(i + 1) {
                flatten |= attr_has_flatten(attr);
            }
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(vg)) = toks.get(i) {
                    if vg.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = expect_ident(&toks, &mut i)?;
        // Skip the `:` and the type, up to the next top-level comma.
        i += 1;
        let mut angle_depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, flatten });
    }
    Ok(fields)
}

/// Count fields of a tuple struct / tuple variant by top-level commas.
fn count_tuple_fields(g: &Group) -> usize {
    let mut count = 0usize;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for t in g.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    count += 1;
                    pending = false;
                }
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn named_struct_body(fields: &[Field]) -> String {
    let mut body = String::from("let mut m = ::serde::Map::new();\n");
    for f in fields {
        if f.flatten {
            body.push_str(&format!(
                "m.merge(::serde::Serialize::to_value(&self.{}));\n",
                f.name
            ));
        } else {
            body.push_str(&format!(
                "m.insert(String::from({:?}), ::serde::Serialize::to_value(&self.{}));\n",
                f.name, f.name
            ));
        }
    }
    body.push_str("::serde::Value::Object(m)");
    body
}

fn tuple_struct_body(n: usize) -> String {
    match n {
        0 => "::serde::Value::Null".to_string(),
        1 => "::serde::Serialize::to_value(&self.0)".to_string(),
        n => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    }
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

fn parse_variants(g: &Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i)?;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(vg))
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                i += 1;
                let fields = parse_named_fields(vg)?;
                VariantShape::Struct(fields.into_iter().map(|f| f.name).collect())
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) up to the separating comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn enum_body(name: &str, variants: &[Variant]) -> Result<String, String> {
    if variants.is_empty() {
        return Err(format!("serde shim: cannot serialize empty enum `{name}`"));
    }
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::Value::String(String::from({vn:?})),\n"
                ));
            }
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{\n\
                     let mut m = ::serde::Map::new();\n\
                     m.insert(String::from({vn:?}), {inner});\n\
                     ::serde::Value::Object(m)\n}}\n",
                    binds = binds.join(", "),
                ));
            }
            VariantShape::Struct(fields) => {
                let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                for f in fields {
                    inner.push_str(&format!(
                        "fm.insert(String::from({f:?}), ::serde::Serialize::to_value({f}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                     let mut m = ::serde::Map::new();\n\
                     m.insert(String::from({vn:?}), ::serde::Value::Object(fm));\n\
                     ::serde::Value::Object(m)\n}}\n",
                    binds = fields.join(", "),
                ));
            }
        }
    }
    Ok(format!("match self {{\n{arms}}}"))
}
