//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so the workspace
//! replaces `criterion` with this shim. Unlike the serde shims (pure data
//! plumbing), this one must actually *measure*: PR acceptance criteria quote
//! before/after numbers from these benches. It is a deliberately small
//! wall-clock harness:
//!
//! - warm up for ~100 ms,
//! - calibrate an iteration count so one sample takes a few milliseconds,
//! - collect `sample_size` samples and report the median ns/iteration
//!   (median is robust to scheduler noise on shared machines),
//! - honor `Throughput::Elements`/`Bytes` by also printing a rate.
//!
//! Supports the API surface the repo's five benches use: `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, `Bencher::iter_batched`, `BatchSize`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros. A positional
//! CLI argument acts as a substring filter, like real criterion.

use std::time::Instant;

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting a per-iteration processing rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim times each routine call
/// individually, so the variants behave identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards a positional filter; cargo
        // itself passes `--bench`, which we ignore along with other flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of benchmark functions.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 60,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(&self.filter, &id, None, 60, f);
    }
}

/// A group of related benchmark functions sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(
            &self.criterion.filter,
            &id,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// End the group (printing is per-function, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn run_one(
    filter: &Option<String>,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filt) = filter {
        if !id.contains(filt.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        sample_size,
        samples_ns_per_iter: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples_ns_per_iter;
    if s.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    let min = s[0];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {} elem/s", eng(n as f64 * 1e9 / median))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {} B/s", eng(n as f64 * 1e9 / median))
        }
        None => String::new(),
    };
    println!(
        "{id:<40} time: [median {} min {}]{rate}",
        fmt_ns(median),
        fmt_ns(min)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn eng(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

const WARMUP_NS: u128 = 100_000_000; // 100 ms
const TARGET_SAMPLE_NS: u128 = 4_000_000; // 4 ms per sample

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Measure a routine: median wall time per call over calibrated batches.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate per-call cost at the same time.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed().as_nanos() < WARMUP_NS {
            black_box(routine());
            calls += 1;
        }
        let per_call = (warm_start.elapsed().as_nanos() / calls.max(1) as u128).max(1);
        let iters_per_sample = ((TARGET_SAMPLE_NS / per_call).clamp(1, 50_000_000)) as u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter
                .push(elapsed / iters_per_sample as f64);
        }
    }

    /// Measure a routine with untimed per-iteration setup. Each sample is
    /// one timed routine call (the repo only batches expensive routines, so
    /// per-call `Instant` overhead is negligible).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // One warmup call keeps caches/allocator state realistic.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns_per_iter
                .push(t0.elapsed().as_nanos() as f64);
        }
    }
}

/// Collect benchmark functions into a runnable group, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_produces_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples_ns_per_iter: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns_per_iter.len(), 5);
        assert!(b.samples_ns_per_iter.iter().all(|&s| s > 0.0));
    }
}
