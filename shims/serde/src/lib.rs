//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace replaces `serde` with this path dependency. It keeps the
//! subset of the API the repo actually uses: a `Serialize` trait (driven by a
//! derive macro in the sibling `serde_derive` shim) that lowers any value to
//! a small JSON [`Value`] model, which `serde_json` (also shimmed) encodes.
//!
//! Design notes:
//! - Serialization is single-shot into [`Value`]; there is no streaming
//!   `Serializer` abstraction because nothing in the repo needs one.
//! - Object key order is *insertion order* (like `serde_json`'s
//!   `preserve_order` feature), which keeps struct-field order in JSON output
//!   and makes encoded rows deterministic — tests compare encoded strings.

pub use serde_derive::Serialize;

/// A JSON value: the common target of every [`Serialize`] impl.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (covers `u8`..`u64` and `usize`).
    U64(u64),
    /// Wide unsigned integer (`u128`, used by latency accumulators).
    U128(u128),
    /// Signed integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Map),
}

/// An insertion-ordered string → [`Value`] map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a key, replacing (in place) any existing entry with that key.
    /// Returns the previous value if the key was present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Merge another value's object entries into this map (used by
    /// `#[serde(flatten)]`). Non-object values are ignored, matching the
    /// only flatten uses in this repo (flattened struct fields).
    pub fn merge(&mut self, other: Value) {
        if let Value::Object(m) = other {
            for (k, v) in m.entries {
                self.insert(k, v);
            }
        }
    }
}

impl Value {
    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::U128(n) => u64::try_from(*n).ok(),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::U128(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`; integers widen losslessly where possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(n) => Some(*n as f64),
            Value::U128(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as `bool`, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable access to the object map, if this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Shared access to the object map, if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Encode as compact JSON text.
    pub fn encode(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                out.push_str(&n.to_string());
            }
            Value::U128(n) => {
                out.push_str(&n.to_string());
            }
            Value::I64(n) => {
                out.push_str(&n.to_string());
            }
            Value::F64(f) => {
                if f.is_finite() {
                    // Rust's shortest round-trip formatting; deterministic.
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Keep the output a valid JSON *number* that re-reads as
                    // a float; `1.0f64` formats as "1" which is fine as JSON.
                } else {
                    // serde_json rejects non-finite floats; we emit null to
                    // stay infallible (nothing in the repo serializes NaN).
                    out.push_str("null");
                }
            }
            Value::String(s) => encode_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can lower themselves to a JSON [`Value`].
///
/// This is the shim's replacement for serde's visitor-based trait; the
/// derive macro generates `to_value` directly.
pub trait Serialize {
    /// Convert `self` into the JSON value model.
    fn to_value(&self) -> Value;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::U128(*self)
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode() {
        let mut s = String::new();
        Value::U64(7).encode(&mut s);
        s.push(' ');
        Value::F64(1.5).encode(&mut s);
        s.push(' ');
        Value::Bool(true).encode(&mut s);
        assert_eq!(s, "7 1.5 true");
    }

    #[test]
    fn strings_escape() {
        let mut s = String::new();
        Value::String("a\"b\\c\nd".into()).encode(&mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), Value::U64(1));
        m.insert("b".into(), Value::U64(2));
        m.insert("a".into(), Value::U64(3));
        let keys: Vec<_> = m.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(m.get("a"), Some(&Value::U64(3)));
    }
}
