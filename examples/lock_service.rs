//! In-network ticket-lock service (the coordination application class the
//! paper's §1 cites: "locking [33]").
//!
//! ```sh
//! cargo run --release --example lock_service -- [clients] [locks] [rounds]
//! ```
//!
//! The run proves mutual exclusion from the packet record and shows the
//! architectural spectrum: the ADCP shards lock state across its central
//! pipelines and multicasts release handoffs; recirculating RMT matches
//! the semantics at 2x pipeline passes; egress-pinned RMT *cannot hand
//! off contended locks at all* (the release update only exits one port).

use adcp::apps::driver::TargetKind;
use adcp::apps::netlock::{run, NetLockCfg};
use adcp::sim::time::Duration;

fn arg(n: usize, default: u32) -> u32 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = NetLockCfg {
        clients: arg(1, 8) as u16,
        locks: arg(2, 4) as u16,
        rounds: arg(3, 5),
        hold: Duration::from_ns(50),
    };
    println!(
        "lock service: {} clients, {} locks, {} rounds each, 50ns holds\n",
        cfg.clients, cfg.locks, cfg.rounds
    );
    for kind in [
        TargetKind::Adcp,
        TargetKind::RmtRecirc,
        TargetKind::RmtPinned,
    ] {
        let r = run(kind, &cfg);
        println!("{}", r.summary_line());
        for n in &r.notes {
            println!("    note: {n}");
        }
    }
    println!(
        "\nreading: correct=false on rmt/pinned is the finding, not a bug —\n\
         under egress pinning the release broadcast never reaches waiting\n\
         clients, so contended handoff stalls (Fig. 2 as a protocol failure)."
    );
}
