//! In-network ML parameter aggregation across all three architecture
//! variants — the paper's running example (§3.1), end to end.
//!
//! ```sh
//! cargo run --release --example parameter_server -- [workers] [model] [width]
//! # e.g. 16 workers, 4096-weight model, 16 weights per packet:
//! cargo run --release --example parameter_server -- 16 4096 16
//! ```
//!
//! Prints the per-variant report: correctness, recirculation tax,
//! element (weight) rate, latency — the quantities behind Figs. 2 and 6.

use adcp::apps::driver::TargetKind;
use adcp::apps::paramserv::{run, ParamServerCfg};

fn arg(n: usize, default: u32) -> u32 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ParamServerCfg {
        workers: arg(1, 8),
        model_size: arg(2, 1024),
        width: arg(3, 16),
        seed: 42,
        central_workers: 1,
    };
    println!(
        "parameter server: {} workers, {} weights, width {} (RMT variants go scalar)\n",
        cfg.workers, cfg.model_size, cfg.width
    );
    for kind in [
        TargetKind::Adcp,
        TargetKind::RmtRecirc,
        TargetKind::RmtPinned,
    ] {
        let r = run(kind, &cfg);
        println!("{}", r.summary_line());
        for n in &r.notes {
            println!("    note: {n}");
        }
    }
    println!(
        "\nreading: the ADCP aggregates {}x more weights per packet and never\n\
         recirculates; rmt/recirc pays one extra pipeline pass per packet;\n\
         rmt/pinned cannot distribute results (Fig. 2).",
        arg(3, 16)
    );
}
