//! Switch-initiated group transfer with heterogeneous receiver NICs
//! (Table 1's group-communication row).
//!
//! ```sh
//! cargo run --release --example group_transfer -- [receivers] [slow_gbps] [packets]
//! ```

use adcp::apps::driver::TargetKind;
use adcp::apps::groupcomm::{run, GroupCommCfg};

fn arg(n: usize, default: u32) -> u32 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = GroupCommCfg {
        receivers: arg(1, 6) as u16,
        slow_nic_gbps: arg(2, 100),
        packets: arg(3, 400),
        frame_bytes: 1024,
        pace_gbps: None,
    };
    println!(
        "group transfer: {} receivers (every 2nd at {} Gbps), {} x {} B\n",
        cfg.receivers, cfg.slow_nic_gbps, cfg.packets, cfg.frame_bytes
    );
    for kind in [TargetKind::Adcp, TargetKind::RmtPinned] {
        let r = run(kind, &cfg);
        println!("{}", r.summary_line());
        for n in &r.notes {
            println!("    note: {n}");
        }
    }
    println!(
        "\nreading: the shared-memory TM absorbs the NIC speed mismatch —\n\
         every receiver gets the full object in order; the skew note shows\n\
         how much longer the slow NICs take to drain."
    );
}
