//! BSP graph pattern mining with in-switch barriers (Table 1's graph row).
//!
//! ```sh
//! cargo run --release --example graph_mining -- [partitions] [supersteps]
//! ```
//!
//! The run is closed-loop: partitions only start superstep `s+1` after the
//! switch multicasts the barrier release for `s`, so the architecture's
//! latency multiplies across the whole job.

use adcp::apps::driver::TargetKind;
use adcp::apps::graphmine::{run, GraphMineCfg};
use adcp::workloads::graph::BspWorkload;

fn arg(n: usize, default: u32) -> u32 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = GraphMineCfg {
        workload: BspWorkload {
            partitions: arg(1, 8),
            vertices: 4000,
            edges: 16_000,
            supersteps: arg(2, 9),
        },
        base_candidates: 4,
        seed: 3,
    };
    println!(
        "graph mining: {} partitions, {} supersteps, frontier grows then collapses\n",
        cfg.workload.partitions, cfg.workload.supersteps
    );
    for kind in [
        TargetKind::Adcp,
        TargetKind::RmtRecirc,
        TargetKind::RmtPinned,
    ] {
        let r = run(kind, &cfg);
        println!("{}", r.summary_line());
        for n in &r.notes {
            println!("    note: {n}");
        }
    }
    println!(
        "\nreading: every variant detects barriers correctly; the closed loop\n\
         makes the recirculation latency visible as a longer makespan, and\n\
         pinning forces a host relay for every release."
    );
}
