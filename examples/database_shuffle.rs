//! Distributed group-by with in-network filter–aggregate–reshuffle
//! (Table 1's database analytics row).
//!
//! ```sh
//! cargo run --release --example database_shuffle -- [mappers] [reducers] [rows] [selectivity%]
//! # e.g. 8 mappers, 4 reducers, 2000 rows each, 40% filter pass rate:
//! cargo run --release --example database_shuffle -- 8 4 2000 40
//! ```

use adcp::apps::dbshuffle::{run, DbShuffleCfg};
use adcp::apps::driver::TargetKind;
use adcp::workloads::shuffle::ShuffleWorkload;

fn arg(n: usize, default: u32) -> u32 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = DbShuffleCfg {
        workload: ShuffleWorkload {
            mappers: arg(1, 4),
            reducers: arg(2, 4),
            rows_per_mapper: arg(3, 1000),
            selectivity: arg(4, 60) as f64 / 100.0,
            distinct_keys: 64,
            skew: 0.9,
        },
        coordinator_port: 15,
        seed: 9,
        central_workers: 1,
    };
    println!(
        "db shuffle: {} mappers x {} rows -> {} reducers, filter keeps {:.0}%\n",
        cfg.workload.mappers,
        cfg.workload.rows_per_mapper,
        cfg.workload.reducers,
        cfg.workload.selectivity * 100.0
    );
    for kind in [
        TargetKind::Adcp,
        TargetKind::RmtPinned,
        TargetKind::RmtRecirc,
    ] {
        let r = run(kind, &cfg);
        println!("{}", r.summary_line());
        for n in &r.notes {
            println!("    note: {n}");
        }
    }
    println!(
        "\nreading: all variants compute correct group-by sums; only the ADCP\n\
         also streams each running total to the coordinator port (a second\n\
         destination — impossible under egress pinning without recirculating)."
    );
}
