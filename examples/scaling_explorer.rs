//! Explore the paper's scaling arithmetic interactively: what pipeline
//! clock does a design need, and what do demultiplexing, floorplanning,
//! and multi-clock MAT memory buy? (Tables 2/3, §3.3, §4.)
//!
//! ```sh
//! cargo run --example scaling_explorer -- [port_gbps] [demux] [min_pkt_bytes]
//! # the Table 3 headline: 800G split 1:2 at minimum Ethernet packets
//! cargo run --example scaling_explorer -- 800 2 84
//! ```

use adcp::analytic::feasibility::{
    estimate_congestion, max_multiclock_width, relative_dynamic_power, relative_logic_area,
    CongestionInput, TmFloorplan,
};
use adcp::analytic::scaling::{min_packet_for_freq, required_freq_ghz, tm_pipeline_count};

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let port = arg(1, 800.0);
    let demux = arg(2, 2.0).max(1.0);
    let min_pkt = arg(3, 84.0);

    let mux_freq = required_freq_ghz(port, min_pkt);
    let demux_freq = required_freq_ghz(port / demux, min_pkt);
    println!("port speed          : {port} Gbps");
    println!("min packet (wire)   : {min_pkt} B");
    println!("multiplexed  (1 port/pipe): {mux_freq:.2} GHz pipeline clock");
    println!("demultiplexed (1:{demux:.0})     : {demux_freq:.2} GHz pipeline clock");
    println!(
        "frequency dividend  : {:.1}% dynamic power, {:.0}% logic area of the 1:1 design",
        100.0 * relative_dynamic_power(mux_freq, demux_freq),
        100.0 * relative_logic_area(mux_freq, demux_freq),
    );
    println!(
        "packet-size escape  : staying at {mux_freq:.2} GHz without demux would \
         need >= {:.0} B minimum packets",
        min_packet_for_freq(port, mux_freq.min(1.62))
    );

    let pipes_51t = tm_pipeline_count(51_200, port as u32, demux as u32);
    println!("\nTM pressure at 51.2 Tbps: {pipes_51t} pipelines to schedule");
    let input = CongestionInput {
        pipelines: pipes_51t,
        phv_bits: 4096,
        tracks_per_gcell: 200,
        gcells_per_block_edge: 40,
    };
    let mono = estimate_congestion(&input, TmFloorplan::Monolithic);
    let inter = estimate_congestion(&input, TmFloorplan::Interleaved { banks: 16 });
    println!(
        "  monolithic TM  : {:.2} peak g-cell utilization ({})",
        mono.peak_utilization,
        if mono.peak_utilization < 0.8 {
            "routable"
        } else {
            "CONGESTED"
        }
    );
    println!(
        "  interleaved TM : {:.2} peak g-cell utilization ({})",
        inter.peak_utilization,
        if inter.peak_utilization < 0.8 {
            "routable"
        } else {
            "CONGESTED"
        }
    );

    println!(
        "\nmulti-clock MAT at {demux_freq:.2} GHz pipelines (4 GHz SRAM): \
         arrays up to width {}",
        max_multiclock_width(demux_freq, 4.0)
    );
}
