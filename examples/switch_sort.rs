//! Distributed sort *through the switch* — the full §3.1 first-TM
//! semantics in one program: **range partitioning** ("reshuffle data, for
//! instance, by ranges") composed with the **order-preserving merge**
//! ("keep a sort order while it merges flows that are themselves sorted").
//!
//! ```sh
//! cargo run --release --example switch_sort -- [mappers] [rows_each]
//! ```
//!
//! Each mapper holds a locally sorted run of keys. The switch:
//! 1. range-partitions every record to the central pipeline owning its
//!    key range (a Range match table → `SetCentralPipe`),
//! 2. merges the per-mapper sorted streams arriving at each pipeline
//!    (TM1 `MergeOrder` on the key),
//! 3. forwards each pipeline's merged stream to its reducer port.
//!
//! Result: every reducer receives *its entire key range, globally
//! sorted*, without any end-host merge — a switch-side merge-sort stage.

use adcp::core::{AdcpConfig, AdcpSwitch, DemuxPolicy};
use adcp::lang::{
    ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder, Region, TableDef,
    TargetModel, TmSpec,
};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::rng::SimRng;
use adcp::sim::sched::Policy;
use adcp::sim::time::SimTime;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const KEY_SPACE: u64 = 1 << 20;
const PARTITIONS: u64 = 4; // = central pipelines = reducers

/// header {key:32, mapper:16, pad:16}; range-partition + merge + route.
fn program(reducer_base: u16) -> Program {
    let mut b = ProgramBuilder::new("switch-sort");
    let h = b.header(HeaderDef::new(
        "rec",
        vec![
            FieldDef::scalar("key", 32),
            FieldDef::scalar("mapper", 16),
            FieldDef::scalar("pad", 16),
        ],
    ));
    b.parser(ParserSpec::single(h));
    b.tm1(TmSpec {
        policy: Policy::MergeOrder,
    });
    // Range partitioning: a Range-match table on the key chooses the
    // central pipeline; entries are installed by the control plane.
    b.table(TableDef {
        name: "range_partition".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(0),
            kind: MatchKind::Range,
            bits: 32,
        }),
        actions: vec![
            ActionDef::new(
                "to_partition",
                vec![
                    ActionOp::SetCentralPipe(Operand::Param(0)),
                    ActionOp::SetSortKey(Operand::Field(fr(0))),
                ],
            ),
            ActionDef::new("oob", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 16,
    });
    // Each partition's merged stream goes to its reducer.
    b.table(TableDef {
        name: "to_reducer".into(),
        region: Region::Central,
        key: Some(KeySpec {
            field: fr(0),
            kind: MatchKind::Range,
            bits: 32,
        }),
        actions: vec![
            ActionDef::new("out", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("oob", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 16,
    });
    let _ = reducer_base;
    b.build()
}

fn main() {
    let arg = |n: usize, d: u32| {
        std::env::args()
            .nth(n)
            .and_then(|s| s.parse().ok())
            .unwrap_or(d)
    };
    let mappers = arg(1, 4) as u16;
    let rows_each = arg(2, 500);
    let reducer_base = mappers;

    let mut sw = AdcpSwitch::new(
        program(reducer_base),
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig {
            demux: DemuxPolicy::FlowHash, // keep each mapper's run in order
            ..Default::default()
        },
    )
    .expect("compiles");

    // Control plane: key range r -> central pipe r, and -> reducer port.
    let stride = KEY_SPACE / PARTITIONS;
    for r in 0..PARTITIONS {
        let (lo, hi) = (r * stride, (r + 1) * stride - 1);
        sw.install_all(
            "range_partition",
            Entry {
                value: MatchValue::Range { lo, hi },
                action: 0,
                params: vec![r],
            },
        )
        .unwrap();
        sw.install_all(
            "to_reducer",
            Entry {
                value: MatchValue::Range { lo, hi },
                action: 0,
                params: vec![(reducer_base as u64) + r],
            },
        )
        .unwrap();
    }

    // Exact-merge setup, the way a real deployment would do it:
    // (a) tell TM1 which input queues will never carry this job's traffic
    //     (with FlowHash demux, mapper m is pinned to one ingress pipe);
    let used_pipes: Vec<usize> = (0..mappers)
        .map(|m| {
            let lane = (adcp::lang::fold_hash([m as u64]) % 2) as usize;
            m as usize * 2 + lane
        })
        .collect();
    let all_pipes = sw.target().num_pipes() as usize;
    for c in 0..PARTITIONS as usize {
        for p in 0..all_pipes {
            if !used_pipes.contains(&p) {
                sw.tm1_mark_ended(c, p);
            }
        }
    }

    // Mappers: locally sorted runs of random keys, ended with one
    // end-of-stream record per partition (key = the partition's top key,
    // which sorts last within it; mapper 0xFFFF marks it as EOS).
    let mut rng = SimRng::seed_from(99);
    let mut id = 0u64;
    let mut total = 0u64;
    let record = |id: u64, m: u16, k: u64| {
        let mut data = vec![0u8; 8];
        data[..4].copy_from_slice(&(k as u32).to_be_bytes());
        data[4..6].copy_from_slice(&m.to_be_bytes());
        Packet::new(id, FlowId(m as u64), data)
    };
    for m in 0..mappers {
        let mut keys: Vec<u64> = (0..rows_each)
            .map(|_| rng.range(0..KEY_SPACE - 1))
            .collect();
        keys.sort_unstable();
        let mut t = SimTime::ZERO;
        for k in keys {
            sw.inject(PortId(m), record(id, m, k), t);
            id += 1;
            total += 1;
            t += adcp::sim::time::Duration::from_ns(2);
        }
        for r in 0..PARTITIONS {
            let eos_key = (r + 1) * stride - 1;
            sw.inject(PortId(m), record(id, 0xFFFF, eos_key), t);
            id += 1;
        }
    }
    sw.run_until_idle();
    sw.check_conservation();

    // Verify: per reducer, keys arrive in globally sorted order and cover
    // exactly that reducer's range.
    let delivered = sw.take_delivered();
    let mut per_reducer: Vec<Vec<u64>> = vec![Vec::new(); PARTITIONS as usize];
    let mut data_records = 0u64;
    for d in &delivered {
        let key = u32::from_be_bytes(d.data[..4].try_into().unwrap()) as u64;
        let mapper = u16::from_be_bytes(d.data[4..6].try_into().unwrap());
        if mapper == 0xFFFF {
            continue; // end-of-stream marker
        }
        data_records += 1;
        let r = (d.port.0 - reducer_base) as usize;
        per_reducer[r].push(key);
    }
    let mut sorted_everywhere = true;
    let mut inversions = 0u64;
    for (r, keys) in per_reducer.iter().enumerate() {
        let in_range = keys.iter().all(|k| *k / stride == r as u64);
        let sorted = keys.windows(2).all(|w| w[0] <= w[1]);
        inversions += keys.windows(2).filter(|w| w[0] > w[1]).count() as u64;
        if !in_range || !sorted {
            sorted_everywhere = false;
        }
        println!(
            "reducer {r}: {} records, range ok: {in_range}, sorted: {sorted}",
            keys.len()
        );
    }
    println!(
        "\n{total} records from {mappers} sorted runs -> {data_records} \
         delivered, {inversions} inversions"
    );
    println!(
        "switch-side merge sort: {}",
        if sorted_everywhere && data_records == total {
            "OK — every reducer received its key range globally sorted"
        } else {
            "FAILED"
        }
    );
}
