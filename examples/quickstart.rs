//! Quickstart: build a tiny switch program, run it on both architectures,
//! and watch one packet walk through each.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program forwards on an exact-match `dst` field and keeps a per-
//! destination packet counter in the central region — the minimal
//! "stateful in-network computing" program. On the ADCP the counter lives
//! in the global partitioned area; on RMT the compiler has to lower it
//! (egress-pinned by default) and tells you so.

use adcp::core::{AdcpConfig, AdcpSwitch};
use adcp::lang::{
    ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder, RegAluOp, Region,
    RegisterDef, TableDef, TargetModel,
};
use adcp::rmt::{RmtConfig, RmtSwitch};
use adcp::sim::packet::{FlowId, Packet, PortId};
use adcp::sim::time::SimTime;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

/// dst:16, pad:16 | exact-match route + central per-dst counter.
fn program() -> Program {
    let mut b = ProgramBuilder::new("quickstart");
    let h = b.header(HeaderDef::new(
        "fwd",
        vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
    ));
    b.parser(ParserSpec::single(h));
    let ctr = b.register(RegisterDef::new("per_dst_pkts", 64, 64));
    b.table(TableDef {
        name: "route".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(0),
            kind: MatchKind::Exact,
            bits: 16,
        }),
        actions: vec![
            ActionDef::new("fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("drop", vec![ActionOp::Drop]),
        ],
        default_action: 1,
        default_params: vec![],
        size: 64,
    });
    b.table(TableDef {
        name: "count".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "count",
            vec![ActionOp::RegRmw {
                reg: ctr,
                index: Operand::Field(fr(0)),
                op: RegAluOp::Add,
                value: Operand::Const(1),
                fetch: None,
            }],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn pkt(id: u64, dst: u16) -> Packet {
    let mut data = vec![0u8; 64];
    data[..2].copy_from_slice(&dst.to_be_bytes());
    Packet::new(id, FlowId(dst as u64), data)
}

fn main() {
    println!("the program, as the compiler sees it:\n");
    println!("{}\n", adcp::lang::describe_program(&program()));

    // ---------------- ADCP ----------------
    println!("building the ADCP switch (16x800G, 1:2 demux, 4 central pipes)...");
    let mut adcp = AdcpSwitch::new(
        program(),
        TargetModel::adcp_reference(),
        CompileOptions::default(),
        AdcpConfig {
            trace: true,
            ..Default::default()
        },
    )
    .expect("compiles");
    println!("{}\n", adcp::lang::describe_placement(&adcp.placement));
    adcp.install_all(
        "route",
        Entry {
            value: MatchValue::Exact(7),
            action: 0,
            params: vec![12],
        },
    )
    .unwrap();
    adcp.inject(PortId(3), pkt(1, 7), SimTime::ZERO);
    adcp.run_until_idle();
    print!("{}", adcp.tracer.format_journey(1));
    let out = adcp.take_delivered();
    let counted: u64 = (0..adcp.num_central())
        .map(|c| {
            adcp.central_register(c, adcp::lang::RegId(0))
                .unwrap()
                .peek(7)
        })
        .sum();
    println!(
        "  delivered on {} at {} (per-dst counter now {counted})\n",
        out[0].port, out[0].time,
    );

    // ---------------- RMT ----------------
    println!("building the RMT baseline (32x400G, 4 pipelines)...");
    let mut rmt = RmtSwitch::new(
        program(),
        TargetModel::rmt_12t(),
        CompileOptions::default(),
        RmtConfig {
            trace: true,
            ..Default::default()
        },
    )
    .expect("compiles");
    println!("  compiler notes:");
    for n in &rmt.placement.notes {
        println!("    - {n}");
    }
    rmt.install_all(
        "route",
        Entry {
            value: MatchValue::Exact(7),
            action: 0,
            params: vec![12],
        },
    )
    .unwrap();
    rmt.inject(PortId(3), pkt(2, 7), SimTime::ZERO);
    rmt.run_until_idle();
    print!("{}", rmt.tracer.format_journey(2));
    let out = rmt.take_delivered();
    println!("  delivered on {} at {}", out[0].port, out[0].time);
    println!("\nNext: cargo run -p adcp-bench --bin table1 -- --quick");
}
